#!/usr/bin/env python
"""Worker migration by moving link ends — the paper's figure 1, live.

A coordinator farms work out over a link whose server end *migrates*
between worker processes mid-stream (enclosed in messages, §2.1).  The
coordinator is oblivious: its end never moves, and requests keep
flowing to whoever currently holds the other end — "it is best to
think of a link as a flexible hose."

Run on SODA to watch the hint machinery work (stale hints repaired by
redirects); on Charlotte to see the kernel's three-party move
agreements; on Chrysalis to see none of that (shared-memory flags).

Run:
    python examples/link_migration.py [kernel]
"""

import sys

from repro.core.api import INT, LINK, Operation, Proc, make_cluster

SQUARE = Operation("square", request=(INT,), reply=(INT, INT))
TAKE = Operation("take", request=(LINK, INT), reply=())


class Coordinator(Proc):
    """Sends work down the (stationary end of the) work link."""

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs
        self.results = []

    def main(self, ctx):
        (work,) = ctx.initial_links
        for x in range(self.jobs):
            value, worker = yield from ctx.connect(work, SQUARE, (x,))
            self.results.append((x, value, worker))


class Worker(Proc):
    """Serves a share of jobs, then migrates the link end onward."""

    def __init__(self, index: int, quota: int) -> None:
        self.index = index
        self.quota = quota
        self.served = 0

    def main(self, ctx):
        inbound, outbound = ctx.initial_links
        yield from ctx.register(TAKE, SQUARE)
        yield from ctx.open(inbound)
        inc = yield from ctx.wait_request([inbound])
        work_end, remaining = inc.args
        yield from ctx.reply(inc, ())
        yield from ctx.open(work_end)
        quota = min(self.quota, remaining)
        for _ in range(quota):
            job = yield from ctx.wait_request([work_end])
            (x,) = job.args
            yield from ctx.reply(job, (x * x, self.index))
            self.served += 1
        yield from ctx.close(work_end)
        remaining -= quota
        if remaining > 0:
            yield from ctx.connect(outbound, TAKE, (work_end, remaining))
        else:
            yield from ctx.destroy(work_end)
        # linger so late hint-repair traffic still finds us, then exit
        yield from ctx.delay(2000.0)


class Bootstrap(Proc):
    """Owns the moving end at t=0; injects it into the worker chain."""

    def __init__(self, jobs: int) -> None:
        self.jobs = jobs

    def main(self, ctx):
        work_end, to_first_worker = ctx.initial_links
        yield from ctx.register(TAKE)
        yield from ctx.connect(to_first_worker, TAKE, (work_end, self.jobs))
        yield from ctx.delay(2000.0)


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "soda"
    jobs, workers, quota = 9, 3, 3

    cluster = make_cluster(kind)
    coord = Coordinator(jobs)
    boot = Bootstrap(jobs)
    worker_progs = [Worker(i, quota) for i in range(workers)]

    c = cluster.spawn(coord, "coordinator")
    b = cluster.spawn(boot, "bootstrap")
    handles = [cluster.spawn(w, f"worker{i}") for i, w in enumerate(worker_progs)]

    cluster.create_link(b, c)            # the work link
    cluster.create_link(b, handles[0])   # bootstrap -> worker0
    for i in range(workers - 1):         # worker chain
        cluster.create_link(handles[i], handles[i + 1])
    # the last worker's "outbound" is never used; give it a stub link
    sink = cluster.spawn(_Sink(), "sink")
    cluster.create_link(handles[-1], sink)

    cluster.run_until_quiet()
    assert cluster.all_finished, cluster.unfinished()

    print(f"kernel: {kind}")
    for x, value, worker in coord.results:
        print(f"  {x}^2 = {value:2d}   served by worker{worker}")
    m = cluster.metrics
    interesting = {
        "charlotte.move_msgs": "kernel move-agreement messages",
        "soda.redirects_followed": "stale-hint redirects followed",
        "soda.move_redirect_accepts": "move-time redirect accepts",
        "chrysalis.ops.map": "memory-object maps",
    }
    for key, label in interesting.items():
        v = m.get(key)
        if v:
            print(f"  {label}: {v:.0f}")
    print(f"  simulated time: {cluster.engine.now:.1f} ms")


class _Sink(Proc):
    """Terminates the worker chain (never receives anything)."""

    def main(self, ctx):
        yield from ctx.delay(1.0)


if __name__ == "__main__":
    main()
