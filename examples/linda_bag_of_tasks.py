#!/usr/bin/env python
"""A *different* language on the same kernels: Linda's bag of tasks.

The paper's conclusion is about kernels, not about LYNX: a primitive
kernel interface should host "a wide variety of other distributed
languages, with entirely different needs" (§6).  `repro.linda` is that
other language — an associative tuple space — built directly on each
kernel's raw interface, no LYNX anywhere.

This runs Linda's canonical program: a master fills a bag with tasks,
workers `take` jobs and `out` results, the master collects.  Note what
a blocking `take` costs on each kernel (run all three and compare the
wire counts).

Run:
    python examples/linda_bag_of_tasks.py [kernel]
"""

import sys

from repro.linda import ANY, make_linda

N_TASKS = 8
N_WORKERS = 3


def master(system, client, results):
    for i in range(N_TASKS):
        yield from client.out(("task", i))
    for _ in range(N_TASKS):
        tup = yield from client.take(("result", ANY, ANY))
        results.append(tup)
    # poison pills send the workers home
    for _ in range(N_WORKERS):
        yield from client.out(("task", -1))
    yield from client.close()


def worker(system, client, ident, counts):
    while True:
        tag, n = yield from client.take(("task", ANY))
        if n < 0:
            break
        yield from client.out(("result", n, n * n))
        counts[ident] = counts.get(ident, 0) + 1
    yield from client.close()


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "soda"
    system = make_linda(kind)
    results, counts = [], {}
    system.spawn(master(system, system.client("master"), results), "master")
    for i in range(N_WORKERS):
        system.spawn(
            worker(system, system.client(f"w{i}"), i, counts), f"w{i}"
        )
    system.run_until_quiet()
    assert system.all_finished
    system.check()

    print(f"kernel: {kind}")
    for tag, n, sq in sorted(results, key=lambda t: t[1]):
        print(f"  {n}^2 = {sq}")
    share = ", ".join(f"w{i}:{c}" for i, c in sorted(counts.items()))
    print(f"  work share: {share}")
    print(f"  simulated time: {system.engine.now:.2f} ms")
    blocked = system.metrics.get("linda.blocked_waiters")
    print(f"  takes that had to block: {blocked:.0f} "
          f"(cost on this kernel: see benchmarks/out/a5_second_language.txt)")


if __name__ == "__main__":
    main()
