#!/usr/bin/env python
"""Quickstart: a typed remote operation between two LYNX processes.

LYNX programs are `Proc` subclasses whose ``main`` is a generator; they
communicate over *links* with typed request/reply operations.  The same
program runs on any of the three simulated kernels from the paper —
pass ``charlotte``, ``soda`` or ``chrysalis`` as argv[1].

Run:
    python examples/quickstart.py [kernel]
"""

import sys

from repro.core.api import BYTES, INT, Operation, Proc, STR, make_cluster

# A typed operation: name + request signature + reply signature.
# Requester and server must agree (the runtimes check a signature hash
# on every message — mismatches raise TypeClash at the requester).
GREET = Operation("greet", request=(STR,), reply=(STR, INT))


class GreeterServer(Proc):
    """Serves `greet` requests until told how many to expect."""

    def __init__(self, count: int) -> None:
        self.count = count

    def main(self, ctx):
        (client_link,) = ctx.initial_links
        yield from ctx.register(GREET)       # declare what we serve
        yield from ctx.open(client_link)     # open the request queue
        for n in range(self.count):
            inc = yield from ctx.wait_request()   # block point (§2.1)
            (name,) = inc.args
            yield from ctx.reply(inc, (f"hello, {name}!", n))


class GreeterClient(Proc):
    def __init__(self, names) -> None:
        self.names = names
        self.transcript = []

    def main(self, ctx):
        (server_link,) = ctx.initial_links
        for name in self.names:
            t0 = yield from ctx.now()
            text, serial = yield from ctx.connect(server_link, GREET, (name,))
            rtt = (yield from ctx.now()) - t0
            self.transcript.append((text, serial, rtt))


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "chrysalis"
    names = ["ada", "barbara", "grace"]

    cluster = make_cluster(kind)
    server = GreeterServer(len(names))
    client = GreeterClient(names)
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)   # hand each one end of a fresh link

    cluster.run_until_quiet()
    assert cluster.all_finished

    print(f"kernel: {kind}")
    for text, serial, rtt in client.transcript:
        print(f"  #{serial}: {text!r}   (round trip {rtt:.2f} simulated ms)")
    print(f"simulated time: {cluster.engine.now:.2f} ms, "
          f"wire messages: {cluster.metrics.total('wire.messages.'):.0f}")


if __name__ == "__main__":
    main()
