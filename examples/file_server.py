#!/usr/bin/env python
"""A long-lived file server and independently-written client apps.

This is the situation LYNX was designed for (§2): "interaction not
only between the pieces of a multi-process application, but also
between separate applications and between user programs and long-lived
system servers."  The server here outlives its clients, hands out
per-file *capability links* (link ends enclosed in replies — moving
them to the client), and keeps serving as applications come and go.

Run:
    python examples/file_server.py [kernel]
"""

import sys

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    STR,
    make_cluster,
)

# directory-level operations, served on the server's public link
OPEN = Operation("open", request=(STR,), reply=(LINK,))
SHUTDOWN = Operation("shutdown", request=(), reply=())
# per-file operations, served on the capability link OPEN returns
READ = Operation("read", request=(INT, INT), reply=(BYTES,))
WRITE = Operation("write", request=(INT, BYTES), reply=(INT,))


class FileServer(Proc):
    """Owns a toy in-memory filesystem; every OPEN mints a fresh link
    whose far end goes to the client — a transferable capability."""

    def __init__(self) -> None:
        self.files = {}
        self.opens = 0

    def file_worker(self, ctx, handle_end, name):
        """One coroutine per open file (the §2 coroutine structure)."""
        data = self.files.setdefault(name, bytearray())
        yield from ctx.open(handle_end)
        while True:
            try:
                inc = yield from ctx.wait_request([handle_end])
            except LinkDestroyed:
                return  # client closed (or died): capability revoked
            if inc.op.name == "read":
                off, length = inc.args
                yield from ctx.reply(inc, (bytes(data[off:off + length]),))
            else:
                off, chunk = inc.args
                data[off:off + len(chunk)] = chunk
                yield from ctx.reply(inc, (len(chunk),))

    def main(self, ctx):
        publics = ctx.initial_links  # one public link per client app
        yield from ctx.register(OPEN, SHUTDOWN, READ, WRITE)
        for public in publics:
            yield from ctx.open(public)
        while True:
            inc = yield from ctx.wait_request(publics)
            if inc.op.name == "shutdown":
                yield from ctx.reply(inc, ())
                return
            (name,) = inc.args
            mine, theirs = yield from ctx.new_link()
            yield from ctx.fork(
                self.file_worker(ctx, mine, name), f"file:{name}"
            )
            self.opens += 1
            yield from ctx.reply(inc, (theirs,))


class WriterApp(Proc):
    """First application: writes a file, then exits (its capability
    link is destroyed by its termination — §2.2)."""

    def __init__(self, name: str, content: bytes) -> None:
        self.name = name
        self.content = content

    def main(self, ctx):
        (server,) = ctx.initial_links
        (cap,) = yield from ctx.connect(server, OPEN, (self.name,))
        (n,) = yield from ctx.connect(cap, WRITE, (0, self.content))
        assert n == len(self.content)


class ReaderApp(Proc):
    """Second application, loaded at a disparate time: reads the file
    back and shuts the server down."""

    def __init__(self, name: str, wait_ms: float) -> None:
        self.name = name
        self.wait_ms = wait_ms
        self.got = None

    def main(self, ctx):
        (server,) = ctx.initial_links
        yield from ctx.delay(self.wait_ms)  # "compiled and loaded at
        #                                      disparate times" (§2)
        (cap,) = yield from ctx.connect(server, OPEN, (self.name,))
        (data,) = yield from ctx.connect(cap, READ, (0, 1 << 16))
        self.got = data
        yield from ctx.connect(server, SHUTDOWN, ())


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "chrysalis"
    cluster = make_cluster(kind)

    server = FileServer()
    writer = WriterApp("motd", b"lessons: hints, screening, simplicity")
    reader = ReaderApp("motd", wait_ms=500.0)

    s = cluster.spawn(server, "file-server")
    w = cluster.spawn(writer, "writer-app")
    r = cluster.spawn(reader, "reader-app")
    cluster.create_link(s, w)
    cluster.create_link(s, r)

    cluster.run_until_quiet()
    assert cluster.all_finished, cluster.unfinished()
    assert reader.got == writer.content

    print(f"kernel: {kind}")
    print(f"  server handled {server.opens} opens across two applications")
    print(f"  reader got back: {reader.got!r}")
    print(f"  simulated time: {cluster.engine.now:.1f} ms")


if __name__ == "__main__":
    main()
