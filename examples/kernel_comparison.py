#!/usr/bin/env python
"""The paper in one screen: the same LYNX program on all three kernels.

Runs the simple-remote-operation workload (§3.3) and the adversarial
reverse-request scenario (§3.2.1) on Charlotte, SODA and Chrysalis and
prints the comparative table the paper's sections 3–5 add up to:
latency, protocol overhead messages, and the per-kernel machinery each
runtime had to bring.

Run:
    python examples/kernel_comparison.py
"""

from repro.analysis.complexity import runtime_package_stats
from repro.core.api import KERNEL_KINDS
from repro.analysis.report import Table
from repro.workloads.adversarial import run_reverse_scenario
from repro.workloads.rpc import run_rpc_workload

KERNELS = KERNEL_KINDS
PAPER_LATENCY = {"charlotte": 57.0, "soda": None, "chrysalis": 2.4}


def main() -> None:
    t = Table(
        "One LYNX program, three kernels (paper §§3-5)",
        ["kernel", "rpc 0B ms (paper)", "rpc 0B ms", "rpc 1000B ms",
         "bounce msgs*", "runtime loc", "runtime branches"],
    )
    for kind in KERNELS:
        r0 = run_rpc_workload(kind, 0, count=5)
        r1k = run_rpc_workload(kind, 1000, count=5)
        adv = run_reverse_scenario(kind, rounds=3)
        overhead = adv["messages"] - adv["useful_messages"]
        stats = runtime_package_stats(kind)
        t.add(
            kind,
            PAPER_LATENCY[kind],
            r0.mean_ms,
            r1k.mean_ms,
            overhead,
            stats.kernel_specific_loc,
            stats.kernel_specific_branches,
        )
    print(t.render())
    print("\n* extra messages in 3 rounds of the §3.2.1 reverse-request "
          "scenario\n")
    print("The paper's three lessons, visible above:")
    print(" 1. hints beat absolutes  — Charlotte's moves need kernel "
          "agreement messages; the others repair hints lazily")
    print(" 2. screening belongs up  — only Charlotte bounces unwanted "
          "messages (retry/forbid/allow)")
    print(" 3. simple primitives win — the high-level kernel has the "
          "largest, branchiest runtime package AND the slowest RPC")


if __name__ == "__main__":
    main()
