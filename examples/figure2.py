#!/usr/bin/env python
"""Regenerate the paper's figure 2 from a live run.

Figure 2 shows the Charlotte link-enclosure protocol: a request moving
multiple link ends becomes a first packet, a goahead, and a train of
enc packets, then the reply.  This script runs exactly that operation
on the simulated Charlotte stack and renders the *actual* packets from
the trace log as a message-sequence chart — alongside the same
operation on Chrysalis, where it is just two messages.

Run:
    python examples/figure2.py
"""

from repro.core.api import LINK, Operation, Proc, make_cluster

GIVE3 = Operation("give3", (LINK, LINK, LINK), ())


class Giver(Proc):
    def main(self, ctx):
        (to_taker,) = ctx.initial_links
        ends = []
        for _ in range(3):
            mine, theirs = yield from ctx.new_link()
            ends.append(theirs)
        yield from ctx.connect(to_taker, GIVE3, tuple(ends))


class Taker(Proc):
    def main(self, ctx):
        (from_giver,) = ctx.initial_links
        yield from ctx.register(GIVE3)
        yield from ctx.open(from_giver)
        inc = yield from ctx.wait_request()
        yield from ctx.reply(inc, ())


def chart_for(kind: str, events) -> str:
    cluster = make_cluster(kind)
    a = cluster.spawn(Giver(), "connector")
    b = cluster.spawn(Taker(), "accepter")
    cluster.create_link(a, b)
    cluster.run_until_quiet()
    assert cluster.all_finished
    return cluster.trace.sequence_chart(
        ["connector", "accepter"], events=events, link=1, width=34
    )


def main() -> None:
    print("Charlotte (paper figure 2: multiple enclosures):\n")
    print(chart_for("charlotte", events={"packet"}))
    print("\n\nChrysalis (the same operation: names travel inside):\n")
    print(chart_for("chrysalis", events={"send"}))
    print()


if __name__ == "__main__":
    main()
