#!/usr/bin/env python
"""A multi-stage processing pipeline built from entry-style servers.

Demonstrates `repro.core.entries` — the LYNX server idiom: each stage
declares typed entries and its dispatch loop forks a coroutine per
request, so slow items do not block the stage (§2's coroutines).  The
source pushes items through tokenise → enrich → sink; every stage is an
independent LYNX process, and the whole thing runs unchanged on any of
the three kernels.

Run:
    python examples/pipeline.py [kernel]
"""

import sys

from repro.core.api import BYTES, INT, Operation, Proc, STR, make_cluster
from repro.core.entries import call, serve

TOKENISE = Operation("tokenise", (STR,), (INT,))
ENRICH = Operation("enrich", (STR, INT), (STR,))
STORE = Operation("store", (STR,), ())

SENTENCES = [
    "hints can be better than absolutes",
    "screening belongs in the application layer",
    "simple primitives are best",
]


class Tokeniser(Proc):
    """Stage 1: counts tokens; a plain-callable entry (auto-reply)."""

    def main(self, ctx):
        yield from serve(
            ctx,
            ctx.initial_links,
            {TOKENISE: lambda text: (len(text.split()),)},
            count=len(SENTENCES),
        )


class Enricher(Proc):
    """Stage 2: a coroutine entry that does slow per-item work; forked
    per request so items overlap."""

    def enrich_entry(self, ctx, inc):
        text, tokens = inc.args
        yield from ctx.delay(float(tokens))  # pretend heavy analysis
        yield from ctx.reply(inc, (f"{text!r} [{tokens} tokens]",))

    def main(self, ctx):
        yield from serve(
            ctx, ctx.initial_links, {ENRICH: self.enrich_entry},
            count=len(SENTENCES),
        )


class Sink(Proc):
    """Stage 3: collects the finished records."""

    def __init__(self):
        self.records = []

    def main(self, ctx):
        yield from serve(
            ctx,
            ctx.initial_links,
            {STORE: lambda record: self.records.append(record)},
            count=len(SENTENCES),
        )


class Source(Proc):
    """Drives items through the stages."""

    def __init__(self):
        self.pushed = 0

    def item(self, ctx, links, text):
        to_tok, to_enrich, to_sink = links
        tokens = yield from call(ctx, to_tok, TOKENISE, text)
        record = yield from call(ctx, to_enrich, ENRICH, text, tokens)
        yield from call(ctx, to_sink, STORE, record)
        self.pushed += 1

    def main(self, ctx):
        links = ctx.initial_links
        for text in SENTENCES:
            yield from ctx.fork(self.item(ctx, links, text), "item")


def main() -> None:
    kind = sys.argv[1] if len(sys.argv) > 1 else "chrysalis"
    cluster = make_cluster(kind)
    source = Source()
    sink = Sink()
    src = cluster.spawn(source, "source")
    tok = cluster.spawn(Tokeniser(), "tokeniser")
    enr = cluster.spawn(Enricher(), "enricher")
    snk = cluster.spawn(sink, "sink")
    # the source's initial links, in order: tokeniser, enricher, sink
    cluster.create_link(src, tok)
    cluster.create_link(src, enr)
    cluster.create_link(src, snk)

    cluster.run_until_quiet()
    assert cluster.all_finished, cluster.unfinished()
    assert source.pushed == len(SENTENCES)

    print(f"kernel: {kind}")
    for rec in sink.records:
        print(f"  stored: {rec}")
    print(f"  simulated time: {cluster.engine.now:.2f} ms, "
          f"wire messages: {cluster.metrics.total('wire.messages.'):.0f}")


if __name__ == "__main__":
    main()
