"""E5 — §5.3's Chrysalis measurements.

    "Recent tests indicate that a simple remote operation requires
    about 2.4 ms with no data transfer and about 4.6 ms with 1000
    bytes of parameters in both directions.  Code tuning and protocol
    optimizations now under development are likely to improve both
    figures by 30 to 40%."

Also §5.3's comparative claim: "Message transmission times are also
faster on the Butterfly, by more than an order of magnitude" (vs
Charlotte).  The tuned cost profile is the paper's announced
optimisation, run as an ablation.
"""

import pytest

from repro.analysis.costmodel import PAPER
from repro.analysis.report import paper_vs_measured
from repro.workloads.rpc import run_rpc_workload


@pytest.mark.benchmark(group="e5")
def test_e5_chrysalis_latency_and_tuning(benchmark, save_table):
    data = {}

    def run():
        data["c0"] = run_rpc_workload("chrysalis", 0, count=5).mean_ms
        data["c1000"] = run_rpc_workload("chrysalis", 1000, count=5).mean_ms
        data["t0"] = run_rpc_workload("chrysalis", 0, count=5,
                                      tuned=True).mean_ms
        data["t1000"] = run_rpc_workload("chrysalis", 1000, count=5,
                                         tuned=True).mean_ms
        data["char0"] = run_rpc_workload("charlotte", 0, count=5).mean_ms
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    impr0 = (data["c0"] - data["t0"]) / data["c0"]
    impr1000 = (data["c1000"] - data["t1000"]) / data["c1000"]
    rows = [
        ("LYNX, 0 B (ms)", PAPER["chrysalis.lynx.rpc0"], data["c0"]),
        ("LYNX, 1000 B each way (ms)", PAPER["chrysalis.lynx.rpc1000"],
         data["c1000"]),
        ("tuned, 0 B (ms)", "30-40% better", data["t0"]),
        ("tuned improvement, 0 B", "0.30-0.40", impr0),
        ("tuned improvement, 1000 B", "copy-bound", impr1000),
        ("Charlotte/Chrysalis ratio, 0 B", ">10", data["char0"] / data["c0"]),
    ]
    save_table(
        "e5_chrysalis_latency",
        paper_vs_measured("E5: Chrysalis simple remote operation", rows),
    )

    assert data["c0"] == pytest.approx(2.4, rel=0.08)
    assert data["c1000"] == pytest.approx(4.6, rel=0.08)
    assert 0.30 <= impr0 <= 0.40
    assert data["char0"] / data["c0"] > 10.0
