"""E1 — §3.3's measurements table for Charlotte.

    "A simple remote operation (no enclosures) requires approximately
    57 ms with no data transfer and about 65 ms with 1000 bytes of
    parameters in both directions.  C programs that make the same
    series of kernel calls require 55 and 60 ms, respectively."

The bench regenerates all four numbers by running the RPC workload on
the simulated Crystal/Charlotte stack — once through the LYNX runtime
package, once as raw kernel calls — and anchors them against the
``ideal`` reference backend, whose zero-protocol round trip is the
floor every real kernel sits above.
"""

import pytest

from repro.analysis.costmodel import PAPER
from repro.analysis.report import paper_vs_measured
from repro.workloads.rpc import raw_charlotte_rpc, run_rpc_workload


@pytest.mark.benchmark(group="e1")
def test_e1_charlotte_simple_remote_operation(benchmark, save_table):
    results = {}

    def run():
        results["raw0"] = raw_charlotte_rpc(0, count=5).mean_ms
        results["raw1000"] = raw_charlotte_rpc(1000, count=5).mean_ms
        results["lynx0"] = run_rpc_workload("charlotte", 0, count=5).mean_ms
        results["lynx1000"] = run_rpc_workload(
            "charlotte", 1000, count=5
        ).mean_ms
        results["ideal0"] = run_rpc_workload("ideal", 0, count=5).mean_ms
        results["ideal1000"] = run_rpc_workload(
            "ideal", 1000, count=5
        ).mean_ms
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        ("raw kernel calls, 0 B", PAPER["charlotte.raw.rpc0"], results["raw0"]),
        ("raw kernel calls, 1000 B each way", PAPER["charlotte.raw.rpc1000"],
         results["raw1000"]),
        ("LYNX, 0 B", PAPER["charlotte.lynx.rpc0"], results["lynx0"]),
        ("LYNX, 1000 B each way", PAPER["charlotte.lynx.rpc1000"],
         results["lynx1000"]),
        ("ideal backend (floor), 0 B", None, results["ideal0"]),
        ("ideal backend (floor), 1000 B each way", None, results["ideal1000"]),
    ]
    save_table("e1_charlotte_latency",
               paper_vs_measured("E1: Charlotte simple remote operation (ms)",
                                 rows))

    assert results["raw0"] == pytest.approx(55.0, rel=0.05)
    assert results["raw1000"] == pytest.approx(60.0, rel=0.05)
    assert results["lynx0"] == pytest.approx(57.0, rel=0.05)
    assert results["lynx1000"] == pytest.approx(65.0, rel=0.05)
    # the runtime package's overhead is visible but modest (§3.3)
    assert results["lynx0"] > results["raw0"]
    assert results["lynx1000"] > results["raw1000"]
    # the ideal backend is strictly the fastest thing in the table
    assert results["ideal0"] < results["raw0"]
    assert results["ideal1000"] < results["raw1000"]
