"""E14 — goodput and tail latency under a seeded network partition
(§2.2 vs §4.1, §5.2).

Every registered backend runs the same paced failover workload twice —
fault-free, then under an identical seeded `partitioned_plan` severing
the client from the primary server.  The paper's "hints can be better
than absolutes" lesson, restated for failure handling:

  - Charlotte-style *absolutes* put recovery in the kernel.  Loss is
    invisible to the runtime, so the client has no signal to act on; a
    connect issued into the partition blocks until the window heals,
    goodput craters and the max round trip stretches toward the
    outage length.
  - SODA/Chrysalis-style *hints* put recovery in the runtime.  The
    `RecoveryPolicy` bounds the damage at its retry budget, surfaces
    `RecoveryExhausted`, and the client fails over to the backup link.

The bench asserts the strict goodput ordering, the bounded-vs-
unbounded tail latency split, and that two same-seed runs are
bit-identical (the whole fault plane is driven by the cluster's
seeded RNG tree).
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import kernel_profile, registered_kernels
from repro.workloads.chaos import (
    chaos_policy,
    partitioned_plan,
    run_chaos_workload,
)

COUNT = 30
SEED = 7


def _run_all(seed: int):
    """clean + faulted ChaosResult per backend, one identical plan."""
    data = {}
    for kind in registered_kernels():
        clean = run_chaos_workload(kind, count=COUNT, seed=seed)
        faulted = run_chaos_workload(
            kind, count=COUNT, seed=seed,
            plan=partitioned_plan(), policy=chaos_policy(),
        )
        data[kind] = (clean, faulted)
    return data


def _digest(data):
    """The reproducibility fingerprint of one full E14 sweep."""
    return {
        kind: (
            clean.completed, clean.elapsed_ms, tuple(clean.rtts),
            faulted.completed, faulted.failed, faulted.failed_over,
            faulted.elapsed_ms, tuple(faulted.rtts),
            tuple(sorted(faulted.counters.items())),
        )
        for kind, (clean, faulted) in data.items()
    }


@pytest.mark.benchmark(group="e14")
def test_e14_recovery_placement_under_partition(benchmark, save_table):
    data = {}

    def run():
        data.update(_run_all(SEED))
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"E14: goodput under a client<->primary partition "
        f"({COUNT} paced ops, seed {SEED})",
        ["kernel", "recovery", "clean op/s", "faulted op/s", "retention",
         "max rtt ms", "failovers", "retries", "kernel rexmit"],
    )
    for kind, (clean, faulted) in data.items():
        placement = kernel_profile(kind).capabilities.recovery_placement
        t.add(kind, placement, clean.goodput_per_s, faulted.goodput_per_s,
              faulted.goodput_per_s / clean.goodput_per_s,
              faulted.max_rtt_ms, faulted.failed_over,
              faulted.counters.get("recovery.retries", 0),
              faulted.counters.get("faults.kernel_retransmits", 0))
    save_table("e14_fault_recovery", t)

    by_placement = {"kernel": [], "runtime": []}
    for kind, (clean, faulted) in data.items():
        placement = kernel_profile(kind).capabilities.recovery_placement
        by_placement[placement].append((kind, clean, faulted))
        # every backend eventually completes every operation: absolutes
        # by waiting out the partition, hints by failing over
        assert faulted.completed == COUNT, (kind, faulted)
        assert faulted.failed == 0, (kind, faulted)
    assert by_placement["kernel"] and by_placement["runtime"]

    budget = chaos_policy().budget_ms()
    for kind, clean, faulted in by_placement["runtime"]:
        # hints: bounded damage — the client learned of the loss inside
        # the retry budget and rerouted; the worst round trip is the
        # budget plus one clean round trip, nowhere near the outage
        assert faulted.failed_over >= 1, (kind, faulted)
        assert faulted.counters.get("recovery.exhausted", 0) >= 1
        assert faulted.max_rtt_ms < 2.0 * budget, (kind, faulted.max_rtt_ms)
        for akind, _aclean, afaulted in by_placement["kernel"]:
            assert faulted.goodput_per_s > afaulted.goodput_per_s, \
                (kind, akind)
            assert faulted.max_rtt_ms < afaulted.max_rtt_ms, (kind, akind)
    for kind, clean, afaulted in by_placement["kernel"]:
        # absolutes: no runtime-visible signal, so no failover — and the
        # blocked connect's round trip stretches past the retry budget
        # toward the partition window
        assert afaulted.failed_over == 0, (kind, afaulted)
        assert afaulted.counters.get("faults.kernel_retransmits", 0) > 0
        assert afaulted.max_rtt_ms > 4.0 * budget, (kind, afaulted.max_rtt_ms)
        assert afaulted.goodput_per_s < clean.goodput_per_s


@pytest.mark.benchmark(group="e14")
def test_e14_same_seed_runs_are_identical(benchmark):
    """Acceptance: the whole faulted sweep is a pure function of the
    seed — drops, duplicates, partitions, retry jitter and all."""
    runs = []

    def run():
        runs.append(_digest(_run_all(SEED)))
        return runs

    benchmark.pedantic(run, rounds=1, iterations=1)
    runs.append(_digest(_run_all(SEED)))
    assert runs[0] == runs[1]
