"""E15 — the telemetry plane observed from outside (§5.2; Argyroulis,
PAPERS.md).

Before the cross-kernel numbers in E1/E4/E5 can be trusted at scale,
the observation machinery's own cost must be measured and bounded:
a telemetry plane that perturbs the system it measures reports on
itself, not on the kernels.  This harness drives the same machine
check the `python -m repro bench` E15 entry gates on —
`repro.obs.bench.bench_e15` — and renders its three contracts as a
table:

  - **overhead**: the identical echo-RPC conversation with
    observability off / head-sampled (1/16) / full, events/sec each;
    sampled tracing must cost <10% versus off in its cleanest
    interleaved window (full tracing's ~25% is the price the sampler
    exists to avoid).
  - **accuracy**: 100k seeded samples through the log-bucketed
    `StreamingHistogram`; p50..p99.9 within 1% of the exact sorted
    percentiles at O(buckets) memory.
  - **merge fidelity**: 8 shard histograms merged reproduce the
    single-stream percentiles bit-for-bit.

The wall-clock rates are machine-dependent (like S1); every `hist_*`
metric is deterministic for the seed.
"""

import pytest

from repro.analysis.report import Table
from repro.obs.bench import bench_e15

SEED = 0


@pytest.mark.benchmark(group="e15")
def test_e15_telemetry_self_overhead(benchmark, save_table):
    result = {}

    def run():
        # bench_e15 raises AssertionError itself when a contract fails
        result.update(bench_e15(seed=SEED, quick=False))
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"E15: telemetry self-overhead and histogram fidelity (seed {SEED})",
        ["mode", "events/s", "overhead vs off"],
    )
    t.add("off", result["obs_off_events_per_sec"], 0.0)
    t.add("sampled", result["obs_sampled_events_per_sec"],
          result["sampled_overhead_frac"])
    t.add("full", result["obs_full_events_per_sec"],
          result["full_overhead_frac"])
    save_table("e15_obs_overhead", t)

    # the gate bench_e15 enforces, restated for the bench log
    assert result["sampled_overhead_frac"] < 0.10
    assert result["hist_max_err_frac"] <= 0.01
    assert result["hist_merge_bitexact"] == 1.0
    # 1/16 head sampling kept a deterministic non-trivial fraction
    assert 0.0 < result["sampled_trace_frac"] < 0.5
    # O(buckets) << O(samples)
    assert result["hist_buckets"] * 100 <= result["hist_samples"]


@pytest.mark.benchmark(group="e15")
def test_e15_hist_metrics_are_seed_deterministic(benchmark):
    """The accuracy half of E15 is a pure function of the seed — only
    the wall-clock rates may differ between runs."""
    runs = []

    def run():
        runs.append(bench_e15(seed=SEED, quick=True))
        return runs

    benchmark.pedantic(run, rounds=1, iterations=1)
    runs.append(bench_e15(seed=SEED, quick=True))
    det_keys = ("sampled_trace_frac", "hist_samples", "hist_buckets",
                "hist_max_err_frac", "hist_merge_bitexact")
    first, second = runs
    assert {k: first[k] for k in det_keys} == {k: second[k] for k in det_keys}
