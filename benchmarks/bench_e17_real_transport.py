"""E17 — the real-transport backend, measured against the simulator.

The repo's other benches measure a simulated kernel; this one puts
real OS sockets under the same contracts.  It drives the machine
check the ``python -m repro bench`` E17 entry gates on —
`repro.obs.bench.bench_e17` — and renders both halves as a table:

  - **simulated**: the RPC workload on the registered ``real-asyncio``
    backend (every message round-tripped through a real socket,
    synchronously in simulated time); its shape must be bit-identical
    to the ``ideal`` backend's.
  - **measured**: real node processes under `repro.net.supervisor`,
    driven by the `repro.net.load` generator with wall-clock
    `RecoveryPolicy` retry/backoff; forced retries must be absorbed
    as server-side duplicates (exactly-once), and a hard-killed
    primary must turn into one failover per client.

Everything ``net_meas_*`` is wall-clock and machine-dependent (like
S1); the ``net_sim_*`` half is deterministic for a seed.  On hosts
that forbid sockets the whole suite skips with the reason.
"""

import pytest

from repro.analysis.report import Table
from repro.obs.bench import bench_e17

SEED = 0


@pytest.mark.benchmark(group="e17")
def test_e17_real_transport_vs_simulated(benchmark, save_table):
    result = {}

    def run():
        # bench_e17 raises AssertionError itself when exactly-once,
        # failover accounting, or the report contract breaks
        result.update(bench_e17(seed=SEED, quick=False))
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)
    if result["net_available"] != 1.0:
        pytest.skip("this host forbids sockets/subprocesses")

    t = Table(
        f"E17: measured real transport vs simulated shapes "
        f"({result['net_meas_clients']:.0f} clients, seed {SEED})",
        ["metric", "value"],
    )
    for key in sorted(result):
        t.add(key, result[key])
    save_table("e17_real_transport", t)

    # the gates bench_e17 enforces, restated for the bench log
    assert result["net_exactly_once"] == 1.0
    assert result["net_sim_rtt_ms"] == result["net_sim_ideal_rtt_ms"]
    assert result["net_meas_clients"] >= 1000
    assert result["net_meas_completed"] == result["net_meas_ops"]
    assert result["net_meas_duplicates"] >= 1
    assert result["net_meas_failovers"] >= result["net_meas_clients"]
    assert result["net_meas_vs_sim_rtt_ratio"] > 0


@pytest.mark.benchmark(group="e17")
def test_e17_simulated_half_is_seed_deterministic(benchmark):
    """Only the wall-clock half may vary between runs: the simulated
    shape of the real-transport backend is a pure function of the
    seed (the switch round-trip is synchronous in simulated time)."""
    runs = []

    def run():
        runs.append(bench_e17(seed=SEED, quick=True))
        return runs

    benchmark.pedantic(run, rounds=1, iterations=1)
    runs.append(bench_e17(seed=SEED, quick=True))
    first, second = runs
    if first["net_available"] != 1.0:
        pytest.skip("this host forbids sockets/subprocesses")
    det_keys = ("net_sim_rtt_ms", "net_sim_ideal_rtt_ms",
                "net_sim_wire_msgs", "net_exactly_once")
    assert {k: first[k] for k in det_keys} == {k: second[k] for k in det_keys}
