"""E7 — §3.2's rejected design: top-level reply acknowledgments.

    "Such exceptions are not provided under Charlotte because they
    would require a final, top-level acknowledgment for reply
    messages, increasing message traffic by 50%."

The ablated Charlotte runtime (``reply_acks=True``) implements exactly
that acknowledgment; the bench confirms the 50 % figure and that the
ablation buys back the server-side `RequestAborted` exception.
"""

import pytest

from repro.analysis.report import paper_vs_measured
from repro.core.api import INT, Operation, Proc, make_cluster

ADD = Operation("add", (INT, INT), (INT,))
N = 12


class Server(Proc):
    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ADD)
        yield from ctx.open(end)
        for _ in range(N):
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))


class Client(Proc):
    def main(self, ctx):
        (end,) = ctx.initial_links
        for i in range(N):
            yield from ctx.connect(end, ADD, (i, i))


def run(reply_acks: bool):
    cluster = make_cluster("charlotte", reply_acks=reply_acks)
    s = cluster.spawn(Server(), "server")
    c = cluster.spawn(Client(), "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e7)
    assert cluster.all_finished
    return {
        "messages": cluster.metrics.total("wire.messages."),
        "bytes": cluster.metrics.get("wire.bytes"),
        "sim_ms": cluster.engine.now,
    }


@pytest.mark.benchmark(group="e7")
def test_e7_reply_ack_traffic_increase(benchmark, save_table):
    data = {}

    def go():
        data["base"] = run(False)
        data["acked"] = run(True)
        return data

    benchmark.pedantic(go, rounds=1, iterations=1)

    increase = (
        data["acked"]["messages"] - data["base"]["messages"]
    ) / data["base"]["messages"]
    rows = [
        ("messages without acks", 2 * N, data["base"]["messages"]),
        ("messages with reply acks", 3 * N, data["acked"]["messages"]),
        ("traffic increase", 0.50, increase),
    ]
    save_table(
        "e7_reply_ack",
        paper_vs_measured(
            f"E7: reply acknowledgments over {N} remote operations", rows
        ),
    )
    assert data["base"]["messages"] == 2 * N
    assert data["acked"]["messages"] == 3 * N
    assert increase == pytest.approx(0.5)
