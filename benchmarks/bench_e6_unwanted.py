"""E6 — §3.2.1's unwanted-message machinery, measured.

The two scenarios the paper walks through — a reverse-direction request
while a reply is awaited, and an open-then-close race — are run for
several rounds on all three kernels.  Charlotte pays bounce traffic
(retry/forbid/allow) and resends; SODA and Chrysalis, whose kernels
never hand the runtime an unwanted message, pay nothing (§6: "be sure
that all received messages are wanted").
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import KERNEL_KINDS
from repro.workloads.adversarial import (
    run_open_close_scenario,
    run_reverse_scenario,
)

ROUNDS = 4


@pytest.mark.benchmark(group="e6")
def test_e6_unwanted_message_traffic(benchmark, save_table):
    data = {}

    def run():
        for kind in KERNEL_KINDS:
            data[("rev", kind)] = run_reverse_scenario(kind, rounds=ROUNDS)
            data[("oc", kind)] = run_open_close_scenario(kind, rounds=ROUNDS)
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"E6: unwanted-message traffic over {ROUNDS} adversarial rounds",
        ["scenario", "kernel", "unwanted", "retry", "forbid", "allow",
         "resends", "total msgs", "useful msgs"],
    )
    for scen, label in (("rev", "reverse-request"), ("oc", "open/close race")):
        for kind in KERNEL_KINDS:
            d = data[(scen, kind)]
            t.add(label, kind, d["unwanted"], d.get("retry"),
                  d.get("forbid"), d.get("allow"),
                  d.get("resends"), d["messages"],
                  d["useful_messages"])
    save_table("e6_unwanted", t)

    # Charlotte: one bounce round-trip per adversarial round, per §3.2.1
    rev_c = data[("rev", "charlotte")]
    assert rev_c["unwanted"] >= ROUNDS
    assert rev_c["forbid"] >= ROUNDS
    assert rev_c["allow"] >= ROUNDS
    oc_c = data[("oc", "charlotte")]
    assert oc_c["retry"] >= ROUNDS
    assert oc_c["resends"] >= ROUNDS
    # SODA and Chrysalis: zero, structurally — and the bounce counters
    # do not even exist in their digests
    for scen in ("rev", "oc"):
        for kind in ("soda", "chrysalis"):
            assert data[(scen, kind)]["unwanted"] == 0
            assert "retry" not in data[(scen, kind)]
            assert "forbid" not in data[(scen, kind)]
            # and no overhead messages at all beyond the useful ones
            assert (
                data[(scen, kind)]["messages"]
                == data[(scen, kind)]["useful_messages"]
            )
