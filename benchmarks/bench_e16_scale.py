"""E16 — sharded-engine scaling toward the million-client north star.

The ROADMAP's scale goal is bounded by the event engine, not the
kernels: one global heap serializes every event through one
``Event.__lt__``-ordered queue.  This harness drives the same machine
check the `python -m repro bench` E16 entry gates on —
`repro.obs.bench.bench_e16` — and renders its contracts as a table:

  - **throughput**: the 100k-client scale workload on every backend
    in `repro.sim.backends` (``global``, ``sharded-serial``,
    ``sharded-parallel``), events/sec by shard count; the parallel
    backend at 8 shards must beat the global heap by >= 2x.
  - **determinism**: same seed => same digest — ``global`` vs both
    sharded backends at the same shard count, and the parallel
    backend against itself across repeats at 8 shards.  A digest
    mismatch raises inside `bench_e16` before any rate is reported.

The events/sec rates are machine-dependent (like S1); every
``scale_digest_*`` / ``scale_repeat_*`` flag and the rtt metrics are
deterministic for the seed.
"""

import pytest

from repro.analysis.report import Table
from repro.obs.bench import bench_e16

SEED = 0


@pytest.mark.benchmark(group="e16")
def test_e16_sharded_engine_scaling(benchmark, save_table):
    result = {}

    def run():
        # bench_e16 raises AssertionError itself when a digest diverges
        # or the speedup contract fails
        result.update(bench_e16(seed=SEED, quick=False))
        return result

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"E16: sharded engine scaling, "
        f"{result['scale_clients']:.0f} clients (seed {SEED})",
        ["backend", "shards", "events/s"],
    )
    t.add("global", 1, result["scale_global_s1_events_per_sec"])
    t.add("global", 8, result["scale_global_s8_events_per_sec"])
    t.add("sharded-serial", 1, result["scale_serial_s1_events_per_sec"])
    t.add("sharded-serial", 8, result["scale_serial_s8_events_per_sec"])
    for shards in (1, 2, 4, 8):
        t.add("sharded-parallel", shards,
              result[f"scale_parallel_s{shards}_events_per_sec"])
    save_table("e16_scale", t)

    # the gates bench_e16 enforces, restated for the bench log
    assert result["scale_digest_match_s1"] == 1.0
    assert result["scale_digest_match_s8"] == 1.0
    assert result["scale_repeat_stable_s8"] == 1.0
    assert result["scale_parallel_s8_speedup"] >= 2.0
    assert result["scale_events_total"] > 0


@pytest.mark.benchmark(group="e16")
def test_e16_digests_are_seed_deterministic(benchmark):
    """The determinism half of E16 is a pure function of the seed —
    only the events/sec rates may differ between runs."""
    runs = []

    def run():
        runs.append(bench_e16(seed=SEED, quick=True))
        return runs

    benchmark.pedantic(run, rounds=1, iterations=1)
    runs.append(bench_e16(seed=SEED, quick=True))
    det_keys = ("scale_clients", "scale_events_total",
                "scale_digest_match_s1", "scale_digest_match_s8",
                "scale_repeat_stable_s8", "scale_rtt_mean_ms",
                "scale_rtt_p99_ms")
    first, second = runs
    assert {k: first[k] for k in det_keys} == {k: second[k] for k in det_keys}
