"""A4 — the run-time package's overhead on every kernel (§3.3 / §4.3).

§3.3 measures LYNX against "C programs that make the same series of
kernel calls" and attributes the difference to the runtime's work:
"gather and scatter parameters, block and unblock coroutines,
establish default exception handlers, enforce flow control, perform
type checking, update tables for enclosed links."

§4.3 then *predicts* the SODA runtime's overhead: "run-time routines
under SODA would need to perform most of the same functions as their
counterparts for Charlotte ... the lack of special cases might save
some time in conditional branches and subroutine calls, but relatively
major differences in run-time package overhead appear to be unlikely."

This bench measures LYNX-minus-raw on all three kernels (the raw
baselines live in `repro.workloads.raw`) and tests the prediction:
Charlotte's and SODA's overheads agree within a small factor.
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import KERNEL_KINDS
from repro.workloads.raw import raw_rpc
from repro.workloads.rpc import run_rpc_workload

KERNELS = KERNEL_KINDS


@pytest.mark.benchmark(group="a4")
def test_a4_runtime_overhead_across_kernels(benchmark, save_table):
    data = {}

    def run():
        for kind in KERNELS:
            data[(kind, "raw")] = raw_rpc(kind, 0, count=5).mean_ms
            data[(kind, "lynx")] = run_rpc_workload(kind, 0, count=5).mean_ms
            data[(kind, "raw1k")] = raw_rpc(kind, 1000, count=5).mean_ms
            data[(kind, "lynx1k")] = run_rpc_workload(
                kind, 1000, count=5
            ).mean_ms
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        "A4: LYNX runtime overhead = LYNX minus raw kernel calls (ms)",
        ["kernel", "raw 0B", "LYNX 0B", "overhead 0B",
         "raw 1000B", "LYNX 1000B", "overhead 1000B"],
    )
    overhead0 = {}
    for kind in KERNELS:
        o0 = data[(kind, "lynx")] - data[(kind, "raw")]
        o1k = data[(kind, "lynx1k")] - data[(kind, "raw1k")]
        overhead0[kind] = o0
        t.add(kind, data[(kind, "raw")], data[(kind, "lynx")], o0,
              data[(kind, "raw1k")], data[(kind, "lynx1k")], o1k)
    save_table("a4_runtime_overhead", t)

    # overhead is real and positive everywhere (§3.3's 57 > 55)
    for kind in KERNELS:
        assert overhead0[kind] > 0.5, (kind, overhead0)
    # §4.3's prediction: Charlotte's and SODA's runtime overheads are
    # of the same magnitude (we allow 2x either way)
    ratio = overhead0["soda"] / overhead0["charlotte"]
    assert 0.5 < ratio < 2.0, overhead0
    # Chrysalis's runtime rides much faster primitives: its overhead is
    # the smallest in absolute terms...
    assert overhead0["chrysalis"] == min(overhead0.values())
    # ...but the largest *relative* to its raw kernel cost — simple
    # primitives shift work INTO the runtime (§6 lesson three's flip
    # side)
    rel = {k: overhead0[k] / data[(k, "raw")] for k in KERNELS}
    assert rel["chrysalis"] == max(rel.values())
