"""S1 — simulator throughput (infrastructure, not a paper table).

Wall-clock benchmarks of the substrate itself, so performance
regressions in the engine or runtimes are visible in CI.  These are the
only benches where pytest-benchmark's timing is the measurement rather
than a driver; everything else reports *simulated* time.
"""

import pytest

from repro.core.api import (
    BYTES,
    Operation,
    Proc,
    make_cluster,
    make_engine,
    registered_kernels,
)

ECHO = Operation("echo", (BYTES,), (BYTES,))


@pytest.mark.benchmark(group="s1")
def test_s1_engine_event_throughput(benchmark):
    def run():
        eng = make_engine("global")
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 20_000:
                eng.schedule(0.5, tick)

        eng.schedule(0.0, tick)
        eng.run()
        return count

    assert benchmark(run) == 20_000


@pytest.mark.benchmark(group="s1")
@pytest.mark.parametrize("kind", registered_kernels())
def test_s1_rpc_simulation_throughput(benchmark, kind):
    """Wall time to simulate a 50-operation RPC conversation."""
    N = 50

    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            for _ in range(N):
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            for _ in range(N):
                yield from ctx.connect(end, ECHO, (b"x" * 64,))

    def run():
        cluster = make_cluster(kind)
        s = cluster.spawn(Server(), "server")
        c = cluster.spawn(Client(), "client")
        cluster.create_link(s, c)
        cluster.run_until_quiet(max_ms=1e7)
        assert cluster.all_finished
        return cluster.metrics.total("wire.messages.")

    assert benchmark(run) == 2 * N
