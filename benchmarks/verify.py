"""One-command observability smoke check (make-verify style):

    PYTHONPATH=src python benchmarks/verify.py [--out DIR]
                                               [--sim-backend NAME]

Runs ``python -m repro lint --deep`` (the determinism & layering pass
*and* the whole-program rules must be clean before anything is
measured, and the deep pass must finish inside a wall budget so the
analysis never becomes the slow stage), then ``python -m repro trace
--selftest`` (span trees, critical-path coverage and the Chrome export
on every registered kernel), then one
zero-byte RPC on every backend in the kernel registry (so a freshly
registered backend cannot silently miss the smoke net), then a seeded
lossy fault-recovery run per backend (messages must actually drop,
recovery must actually fire, and goodput must stay positive), then a
sharded scale smoke on every engine in the `repro.sim.backends`
registry (each run's digest must match the ``global`` oracle's), then
a real-transport smoke (one spawned node process, real sockets, one
forced retry — exactly-once accounting must hold; hosts that forbid
sockets skip it with the reason), followed by ``python -m repro bench
--quick`` (the full BENCH_*.json export at smoke counts), failing on
the first non-zero step.
``--sim-backend NAME`` pins the scale smoke and the bench export to
one registered engine; unknown names exit non-zero, same as an
unknown ``bench --only`` id.  Tier-1 covers the same ground
piecewise; this script is the single command to confirm the whole
observability pipeline works in a fresh checkout.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time
from typing import List, Optional

#: wall budget for the full `lint --deep` pass over the shipped tree —
#: parse + link + four interprocedural rules; generous next to the
#: bench stages, tight enough to catch an accidentally quadratic rule
LINT_DEEP_BUDGET_S = 30.0


def main(argv: Optional[List[str]] = None) -> int:
    from repro.cli import main as repro_main

    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None,
                    help="directory for BENCH_verify.json "
                         "(default: a fresh temp dir)")
    ap.add_argument("--sim-backend", default=None, metavar="NAME",
                    help="pin the scale smoke and the bench export to "
                         "one repro.sim.backends engine (default: "
                         "smoke every registered backend)")
    args = ap.parse_args(argv)
    out_dir = args.out or tempfile.mkdtemp(prefix="repro-verify-")

    from repro.core.api import registered_sim_backends, sim_backend_profile

    if args.sim_backend is not None:
        try:
            sim_backend_profile(args.sim_backend)
        except ValueError as exc:
            print(f"verify: {exc}", file=sys.stderr)
            return 2

    t0 = time.perf_counter()
    rc = repro_main(["lint", "--deep"])
    elapsed = time.perf_counter() - t0
    if rc != 0:
        print("verify: lint --deep FAILED", file=sys.stderr)
        return rc
    if elapsed > LINT_DEEP_BUDGET_S:
        print(f"verify: lint --deep took {elapsed:.1f}s > "
              f"{LINT_DEEP_BUDGET_S:.0f}s budget — the whole-program "
              f"pass may not become the slow stage", file=sys.stderr)
        return 1
    print(f"verify: lint --deep ok in {elapsed:.1f}s "
          f"(budget {LINT_DEEP_BUDGET_S:.0f}s)")

    rc = repro_main(["trace", "--selftest"])
    if rc != 0:
        print("verify: trace --selftest FAILED", file=sys.stderr)
        return rc

    # one RPC on every backend the registry knows about — including
    # ones registered after this script was written
    from repro.core.api import registered_kernels
    from repro.net import TransportUnavailable
    from repro.workloads.rpc import run_rpc_workload

    for kind in registered_kernels():
        try:
            r = run_rpc_workload(kind, 0, count=1)
        except TransportUnavailable as exc:
            print(f"verify: rpc smoke skipped on {kind} "
                  f"(this host forbids sockets: {exc})")
            continue
        except Exception as exc:  # noqa: BLE001 - smoke check reports all
            print(f"verify: rpc smoke FAILED on {kind}: {exc}",
                  file=sys.stderr)
            return 1
        if not r.rtts or r.mean_ms <= 0.0:
            print(f"verify: rpc smoke on {kind} returned no round trip",
                  file=sys.stderr)
            return 1
        print(f"verify: rpc smoke ok on {kind} ({r.mean_ms:.3f} ms)")

    # fault-recovery smoke: under a seeded lossy plan every backend
    # must lose messages, recover them its own way (kernel retransmit
    # vs runtime retry), and still complete every operation
    from repro.core.api import kernel_profile
    from repro.workloads.chaos import (
        chaos_policy,
        lossy_plan,
        run_chaos_workload,
    )

    for kind in registered_kernels():
        try:
            c = run_chaos_workload(kind, count=8, seed=1,
                                   plan=lossy_plan(), policy=chaos_policy())
        except TransportUnavailable as exc:
            print(f"verify: fault smoke skipped on {kind} "
                  f"(this host forbids sockets: {exc})")
            continue
        except Exception as exc:  # noqa: BLE001 - smoke check reports all
            print(f"verify: fault smoke FAILED on {kind}: {exc}",
                  file=sys.stderr)
            return 1
        placement = kernel_profile(kind).capabilities.recovery_placement
        dropped = (c.counters.get("faults.messages_lost", 0)
                   + c.counters.get("faults.dropped", 0))
        retries = (c.counters.get("recovery.retries", 0)
                   + c.counters.get("recovery.reply_retries", 0))
        retransmits = c.counters.get("faults.kernel_retransmits", 0)
        recovered = retransmits if placement == "kernel" else retries
        if c.completed != c.count or c.goodput_per_s <= 0.0:
            print(f"verify: fault smoke on {kind} lost operations "
                  f"({c.completed}/{c.count})", file=sys.stderr)
            return 1
        if dropped < 1 or recovered < 1:
            print(f"verify: fault smoke on {kind} injected no loss or "
                  f"recovered nothing (dropped={dropped}, "
                  f"recovered={recovered})", file=sys.stderr)
            return 1
        print(f"verify: fault smoke ok on {kind} ({placement} recovery, "
              f"{dropped:.0f} dropped, {recovered:.0f} resent, "
              f"{c.goodput_per_s:.1f} op/s)")

    # sharded-engine smoke: the same seeded scale run on every engine
    # in the backend registry (or the one pinned by --sim-backend)
    # must reproduce the global oracle's digest bit for bit
    from repro.workloads.scale import run_scale

    sim_backends = ([args.sim_backend] if args.sim_backend is not None
                    else list(registered_sim_backends()))
    oracle = run_scale("global", 2, clients=64, requests=2, seed=1)
    for name in sim_backends:
        try:
            r = run_scale(name, 2, clients=64, requests=2, seed=1)
        except Exception as exc:  # noqa: BLE001 - smoke check reports all
            print(f"verify: sim-backend smoke FAILED on {name}: {exc}",
                  file=sys.stderr)
            return 1
        if r.events <= 0 or r.completed <= 0:
            print(f"verify: sim-backend smoke on {name} fired no events",
                  file=sys.stderr)
            return 1
        if r.digest != oracle.digest:
            print(f"verify: sim-backend smoke on {name} diverged from "
                  f"the global oracle (digest {r.digest[:16]} != "
                  f"{oracle.digest[:16]})", file=sys.stderr)
            return 1
        print(f"verify: sim-backend smoke ok on {name} "
              f"({r.events} events, digest {r.digest[:16]})")

    # real-transport smoke: one spawned node process, a few client
    # coroutines through real sockets, one forced retry — the measured
    # path of the E17 bench at the smallest size that still proves
    # exactly-once (completed + exhausted == issued, the retransmission
    # absorbed as a server-side duplicate, never re-executed)
    from repro.net.load import query_stats, run_load
    from repro.net.supervisor import NodeSupervisor, SpawnFailed

    try:
        with NodeSupervisor() as sup:
            node = sup.spawn("verify", drop_first=1)
            load = run_load([node.endpoint], clients=2, requests=2)
            stats = query_stats(node.endpoint)
    except (TransportUnavailable, SpawnFailed, OSError) as exc:
        print(f"verify: real-transport smoke skipped "
              f"(this host forbids sockets/subprocesses: {exc})")
        load = stats = None
    if load is not None:
        if not load.exactly_once or load.completed != load.issued:
            print(f"verify: real-transport smoke broke exactly-once "
                  f"(issued={load.issued}, completed={load.completed}, "
                  f"exhausted={load.exhausted})", file=sys.stderr)
            return 1
        if load.retries < 1 or stats["duplicates"] < 1:
            print(f"verify: real-transport smoke forced no retry "
                  f"(retries={load.retries}, "
                  f"duplicates={stats['duplicates']})", file=sys.stderr)
            return 1
        if stats["executed_unique"] != load.issued:
            print(f"verify: real-transport smoke re-executed a request "
                  f"(unique={stats['executed_unique']} != "
                  f"issued={load.issued})", file=sys.stderr)
            return 1
        print(f"verify: real-transport smoke ok ({load.completed} ops, "
              f"{load.retries} retried, {stats['duplicates']} duplicate(s) "
              f"absorbed, {load.throughput_per_s:.0f} op/s)")

    bench_path = os.path.join(out_dir, "BENCH_verify.json")
    bench_argv = ["bench", "--quick", "--out", bench_path]
    if args.sim_backend is not None:
        bench_argv += ["--sim-backend", args.sim_backend]
    rc = repro_main(bench_argv)
    if rc != 0:
        print("verify: bench --quick FAILED", file=sys.stderr)
        return rc

    print(f"verify: ok ({bench_path})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
