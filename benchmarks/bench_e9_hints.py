"""E9 — §4.2's hint machinery under stress.

    "If the fixed end of a moving link is not in active use, there is
    no expense involved at all. ... The only real problems occur when
    an end of a dormant link is moved. ... If each process keeps a
    cache of links it has known about recently ... A may remember it
    sent L to B, and can tell C where it went.  If A has forgotten, C
    can use the discover command ... If the heuristics failed too
    often, a fall-back mechanism would be needed. [the freeze search]
    ... Without an actual implementation to measure, and without
    reasonable assumptions about the reliability of SODA broadcasts,
    it is impossible to predict the success rate of the heuristics."

We are the actual implementation, and broadcast reliability is a
parameter.  Part 1 (active link): every move redirects in-flight
requests — zero extra repair cost, as §4.2 promises.  Part 2 (dormant
link): the end moves several times unused, then the far end uses it
once; the sweep degrades the repair ladder rung by rung and prices
each rung, including the freeze search's "considerable disadvantage"
in frozen process-milliseconds.
"""

import pytest

from repro.analysis.report import Table
from repro.workloads.migration import (
    run_dormant_migration,
    run_migration_churn,
)

LADDER = [
    ("cache", dict(cache_size=64, broadcast_loss=0.0)),
    ("discover", dict(cache_size=0, broadcast_loss=0.0)),
    ("discover-lossy", dict(cache_size=0, broadcast_loss=0.6)),
    ("freeze", dict(cache_size=0, broadcast_loss=1.0)),
]


@pytest.mark.benchmark(group="e9")
def test_e9_soda_hint_repair_ladder(benchmark, save_table):
    data = {}

    def run():
        data["active"] = run_migration_churn(
            "soda", members=3, hops=6, seed=5, linger_ms=4000.0
        )
        for label, kw in LADDER:
            data[label] = run_dormant_migration("soda", seed=5, **kw)
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        "E9: SODA hint repair — active link, then a dormant link's "
        "first use after 6 moves",
        ["scenario", "rpc ok", "repair ms", "redirects", "probes",
         "discovers", "discover repairs", "freeze searches",
         "frozen proc-ms"],
    )
    act = data["active"]
    t.add("active link (per-RPC mean)", act["rpcs_served"],
          act["mean_rpc_ms"], act["redirects_followed"], 0,
          act["discovers"], act["discover_repairs"],
          act["freeze_searches"], act["frozen_ms"])
    for label, _ in LADDER:
        d = data[label]
        t.add(f"dormant / {label}", 1 if d["served_by"] is not None else 0,
              d["repair_latency_ms"], d["redirects_served"],
              d["hint_probes"], d["discovers"], d["discover_repairs"],
              d["freeze_searches"], d["frozen_ms"])
    save_table("e9_hints", t)

    # the active link never needs the heavy machinery: redirects only
    assert act["rpcs_served"] == 6
    assert act["discovers"] == 0 and act["freeze_searches"] == 0
    assert act["redirects_followed"] >= 6
    # the dormant ladder: every rung still finds the link...
    for label, _ in LADDER:
        assert data[label]["served_by"] is not None, label
    # ...at strictly escalating cost
    assert data["cache"]["freeze_searches"] == 0
    assert data["cache"]["discovers"] == 0
    assert data["discover"]["discover_repairs"] >= 1
    assert data["discover"]["freeze_searches"] == 0
    assert data["freeze"]["freeze_searches"] >= 1
    assert data["freeze"]["frozen_ms"] > 0
    assert (
        data["cache"]["repair_latency_ms"]
        < data["discover"]["repair_latency_ms"]
        <= data["discover-lossy"]["repair_latency_ms"]
        < data["freeze"]["repair_latency_ms"]
    )
