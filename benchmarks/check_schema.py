"""Schema drift gate for every machine-readable artifact in the repo:

    PYTHONPATH=src python benchmarks/check_schema.py

Validates

  - ``BENCH_PR8.json`` (and any other ``BENCH_*.json`` at the repo
    root): schema "repro.bench", ``schema_version`` equal to the code's
    ``BENCH_SCHEMA_VERSION``, and the exact top-level / per-bench key
    structure recorded in ``tests/obs/golden_bench_schema.json``
    (full-mode docs additionally carry the golden's
    ``benches_full_extra`` keys — the wider E4 payload sweep; the E16
    block's determinism flags and full-mode speedup are additionally
    value-checked, see ``check_e16_contract``, and the E17 block's
    exactly-once flag and full-mode client floor likewise, see
    ``check_e17_contract``);
  - ``benchmarks/out/*.json``: schema "repro.table" version 1, the
    ``name`` field matching the file name, and rows shaped like the
    header;
  - ``benchmarks/out/flight/*.jsonl``: flight-recorder black boxes
    (schema "repro.flight" at the code's ``FLIGHT_SCHEMA_VERSION``) —
    each must round-trip through `repro.obs.flight.load_flight_dump`
    with a complete header and an event count matching the header's;
  - the ``bench --compare`` report: when two or more ``BENCH_*.json``
    baselines exist (the perf trajectory), the oldest and newest are
    diffed with `repro.obs.compare.compare_files` and the resulting
    report must match ``tests/obs/golden_compare_schema.json`` — the
    compare format cannot drift without a golden update either;
  - ``LINT_BASELINE.json``: schema "repro.lint-baseline" version 1,
    every entry naming a registered lint rule — shallow *or*
    whole-program — and carrying a non-empty justifying ``note``
    (docs/LINT.md);
  - the ``lint --deep`` JSON report: generated in-process over the
    shipped tree and held to ``tests/analysis/golden_lint_schema.json``
    (version 2: top-level ``deep`` flag, per-rule ``scope``, and the
    golden's ``deep_rule_ids`` all present as ``program``-scoped
    rules), then downgraded to the version-1 shape and round-tripped
    through `load_lint_report` so archived v1 artifacts keep loading.

A bench whose keys change without a golden-file update (and a schema-
version bump) fails here — this is the CI job that makes "the baseline
format drifted silently" impossible.  Exits non-zero on the first
violation, printing every violation it found.
"""

from __future__ import annotations

import glob
import json
import os
import sys
from typing import List

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
GOLDEN = os.path.join(ROOT, "tests", "obs", "golden_bench_schema.json")
OUT_DIR = os.path.join(ROOT, "benchmarks", "out")

TABLE_SCHEMA_VERSION = 1


def check_bench_doc(path: str, golden: dict, errors: List[str]) -> None:
    from repro.obs.bench import BENCH_SCHEMA_VERSION

    with open(path) as fh:
        doc = json.load(fh)
    name = os.path.relpath(path, ROOT)
    if doc.get("schema") != golden["schema"]:
        errors.append(f"{name}: schema {doc.get('schema')!r} != "
                      f"{golden['schema']!r}")
        return
    if doc.get("schema_version") != BENCH_SCHEMA_VERSION:
        errors.append(
            f"{name}: schema_version {doc.get('schema_version')} != "
            f"code's BENCH_SCHEMA_VERSION {BENCH_SCHEMA_VERSION} — "
            f"regenerate with `python -m repro bench`"
        )
    if golden["schema_version"] != BENCH_SCHEMA_VERSION:
        errors.append(
            f"{os.path.relpath(GOLDEN, ROOT)}: golden schema_version "
            f"{golden['schema_version']} != code's "
            f"{BENCH_SCHEMA_VERSION} — update the golden file"
        )
    if sorted(doc) != golden["top_level"]:
        errors.append(f"{name}: top-level keys {sorted(doc)} != "
                      f"{golden['top_level']}")
        return
    got = {k: sorted(v) for k, v in doc["benches"].items()}
    want = {k: sorted(v) for k, v in golden["benches"].items()}
    if not doc.get("quick"):
        extra = golden.get("benches_full_extra", {})
        want = {k: sorted(v + extra.get(k, [])) for k, v in want.items()}
    if set(got) != set(want):
        errors.append(f"{name}: bench ids {sorted(got)} != {sorted(want)}")
        return
    for bid in sorted(want):
        if got[bid] != want[bid]:
            errors.append(
                f"{name}: {bid} metrics drifted; "
                f"missing={sorted(set(want[bid]) - set(got[bid]))} "
                f"extra={sorted(set(got[bid]) - set(want[bid]))}"
            )
    for bid, metrics in doc["benches"].items():
        for metric, value in metrics.items():
            if value is not None and not isinstance(value, (int, float)):
                errors.append(f"{name}: {bid}.{metric} is "
                              f"{type(value).__name__}, not a JSON number")
    check_e16_contract(name, doc, errors)
    check_e17_contract(name, doc, errors)


def check_e16_contract(name: str, doc: dict, errors: List[str]) -> None:
    """E16 carries machine-checked claims, not just rates: a committed
    baseline whose determinism flags are not exactly 1.0, or whose
    full-mode 8-shard speedup is below the gated 2x, is invalid even if
    its key structure matches the golden file."""
    e16 = doc.get("benches", {}).get("E16")
    if not e16:
        return  # pre-E16 baselines carry no block; post-E16 nulls are fine
    for flag in ("scale_digest_match_s1", "scale_digest_match_s8",
                 "scale_repeat_stable_s8"):
        value = e16.get(flag)
        if value is not None and value != 1.0:
            errors.append(f"{name}: E16.{flag} = {value!r}; a baseline "
                          f"may only record a passing (1.0) flag")
    speedup = e16.get("scale_parallel_s8_speedup")
    if speedup is not None and not doc.get("quick") and speedup < 2.0:
        errors.append(f"{name}: E16.scale_parallel_s8_speedup = "
                      f"{speedup} < 2.0 — full-mode baselines must "
                      f"clear the gated speedup")


def check_e17_contract(name: str, doc: dict, errors: List[str]) -> None:
    """E17's measured half is machine-dependent, but its *claims* are
    not: a committed baseline either ran the real transport with
    exactly-once intact (1.0) or skipped it entirely (nulls) — there is
    no valid in-between; and a full-mode run that did execute must have
    sustained the gated thousand concurrent client coroutines."""
    e17 = doc.get("benches", {}).get("E17")
    if not e17:
        return  # pre-E17 baselines carry no block
    flag = e17.get("net_exactly_once")
    if flag is not None and flag != 1.0:
        errors.append(f"{name}: E17.net_exactly_once = {flag!r}; a "
                      f"baseline may only record a passing (1.0) flag "
                      f"or a null skip")
    clients = e17.get("net_meas_clients")
    if clients is not None and not doc.get("quick") and clients < 1000:
        errors.append(f"{name}: E17.net_meas_clients = {clients:.0f} "
                      f"< 1000 — full-mode baselines must sustain the "
                      f"gated concurrent-client floor")


def check_table_doc(path: str, errors: List[str]) -> None:
    name = os.path.relpath(path, ROOT)
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != "repro.table":
        errors.append(f"{name}: schema {doc.get('schema')!r} != "
                      f"'repro.table'")
        return
    if doc.get("schema_version") != TABLE_SCHEMA_VERSION:
        errors.append(f"{name}: schema_version "
                      f"{doc.get('schema_version')} != "
                      f"{TABLE_SCHEMA_VERSION}")
    stem = os.path.splitext(os.path.basename(path))[0]
    if doc.get("name") != stem:
        errors.append(f"{name}: name {doc.get('name')!r} != file stem "
                      f"{stem!r}")
    if "columns" in doc or "rows" in doc:
        cols = doc.get("columns")
        rows = doc.get("rows")
        if not isinstance(cols, list) or not cols:
            errors.append(f"{name}: 'columns' missing or empty")
            return
        if not isinstance(rows, list):
            errors.append(f"{name}: 'rows' missing")
            return
        for i, row in enumerate(rows):
            if not isinstance(row, list) or len(row) != len(cols):
                errors.append(f"{name}: row {i} does not match the "
                              f"{len(cols)}-column header")


def check_compare_report(bench_docs: List[str], errors: List[str]) -> None:
    """Diff the oldest committed baseline against the newest and hold
    the report to the compare golden file."""
    from repro.obs.compare import (
        COMPARE_SCHEMA,
        COMPARE_SCHEMA_VERSION,
        CompareError,
        compare_files,
    )

    golden_path = os.path.join(ROOT, "tests", "obs",
                               "golden_compare_schema.json")
    with open(golden_path) as fh:
        golden = json.load(fh)
    name = "bench --compare report"
    if golden["schema_version"] != COMPARE_SCHEMA_VERSION:
        errors.append(
            f"{os.path.relpath(golden_path, ROOT)}: golden "
            f"schema_version {golden['schema_version']} != code's "
            f"{COMPARE_SCHEMA_VERSION} — update the golden file"
        )
    try:
        report = compare_files(bench_docs[0], bench_docs[-1])
    except CompareError as exc:
        errors.append(f"{name}: {exc}")
        return
    if report["schema"] != COMPARE_SCHEMA != golden["schema"]:
        errors.append(f"{name}: schema {report['schema']!r}")
    if sorted(report) != golden["top_level"]:
        errors.append(f"{name}: top-level keys {sorted(report)} != "
                      f"{golden['top_level']}")
        return
    for side in ("old", "new"):
        if sorted(report[side]) != golden["meta_keys"]:
            errors.append(f"{name}: {side} meta keys "
                          f"{sorted(report[side])} != {golden['meta_keys']}")
    for bid, rows in report["benches"].items():
        for metric, row in rows.items():
            if sorted(row) != golden["row_keys"]:
                errors.append(f"{name}: {bid}.{metric} row keys "
                              f"{sorted(row)} != {golden['row_keys']}")
                return
            if row["direction"] not in golden["directions"]:
                errors.append(f"{name}: {bid}.{metric} direction "
                              f"{row['direction']!r} unknown")
            if row["status"] not in golden["statuses"]:
                errors.append(f"{name}: {bid}.{metric} status "
                              f"{row['status']!r} unknown")


FLIGHT_HEADER_KEYS = ["capacity", "events", "kind", "reason", "schema",
                      "seed", "t", "version"]


def check_flight_dump(path: str, errors: List[str]) -> None:
    from repro.obs.flight import load_flight_dump

    name = os.path.relpath(path, ROOT)
    try:
        header, metrics, events = load_flight_dump(path)
    except (ValueError, KeyError) as exc:
        errors.append(f"{name}: {exc}")
        return
    if sorted(header) != FLIGHT_HEADER_KEYS:
        errors.append(f"{name}: header keys {sorted(header)} != "
                      f"{FLIGHT_HEADER_KEYS}")
    if header.get("events") != len(events):
        errors.append(f"{name}: header says {header.get('events')} "
                      f"events, dump carries {len(events)}")
    if not isinstance(metrics, dict) or "counters" not in metrics:
        errors.append(f"{name}: no metric snapshot line "
                      "(expected {\"metrics\": ...} on line 2)")


def check_lint_baseline(path: str, errors: List[str]) -> None:
    from repro.analysis.flow import registered_deep_rules
    from repro.analysis.lint import (
        BaselineError,
        load_baseline,
        registered_rules,
    )

    name = os.path.relpath(path, ROOT)
    try:
        entries = load_baseline(path)
    except BaselineError as exc:
        errors.append(str(exc))
        return
    known = {r.id for r in registered_rules()}
    known.update(r.id for r in registered_deep_rules())
    for e in entries:
        if e.rule not in known:
            errors.append(f"{name}: entry grandfathers unknown rule "
                          f"{e.rule!r} (registered: {sorted(known)})")


def check_lint_report(errors: List[str]) -> None:
    """Generate the ``lint --deep`` report over the shipped tree and
    hold it to the v2 golden, then prove the v1 loader still works."""
    from repro.analysis.lint import load_lint_report, run_lint
    from repro.analysis.lint.report import (
        LINT_SCHEMA_VERSION,
        LintReportError,
        lint_json_doc,
    )

    golden_path = os.path.join(ROOT, "tests", "analysis",
                               "golden_lint_schema.json")
    name = "lint --deep report"
    if not os.path.exists(golden_path) or not os.path.isdir(
        os.path.join(ROOT, "src", "repro")
    ):
        # a stripped checkout (no tests/ or no src/) has nothing to
        # hold the report to; the bench/table gates above still apply
        print(f"check_schema: {name} skipped (stripped checkout)")
        return
    with open(golden_path) as fh:
        golden = json.load(fh)
    if golden["schema_version"] != LINT_SCHEMA_VERSION:
        errors.append(
            f"{os.path.relpath(golden_path, ROOT)}: golden "
            f"schema_version {golden['schema_version']} != code's "
            f"{LINT_SCHEMA_VERSION} — update the golden file"
        )
    doc = lint_json_doc(run_lint(root=ROOT, deep=True))
    if sorted(doc) != golden["top_level"]:
        errors.append(f"{name}: top-level keys {sorted(doc)} != "
                      f"{golden['top_level']}")
        return
    if doc["deep"] is not True:
        errors.append(f"{name}: deep flag is {doc['deep']!r}, not True")
    deep_ids = sorted(r for r, e in doc["rules"].items()
                      if e.get("scope") == "program")
    if deep_ids != golden["deep_rule_ids"]:
        errors.append(f"{name}: program-scoped rules {deep_ids} != "
                      f"golden deep_rule_ids {golden['deep_rule_ids']}")
    shallow_ids = sorted(r for r, e in doc["rules"].items()
                         if e.get("scope") == "module")
    if shallow_ids != golden["rule_ids"]:
        errors.append(f"{name}: module-scoped rules {shallow_ids} != "
                      f"golden rule_ids {golden['rule_ids']}")
    if doc["exit_code"] != 0:
        errors.append(f"{name}: the shipped tree is not deep-clean "
                      f"(exit_code {doc['exit_code']})")
    v1 = {k: v for k, v in doc.items() if k != "deep"}
    v1["schema_version"] = 1
    v1["rules"] = {rid: {k: v for k, v in entry.items() if k != "scope"}
                   for rid, entry in doc["rules"].items()}
    try:
        loaded = load_lint_report(v1)
    except LintReportError as exc:
        errors.append(f"{name}: v1 round-trip failed: {exc}")
        return
    if loaded["schema_version"] != LINT_SCHEMA_VERSION or loaded["deep"]:
        errors.append(f"{name}: v1 round-trip did not normalize to the "
                      f"v2 shape (version {loaded['schema_version']}, "
                      f"deep {loaded['deep']!r})")


def main() -> int:
    errors: List[str] = []
    with open(GOLDEN) as fh:
        golden = json.load(fh)

    bench_docs = sorted(glob.glob(os.path.join(ROOT, "BENCH_*.json")))
    if not bench_docs:
        errors.append("no BENCH_*.json baseline found at the repo root")
    for path in bench_docs:
        check_bench_doc(path, golden, errors)
    if len(bench_docs) >= 2:
        check_compare_report(bench_docs, errors)

    table_docs = sorted(glob.glob(os.path.join(OUT_DIR, "*.json")))
    if not table_docs:
        errors.append("no benchmarks/out/*.json tables found")
    for path in table_docs:
        check_table_doc(path, errors)

    flight_docs = sorted(glob.glob(os.path.join(OUT_DIR, "flight",
                                                "*.jsonl")))
    if not flight_docs:
        errors.append("no benchmarks/out/flight/*.jsonl black box found "
                      "(regenerate: python -m repro flight --demo "
                      "--out benchmarks/out/flight)")
    for path in flight_docs:
        check_flight_dump(path, errors)

    baseline = os.path.join(ROOT, "LINT_BASELINE.json")
    if not os.path.exists(baseline):
        errors.append("no LINT_BASELINE.json found at the repo root")
    else:
        check_lint_baseline(baseline, errors)

    check_lint_report(errors)

    if errors:
        for e in errors:
            print(f"check_schema: {e}", file=sys.stderr)
        return 1
    print(f"check_schema: ok ({len(bench_docs)} bench baseline(s), "
          f"{len(table_docs)} tables, {len(flight_docs)} flight "
          f"dump(s), lint baseline, deep lint report)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
