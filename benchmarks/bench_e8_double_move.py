"""E8 — figure 1: both ends of one link moved simultaneously.

    "processes A and D are moving their ends of link 3, independently,
    in such a way that what used to connect A to D will now connect B
    to C.  ... The process at the far end of each moved link must be
    oblivious to the move, even if it is currently relocating its end
    as well."

The bench stages exactly that on all three kernels and measures what
the move costs each one: Charlotte runs its three-party agreement per
end (per-link lock, so the simultaneous moves serialise — §6 lesson
one: "a major source of problems in the kernel"); SODA and Chrysalis
just ship names/objects and repair hints afterwards.
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import (
    INT,
    KERNEL_KINDS,
    LINK,
    Operation,
    Proc,
    make_cluster,
)
from repro.core.ports import kernel_metric_digest

ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())


class Starter(Proc):
    """Owns link3 initially; gives one end to A and one to D."""

    def main(self, ctx):
        to_a, to_d = ctx.initial_links
        yield from ctx.register(GIVE)
        e_a, e_d = yield from ctx.new_link()
        yield from ctx.connect(to_a, GIVE, (e_a,))
        yield from ctx.connect(to_d, GIVE, (e_d,))
        yield from ctx.delay(8000.0)  # serve stale-hint redirects


class Mover(Proc):
    """A or D: receives an end of link3 and immediately moves it on."""

    def main(self, ctx):
        from_starter, to_target = ctx.initial_links
        yield from ctx.register(GIVE)
        yield from ctx.open(from_starter)
        inc = yield from ctx.wait_request()
        l3 = inc.args[0]
        yield from ctx.reply(inc, ())
        yield from ctx.connect(to_target, GIVE, (l3,))
        yield from ctx.delay(8000.0)


class FinalClient(Proc):
    """B: ends up with one end of link3; uses it as a client."""

    def __init__(self):
        self.reply = None

    def main(self, ctx):
        (from_mover,) = ctx.initial_links
        yield from ctx.register(GIVE, ADD)
        yield from ctx.open(from_mover)
        inc = yield from ctx.wait_request()
        l3 = inc.args[0]
        yield from ctx.reply(inc, ())
        yield from ctx.delay(500.0)
        self.reply = yield from ctx.connect(l3, ADD, (40, 2))


class FinalServer(Proc):
    """C: ends up with the other end; serves on it."""

    def main(self, ctx):
        (from_mover,) = ctx.initial_links
        yield from ctx.register(GIVE, ADD)
        yield from ctx.open(from_mover)
        inc = yield from ctx.wait_request()
        l3 = inc.args[0]
        yield from ctx.reply(inc, ())
        yield from ctx.open(l3)
        inc2 = yield from ctx.wait_request()
        yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))


def run_double_move(kind: str):
    cluster = make_cluster(kind, seed=11)
    starter = cluster.spawn(Starter(), "starter")
    a = cluster.spawn(Mover(), "a")
    d = cluster.spawn(Mover(), "d")
    b_prog, c_prog = FinalClient(), FinalServer()
    b = cluster.spawn(b_prog, "b")
    c = cluster.spawn(c_prog, "c")
    cluster.create_link(starter, a)
    cluster.create_link(starter, d)
    cluster.create_link(a, b)
    cluster.create_link(d, c)
    cluster.run_until_quiet(max_ms=1e7)
    m = cluster.metrics
    assert b_prog.reply == (42,), (kind, cluster.unfinished())
    digest = {
        "ok": cluster.all_finished,
        "sim_ms": cluster.engine.now,
        "wire_messages": m.total("wire.messages."),
    }
    digest.update(kernel_metric_digest(kind, m, {
        "move_msgs": "charlotte.move_msgs",
        "move_retries": "charlotte.move_retries",
        "moves_committed": "charlotte.moves_committed",
        "redirects": "soda.redirects_served",
        "stale_notices": "chrysalis.stale_notices",
    }))
    return digest


@pytest.mark.benchmark(group="e8")
def test_e8_simultaneous_double_move(benchmark, save_table):
    data = {}

    def run():
        for kind in KERNEL_KINDS:
            data[kind] = run_double_move(kind)
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        "E8: figure 1 — both ends of link 3 moved simultaneously",
        ["kernel", "completed", "move-protocol msgs", "lock retries",
         "hint redirects", "stale notices", "total msgs"],
    )
    for kind in KERNEL_KINDS:
        d = data[kind]
        t.add(kind, str(d["ok"]), d.get("move_msgs"), d.get("move_retries"),
              d.get("redirects"), d.get("stale_notices"), d["wire_messages"])
    save_table("e8_double_move", t)

    # all three deliver figure 1's outcome (B talks to C over link 3)
    assert all(data[k]["ok"] for k in data)
    # Charlotte paid >= 3 kernel messages per committed move
    char = data["charlotte"]
    assert char["moves_committed"] >= 4  # 2 initial gives + 2 moves of l3
    assert char["move_msgs"] >= 3 * char["moves_committed"]
    # the other kernels have no move agreement at all: counter absent
    assert "move_msgs" not in data["soda"]
    assert "move_msgs" not in data["chrysalis"]
