"""A5 — a second language on the same kernels (§6, lesson three).

    "...by maintaining the flexibility of the kernel interface they
    permit equally efficient implementations of a wide variety of
    other distributed languages, with entirely different needs."

Mini-Linda (`repro.linda`) is that other language: an associative
tuple space with blocking ``in`` — nothing like LYNX links.  The bench
compares the three kernel adapters on:

* **latency** of an out + take exchange;
* **cost of blocking**: extra kernel traffic when a take must wait
  (SODA: zero — the unaccepted request IS the wait; Chrysalis: zero —
  an event block parks; Charlotte: the server must buffer the pattern
  and owe a reply);
* **adapter complexity** (logical LoC / branches), the E2 measure
  applied to the second language.

The shape that must reproduce: the low-level kernels fit the second
language as naturally as they fit the first; the high-level kernel is
again the bulkiest fit.
"""

import pytest

from repro.analysis.complexity import analyze_module
from repro.analysis.report import Table
from repro.core.api import KERNEL_KINDS
from repro.linda import ANY, make_linda
from repro.sim.tasks import sleep

KINDS = KERNEL_KINDS


def measure(kind: str, block_ms: float):
    system = make_linda(kind)
    stamps = {}

    def consumer(c):
        t0 = system.engine.now
        tup = yield from c.take(("k", ANY))
        stamps["latency"] = system.engine.now - t0
        assert tup == ("k", 1)
        yield from c.close()

    def producer(c):
        if block_ms:
            yield sleep(system.engine, block_ms)
        yield from c.out(("k", 1))
        yield from c.close()

    system.spawn(consumer(system.client("c")))
    system.spawn(producer(system.client("p")))
    system.run_until_quiet(max_ms=1e7)
    assert system.all_finished
    system.check()
    return {
        "latency_ms": stamps["latency"],
        "frames": system.metrics.total("wire.frames.")
        + system.metrics.total("wire.messages."),
    }


def adapter_complexity(kind: str):
    import repro.linda.charlotte_adapter
    import repro.linda.chrysalis_adapter
    import repro.linda.soda_adapter

    mod = {
        "charlotte": repro.linda.charlotte_adapter,
        "soda": repro.linda.soda_adapter,
        "chrysalis": repro.linda.chrysalis_adapter,
    }[kind]
    return analyze_module(mod)


@pytest.mark.benchmark(group="a5")
def test_a5_second_language_comparison(benchmark, save_table):
    data = {}

    def run():
        for kind in KINDS:
            data[(kind, "quick")] = measure(kind, 0.0)
            data[(kind, "blocked")] = measure(kind, 1000.0)
            data[(kind, "stats")] = adapter_complexity(kind)
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        "A5: mini-Linda (the second language) per kernel",
        ["kernel", "out+take ms", "frames", "frames when take blocks 1s",
         "adapter loc", "adapter branches"],
    )
    for kind in KINDS:
        q, b, stats = (data[(kind, "quick")], data[(kind, "blocked")],
                       data[(kind, "stats")])
        t.add(kind, q["latency_ms"], q["frames"], b["frames"],
              stats.logical_loc, stats.branches)
    save_table("a5_second_language", t)

    # correctness everywhere, at wildly different costs
    lat = {k: data[(k, "quick")]["latency_ms"] for k in KINDS}
    assert lat["chrysalis"] < lat["soda"] < lat["charlotte"]
    # blocking costs NO extra kernel traffic on the low-level kernels
    for kind in ("soda", "chrysalis"):
        assert (
            data[(kind, "blocked")]["frames"]
            == data[(kind, "quick")]["frames"]
        ), kind
    # the high-level kernel needs the biggest adapter for the second
    # language too — §6 lesson three, generalised beyond LYNX
    loc = {k: data[(k, "stats")].logical_loc for k in KINDS}
    assert loc["charlotte"] == max(loc.values())
    assert loc["chrysalis"] == min(loc.values())
