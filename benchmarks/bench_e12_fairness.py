"""E12 — §2.1's fairness guarantee, measured.

    "For the sake of fairness, an implementation must guarantee that
    no queue is ignored forever."

One chatty client floods the server's first link; quiet clients arrive
on other links mid-flood.  The measure is the longest run of chatty
services a quiet request had to sit through — which must stay bounded
(round-robin gives ~1) and must not grow with the flood length.
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import KERNEL_KINDS
from repro.workloads.skew import run_skewed_load

FLOODS = (8, 24)
QUIET = 3


@pytest.mark.benchmark(group="e12")
def test_e12_no_queue_ignored_forever(benchmark, save_table):
    data = {}

    def run():
        for kind in KERNEL_KINDS:
            for flood in FLOODS:
                data[(kind, flood)] = run_skewed_load(
                    kind, quiet_clients=QUIET, chatty_requests=flood, seed=2
                )
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"E12: fairness under skew ({QUIET} quiet clients vs a flood)",
        ["kernel", "flood len", "worst chatty run", "quiet mean ms",
         "quiet max ms"],
    )
    for kind in KERNEL_KINDS:
        for flood in FLOODS:
            d = data[(kind, flood)]
            lats = d["quiet_latencies_ms"]
            t.add(kind, flood, d["worst_chatty_run_before_quiet"],
                  sum(lats) / len(lats), max(lats))
    save_table("e12_fairness", t)

    for kind in KERNEL_KINDS:
        for flood in FLOODS:
            d = data[(kind, flood)]
            # a quiet request never waits behind more than a handful of
            # chatty services once it is deliverable
            assert d["worst_chatty_run_before_quiet"] <= 6, (kind, flood, d)
        # latency does not scale with the flood length
        small = data[(kind, FLOODS[0])]
        large = data[(kind, FLOODS[1])]
        ratio_flood = FLOODS[1] / FLOODS[0]
        mean_small = sum(small["quiet_latencies_ms"]) / QUIET
        mean_large = sum(large["quiet_latencies_ms"]) / QUIET
        assert mean_large < mean_small * ratio_flood, (kind, mean_small,
                                                       mean_large)
