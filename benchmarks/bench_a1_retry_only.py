"""A1 (ablation) — why forbid/allow exists at all (§3.2.1).

    "If A simply returned requests to B in retry messages, it might be
    subjected to an arbitrary number of retransmissions.  To prevent
    these retransmissions we must introduce the forbid and allow
    messages."

The ablated runtime (``no_forbid=True``) answers every unwanted request
with a bare retry.  In the reverse-direction scenario A keeps a Receive
posted for the reply it expects, so B's retried request matches it
*again* immediately — a bounce loop that runs until B's reply finally
arrives.  The bench scales B's reply delay and watches retransmissions
grow without bound in the ablated runtime while the real one stays at
one bounce per round.
"""

import pytest

from repro.analysis.report import Table
from repro.workloads.adversarial import run_reverse_scenario

DELAYS = (1.0, 150.0, 400.0)
ROUNDS = 2


@pytest.mark.benchmark(group="a1")
def test_a1_retry_only_retransmission_storm(benchmark, save_table):
    data = {}

    def run():
        for delay in DELAYS:
            data[("forbid", delay)] = run_reverse_scenario(
                "charlotte", rounds=ROUNDS, reply_delay_ms=delay
            )
            data[("retry-only", delay)] = run_reverse_scenario(
                "charlotte", rounds=ROUNDS, reply_delay_ms=delay,
                no_forbid=True,
            )
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"A1: forbid/allow vs bare retry ({ROUNDS} reverse-request rounds)",
        ["variant", "B's reply delay ms", "unwanted received",
         "retries sent", "resends", "total msgs"],
    )
    for variant in ("forbid", "retry-only"):
        for delay in DELAYS:
            d = data[(variant, delay)]
            t.add(variant, delay, d["unwanted"], d["retry"], d["resends"],
                  d["messages"])
    save_table("a1_retry_only", t)

    for delay in DELAYS:
        forbid = data[("forbid", delay)]
        retry = data[("retry-only", delay)]
        # the real runtime bounces each unwanted request exactly once,
        # independent of how long B sits on the reply
        assert forbid["unwanted"] == ROUNDS
        assert forbid["resends"] == ROUNDS
        # the ablation's bounce count grows with the reply delay
        assert retry["resends"] >= forbid["resends"]
    slow = data[("retry-only", DELAYS[-1])]
    fast = data[("retry-only", DELAYS[0])]
    assert slow["resends"] > fast["resends"], (
        "retransmissions should grow with the unwanted window"
    )
    assert slow["resends"] >= 3 * ROUNDS
