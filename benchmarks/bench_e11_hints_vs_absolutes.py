"""E11 — §6 lesson one: "Hints can be better than absolutes."

    "The Charlotte kernel admits that a link end has been moved only
    when all three parties agree.  The protocol for obtaining such
    agreement was a major source of problems in the kernel ... The
    implementation of links on top of SODA and Chrysalis was
    comparatively easy."

The migration churn (2 moves per hop, traffic in flight) runs on all
three kernels; the bench counts what each kernel spends *per move*:
Charlotte's agreement messages (and lock retries), SODA's after-the-
fact redirects, Chrysalis's discarded stale notices.
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import KERNEL_KINDS
from repro.workloads.migration import run_migration_churn

HOPS = 6
MEMBERS = 3


@pytest.mark.benchmark(group="e11")
def test_e11_move_cost_per_kernel(benchmark, save_table):
    data = {}

    def run():
        for kind in KERNEL_KINDS:
            data[kind] = run_migration_churn(
                kind, members=MEMBERS, hops=HOPS, seed=9, linger_ms=4000.0
            )
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    moves = data["charlotte"]["moves"]
    t = Table(
        f"E11: cost of moving a link end ({moves} moves, traffic live)",
        ["kernel", "agreement msgs", "per move", "lock retries",
         "hint redirects", "stale notices", "rpcs ok"],
    )
    for kind in KERNEL_KINDS:
        d = data[kind]
        agreement = d.get("move_msgs")
        t.add(kind, agreement,
              agreement / moves if agreement is not None else None,
              d.get("move_retries"), d.get("redirects_followed"),
              d.get("stale_notices"), d["rpcs_served"])
    save_table("e11_hints_vs_absolutes", t)

    for kind in KERNEL_KINDS:
        assert data[kind]["rpcs_served"] == HOPS, (kind, data[kind])
    # absolutes: >= 3 kernel messages per move, on the critical path
    char = data["charlotte"]
    assert char["move_msgs"] >= 3 * moves
    # hints: no agreement machinery at all — the digest reports the
    # counter as absent, not as zero
    assert "move_msgs" not in data["soda"]
    assert "move_msgs" not in data["chrysalis"]
    assert data["soda"]["redirects_followed"] >= 1
