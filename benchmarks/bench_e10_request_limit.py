"""E10 — §4.2.1: the outstanding-request limit.

    "The implementation described in the previous section would work
    easily if the limit were large enough to accommodate three
    requests for every link between the processes ... Too small a
    limit on outstanding requests would leave the possibility of
    deadlock when many links connect the same pair of processes.  In
    practice, a limit of half a dozen or so is unlikely to be
    exceeded ... but there is no way to reflect the limit to the user
    in a semantically-meaningful way.  Correctness would start to
    depend on global characteristics of the process-interconnection
    graph."

The workload concentrates ``LINKS`` links between one process pair,
parks a request on each, and opens only the last link's queue.  The
sweep finds the smallest pair-limit under which the served request can
still get through — below it, the system deadlocks with no error
anywhere, exactly the paper's complaint.
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import INT, Operation, Proc, make_cluster

ADD = Operation("add", (INT, INT), (INT,))
LINKS = 4


class Server(Proc):
    def __init__(self):
        self.served = 0

    def main(self, ctx):
        ends = ctx.initial_links
        yield from ctx.register(ADD)
        yield from ctx.open(ends[-1])
        inc = yield from ctx.wait_request()
        self.served += 1
        yield from ctx.reply(inc, (0,))


class Client(Proc):
    def one(self, ctx, end):
        yield from ctx.connect(end, ADD, (1, 1))

    def main(self, ctx):
        for end in ctx.initial_links:
            yield from ctx.fork(self.one(ctx, end), "c")
        yield from ctx.delay(1.0)


def attempt(limit: int):
    cluster = make_cluster("soda", pair_request_limit=limit)
    server, client = Server(), Client()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    for _ in range(LINKS):
        cluster.create_link(c, s)
    cluster.run_until_quiet(max_ms=3000.0)
    return {
        "served": server.served,
        "queued": cluster.metrics.get("soda.pair_limit_queued"),
    }


@pytest.mark.benchmark(group="e10")
def test_e10_pair_limit_deadlock_threshold(benchmark, save_table):
    data = {}

    def run():
        for limit in range(1, 2 * LINKS + 2):
            data[limit] = attempt(limit)
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"E10: {LINKS} links between one pair; open queue on the last",
        ["pair limit", "request served", "requests queued at kernel"],
    )
    threshold = None
    for limit in sorted(data):
        d = data[limit]
        t.add(limit, "yes" if d["served"] else "DEADLOCK", d["queued"])
        if threshold is None and d["served"]:
            threshold = limit
    t.add("threshold", threshold, "")
    save_table("e10_request_limit", t)

    assert threshold is not None
    # deadlock region exists (the paper's warning is real) ...
    assert data[1]["served"] == 0
    assert data[2]["served"] == 0
    # ... and monotone above the threshold
    for limit in sorted(data):
        if limit >= threshold:
            assert data[limit]["served"] == 1
    # the workload posts ~2 requests per link (put + status signal)
    # before the served one can flow: threshold tracks the topology,
    # which is §4.2.1's point about the interconnection graph
    assert 2 * (LINKS - 1) <= threshold <= 2 * LINKS
