"""E4 — §4.3 and its footnote 2: SODA vs Charlotte latency.

    "Experimental figures reveal that for small messages SODA was
    three times as fast as Charlotte.  The difference is less dramatic
    for larger messages: SODA's slow network exacted a heavy toll.
    The figures break even somewhere between 1K and 2K bytes."

The bench sweeps the payload (each way) across 0..4 KB on both stacks
and locates the crossover.
"""

import pytest

from repro.analysis.plot import ascii_plot
from repro.analysis.report import Table
from repro.workloads.rpc import run_rpc_workload

SWEEP = [0, 256, 512, 1024, 1536, 2048, 3072, 4096]


@pytest.mark.benchmark(group="e4")
def test_e4_soda_charlotte_crossover(benchmark, save_table):
    data = {}

    def run():
        for nbytes in SWEEP:
            data[("charlotte", nbytes)] = run_rpc_workload(
                "charlotte", nbytes, count=3
            ).mean_ms
            data[("soda", nbytes)] = run_rpc_workload(
                "soda", nbytes, count=3
            ).mean_ms
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        "E4: simple remote operation latency vs payload (ms; fn.2 sweep)",
        ["payload B each way", "charlotte", "soda", "winner"],
    )
    crossover = None
    prev_winner = None
    for nbytes in SWEEP:
        c, s = data[("charlotte", nbytes)], data[("soda", nbytes)]
        winner = "soda" if s < c else "charlotte"
        if prev_winner == "soda" and winner == "charlotte":
            crossover = nbytes
        prev_winner = winner
        t.add(nbytes, c, s, winner)
    t.add("crossover", "1K-2K", crossover, "")
    t.add("small-msg speedup", 3.0,
          data[("charlotte", 0)] / data[("soda", 0)], "")
    figure = ascii_plot(
        {
            "charlotte": [(n, data[("charlotte", n)]) for n in SWEEP],
            "soda": [(n, data[("soda", n)]) for n in SWEEP],
        },
        x_label="payload bytes each way",
        y_label="round trip ms",
    )
    save_table("e4_soda_crossover", t.render() + "\n\n" + figure)

    speedup = data[("charlotte", 0)] / data[("soda", 0)]
    assert 2.6 < speedup < 3.4, "paper: ~3x for small messages"
    assert crossover is not None and 1024 < crossover <= 2048, (
        "paper: break-even between 1K and 2K bytes"
    )
    # SODA's slow network: its per-byte slope is much steeper
    slope_c = (data[("charlotte", 4096)] - data[("charlotte", 0)]) / 4096
    slope_s = (data[("soda", 4096)] - data[("soda", 0)]) / 4096
    assert slope_s > 2.5 * slope_c
