"""A2 (ablation) — how big must the §4.2 link cache be?

    "If each process keeps a cache of links it has known about
    recently, and keeps the names of those links advertised, then A
    may remember it sent L to B, and can tell C where it went.  If A
    has forgotten, C can use the discover command..."

A dispatcher moves ``W`` *distinct* dormant links to a holder, filling
its cache with one entry per moved link (oldest evicted first).  The
observer then uses each link once with a stale hint pointing at the
dispatcher.  Links still in the cache repair with one redirect; evicted
ones cost a kernel-timeout probe plus a discover broadcast.  The sweep
shrinks the cache across W and counts which path each link took —
pricing the paper's word "recently".
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import INT, LINK, Operation, Proc, make_cluster

ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())

W = 4
SIZES = (64, W, 2, 0)


class Dispatcher(Proc):
    """Initially owns the moving end of all W work links; ships each to
    the holder, then lingers to serve cache redirects."""

    def main(self, ctx):
        to_holder = ctx.initial_links[0]
        work = list(ctx.initial_links[1:])
        yield from ctx.register(GIVE)
        for end in work:
            yield from ctx.connect(to_holder, GIVE, (end,))
        yield from ctx.delay(60000.0)


class Holder(Proc):
    """Adopts the W ends and serves one request on each."""

    def main(self, ctx):
        (from_dispatcher,) = ctx.initial_links
        yield from ctx.register(GIVE, ADD)
        yield from ctx.open(from_dispatcher)
        adopted = []
        for _ in range(W):
            inc = yield from ctx.wait_request([from_dispatcher])
            adopted.append(inc.args[0])
            yield from ctx.reply(inc, ())
        for end in adopted:
            yield from ctx.open(end)
        for _ in range(W):
            inc = yield from ctx.wait_request(adopted)
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))


class Observer(Proc):
    """Uses each (moved) link once, after the churn settles."""

    def __init__(self):
        self.latencies = []

    def main(self, ctx):
        links = ctx.initial_links
        yield from ctx.delay(1500.0)
        for i, link in enumerate(links):
            t0 = yield from ctx.now()
            r = yield from ctx.connect(link, ADD, (i, 100))
            assert r == (i + 100,)
            self.latencies.append((yield from ctx.now()) - t0)


def run_case(cache_size: int):
    cluster = make_cluster("soda", seed=7, cache_size=cache_size)
    obs_prog = Observer()
    d = cluster.spawn(Dispatcher(), "dispatcher")
    h = cluster.spawn(Holder(), "holder")
    obs = cluster.spawn(obs_prog, "observer")
    cluster.create_link(d, h)
    for _ in range(W):
        cluster.create_link(d, obs)  # dispatcher side will move
    cluster.run_until_quiet(max_ms=1e7)
    m = cluster.metrics
    assert len(obs_prog.latencies) == W, cluster.unfinished()
    return {
        "mean_repair_ms": sum(obs_prog.latencies) / W,
        "max_repair_ms": max(obs_prog.latencies),
        "redirects": m.get("soda.redirects_served"),
        "evictions": m.get("soda.cache_evictions"),
        "discover_repairs": m.get("soda.hints_repaired_by_discover"),
        "discovers": m.get("soda.discover"),
    }


@pytest.mark.benchmark(group="a2")
def test_a2_cache_size_sweep(benchmark, save_table):
    data = {}

    def run():
        for size in SIZES:
            data[size] = run_case(size)
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"A2: SODA link-cache size vs repair path ({W} moved links, "
        "each used once)",
        ["cache size", "mean repair ms", "max repair ms",
         "redirects", "evictions", "discover repairs"],
    )
    for size in SIZES:
        d = data[size]
        t.add(size, d["mean_repair_ms"], d["max_repair_ms"],
              d["redirects"], d["evictions"], d["discover_repairs"])
    save_table("a2_cache_size", t)

    # full cache: all repairs are redirects
    assert data[64]["redirects"] >= W
    assert data[64]["discover_repairs"] == 0
    # no cache: all repairs go through discover
    assert data[0]["discover_repairs"] == W
    # partial cache: exactly the evicted links needed discover
    assert data[2]["discover_repairs"] == W - 2
    # and the cost ordering follows
    assert (
        data[64]["mean_repair_ms"]
        < data[2]["mean_repair_ms"]
        < data[0]["mean_repair_ms"]
    )
