"""E2 — the code-size comparison of §3.3 vs §5.3 (and §4.3's savings
prediction).

Paper figures (C + assembler, 1986):

* Charlotte runtime: 4000 C + 200 asm, ~21 KB object, ~45 % in
  kernel-facing communication routines, "perhaps 5K" (≈24 % of object)
  for unwanted messages and multiple enclosures;
* Chrysalis runtime: 3600 C + 200 asm, 15–16 KB — "appreciably
  smaller" on both measures;
* SODA (predicted): "savings on the order of 4K bytes" from the lack
  of special cases.

Our analog (DESIGN.md §4): relative logical-LoC and branch counts of
the three kernel-specific runtime halves of this repository, measured
by AST analysis of the real source.  What must reproduce is the
*shape*: Charlotte's package biggest and branchiest, a substantial
slice of it pure special-casing; Chrysalis smallest; SODA's
hint-machinery cost concentrated in the (optional) freeze fallback.
"""

import pytest

from repro.analysis.complexity import (
    charlotte_special_case_stats,
    comparison,
    runtime_package_stats,
)
from repro.analysis.report import Table


@pytest.mark.benchmark(group="e2")
def test_e2_runtime_package_sizes(benchmark, save_table):
    data = {}

    def run():
        data["cmp"] = comparison()
        data["special"] = charlotte_special_case_stats()
        data["soda_modules"] = runtime_package_stats("soda").modules
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)
    cmp_ = data["cmp"]
    special = data["special"]

    t = Table(
        "E2: LYNX runtime package size (kernel-specific half)",
        ["kernel", "paper (C loc)", "logical loc", "branches",
         "special-case loc", "special-case share"],
    )
    t.add("charlotte", 4200, cmp_["charlotte"]["kernel_specific_loc"],
          cmp_["charlotte"]["kernel_specific_branches"],
          special.logical_loc,
          cmp_["charlotte"]["special_case_share_of_specific"])
    soda_rt, soda_freeze = data["soda_modules"]
    t.add("soda (runtime)", None, soda_rt.logical_loc, soda_rt.branches,
          0, 0.0)
    t.add("soda (+freeze fallback)", None,
          cmp_["soda"]["kernel_specific_loc"],
          cmp_["soda"]["kernel_specific_branches"], 0, 0.0)
    t.add("chrysalis", 3800, cmp_["chrysalis"]["kernel_specific_loc"],
          cmp_["chrysalis"]["kernel_specific_branches"], 0, 0.0)
    t.add("ideal (reference)", None, cmp_["ideal"]["kernel_specific_loc"],
          cmp_["ideal"]["kernel_specific_branches"], 0, 0.0)
    save_table("e2_code_size", t)

    charlotte = cmp_["charlotte"]
    chrysalis = cmp_["chrysalis"]
    # §5.3: Chrysalis package "appreciably smaller" than Charlotte's
    assert chrysalis["kernel_specific_loc"] < charlotte["kernel_specific_loc"]
    assert (
        chrysalis["kernel_specific_branches"]
        < charlotte["kernel_specific_branches"]
    )
    # §3.3: a large slice of the Charlotte package is pure special-case
    # handling (paper: ~5K of 21K object ≈ 24 %)
    assert 0.15 <= charlotte["special_case_share_of_specific"] <= 0.45
    # §4.3: without the last-resort freeze module, SODA's runtime is
    # also smaller than Charlotte's ("lack of special cases")
    assert soda_rt.logical_loc < charlotte["kernel_specific_loc"] * 1.05
    # Charlotte is the branchiest per line — the "awkward and slow"
    # adaptation cost of §6 lesson three
    density = {
        k: cmp_[k]["kernel_specific_branches"] / cmp_[k]["kernel_specific_loc"]
        for k in cmp_
    }
    assert density["charlotte"] >= density["chrysalis"]
    # the ideal backend bounds the glue from below: a kernel designed
    # for the runtime needs less glue than any real 1986 kernel did
    ideal = cmp_["ideal"]
    for k in ("charlotte", "soda", "chrysalis"):
        assert ideal["kernel_specific_loc"] < cmp_[k]["kernel_specific_loc"]
        assert (
            ideal["kernel_specific_branches"]
            < cmp_[k]["kernel_specific_branches"]
        )
