"""Shared helpers for the benchmark harness.

Every bench module regenerates one of the paper's tables/figures (see
DESIGN.md §3).  Benches print a paper-vs-measured table and save it
under ``benchmarks/out/`` — both the human-readable ``.txt`` and a
machine-readable ``.json`` (schema "repro.table") so the perf
trajectory can be diffed across PRs (docs/OBSERVABILITY.md).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import json
import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")
os.makedirs(OUT_DIR, exist_ok=True)


@pytest.fixture
def save_table():
    """Print a rendered table and persist it (txt + json) for
    EXPERIMENTS.md."""

    def _save(name: str, table) -> None:
        text = table.render() if hasattr(table, "render") else str(table)
        print()
        print(text)
        if not text.endswith("\n"):
            text += "\n"
        with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text)
        doc = {"schema": "repro.table", "schema_version": 1, "name": name}
        if hasattr(table, "to_dict"):
            doc.update(table.to_dict())
        else:
            doc["text"] = text
        with open(os.path.join(OUT_DIR, f"{name}.json"), "w") as fh:
            json.dump(doc, fh, indent=2, allow_nan=False)
            fh.write("\n")

    return _save
