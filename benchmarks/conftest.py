"""Shared helpers for the benchmark harness.

Every bench module regenerates one of the paper's tables/figures (see
DESIGN.md §3).  Benches print a paper-vs-measured table and save it
under ``benchmarks/out/`` so EXPERIMENTS.md can reference exact runs.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


@pytest.fixture
def save_table():
    """Print a rendered table and persist it for EXPERIMENTS.md."""

    def _save(name: str, table) -> None:
        text = table.render() if hasattr(table, "render") else str(table)
        print()
        print(text)
        os.makedirs(OUT_DIR, exist_ok=True)
        with open(os.path.join(OUT_DIR, f"{name}.txt"), "w") as fh:
            fh.write(text + "\n")

    return _save
