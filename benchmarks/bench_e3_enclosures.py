"""E3 — figure 2: the link-enclosure protocol.

    "To move more than one link end with a single LYNX message, a
    request or reply must be broken into several Charlotte messages.
    The first packet contains nonlink data, together with the first
    enclosure.  Additional enclosures are passed in empty enc
    messages.  For requests, the receiver must return an explicit
    goahead message after the first packet ... No goahead is needed
    for requests with zero or one enclosures." (§3.2.2)

So the kernel-message count for one remote operation moving n ends is:

    Charlotte:  2           for n <= 1
                n + 2       for n >= 2  (request packet + goahead +
                                         (n-1) enc packets + reply)
    SODA / Chrysalis: 2 always — names travel inside the message.

The bench executes the operation for n = 0..5 on all three kernels and
counts actual wire messages.
"""

import pytest

from repro.core.api import (
    INT,
    KERNEL_KINDS,
    LINK,
    Operation,
    Proc,
    make_cluster,
)
from repro.analysis.report import Table


def give_op(n: int) -> Operation:
    return Operation(f"give{n}", tuple([LINK] * n), ())


class Giver(Proc):
    def __init__(self, n: int) -> None:
        self.n = n

    def main(self, ctx):
        (to_b,) = ctx.initial_links
        ends = []
        for _ in range(self.n):
            mine, theirs = yield from ctx.new_link()
            ends.append(theirs)
        yield from ctx.connect(to_b, give_op(self.n), tuple(ends))


class Taker(Proc):
    def __init__(self, n: int) -> None:
        self.n = n

    def main(self, ctx):
        (from_a,) = ctx.initial_links
        yield from ctx.register(give_op(self.n))
        yield from ctx.open(from_a)
        inc = yield from ctx.wait_request()
        assert len(inc.args) == self.n
        yield from ctx.reply(inc, ())


def messages_for(kind: str, n: int) -> float:
    cluster = make_cluster(kind, seed=3)
    a = cluster.spawn(Giver(n), "giver")
    b = cluster.spawn(Taker(n), "taker")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e7)
    assert cluster.all_finished, (kind, n, cluster.unfinished())
    return cluster.metrics.total("wire.messages.")


def expected_charlotte(n: int) -> int:
    if n <= 1:
        return 2
    return n + 2


@pytest.mark.benchmark(group="e3")
def test_e3_enclosure_protocol_message_counts(benchmark, save_table):
    data = {}

    def run():
        for kind in KERNEL_KINDS:
            for n in range(6):
                data[(kind, n)] = messages_for(kind, n)
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        "E3: kernel messages per remote operation moving n link ends (fig. 2)",
        ["n enclosures", "charlotte (fig.2 model)", "charlotte measured",
         "soda measured", "chrysalis measured"],
    )
    for n in range(6):
        t.add(n, expected_charlotte(n), data[("charlotte", n)],
              data[("soda", n)], data[("chrysalis", n)])
    save_table("e3_enclosures", t)

    for n in range(6):
        assert data[("charlotte", n)] == expected_charlotte(n)
        assert data[("soda", n)] == 2
        assert data[("chrysalis", n)] == 2
