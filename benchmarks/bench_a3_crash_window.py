"""A3 (ablation) — the §3.2.2 loss window, measured as a curve.

    "a) Process A sends a request to process B, enclosing the end of a
    link.  b) B receives the request unintentionally ...  c) The
    sending coroutine in A feels an exception, aborting the request.
    d) B crashes before it can send the enclosure back to A in a
    forbid message.  From the point of view of language semantics, the
    message to B was never sent, yet the enclosure has been lost."

The deviation only bites inside a *window*: after the kernel has
matched the request into B (too late to cancel) and before B's forbid
returns the enclosure.  The sweep slides B's crash time across that
window on all three kernels and reports the enclosure's fate at each
instant — Charlotte loses it exactly inside the window; SODA and
Chrysalis never lose it at any crash time (§6 item 3).
"""

import pytest

from repro.analysis.report import Table
from repro.core.api import (
    BYTES,
    KERNEL_KINDS,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    ThreadAborted,
    make_cluster,
)
from repro.core.registry import EndDisposition
from repro.sim.failure import CrashMode

ECHO = Operation("echo", (BYTES,), (BYTES,))
GIVE = Operation("give", (LINK,), ())

#: crash instants (ms).  B's Receive is pre-posted (that is what makes
#: it receive the request "unintentionally"), so the kernel matches
#: A's send almost immediately: the ambiguity window opens at ~1 ms
#: and closes when B's forbid returns the enclosure (~70 ms here).
CRASH_TIMES = (5.0, 45.0, 60.0, 75.0, 200.0)
ABORT_AT = 40.0


class _Aborter(Proc):
    def __init__(self):
        self.given_ref = None
        self.aborted = False

    def requester(self, ctx, to_b, enc):
        try:
            yield from ctx.connect(to_b, GIVE, (enc,))
        except (ThreadAborted, LinkDestroyed):
            self.aborted = True

    def main(self, ctx):
        (to_b,) = ctx.initial_links
        mine, theirs = yield from ctx.new_link()
        self.given_ref = theirs.end_ref
        t = yield from ctx.fork(self.requester(ctx, to_b, theirs), "req")
        yield from ctx.delay(ABORT_AT)
        yield from ctx.abort(t)
        yield from ctx.delay(1e9)  # outlive the horizon (see E-divergence)


class _ReplyWaiter(Proc):
    def main(self, ctx):
        (to_a,) = ctx.initial_links
        try:
            yield from ctx.connect(to_a, ECHO, (b"never answered",))
        except LinkDestroyed:
            pass
        yield from ctx.delay(1e9)


def fate(kind: str, crash_at: float) -> str:
    cluster = make_cluster(kind, seed=13)
    a_prog = _Aborter()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(_ReplyWaiter(), "B")
    cluster.create_link(a, b)
    cluster.engine.schedule(crash_at, cluster.crash_process, "B",
                            CrashMode.PROCESSOR)
    cluster.run_until_quiet(max_ms=5e4)
    ref = a_prog.given_ref
    disp = cluster.registry.disposition_of(ref)
    if disp is EndDisposition.OWNED and cluster.registry.owner_of(ref) == "A":
        return "safe"
    if disp is EndDisposition.LOST or cluster.registry.is_destroyed(ref.link):
        return "LOST"
    return disp.value


@pytest.mark.benchmark(group="a3")
def test_a3_crash_window_sweep(benchmark, save_table):
    data = {}

    def run():
        for kind in KERNEL_KINDS:
            for crash_at in CRASH_TIMES:
                # Chrysalis is ~25x faster: scale its window
                t = crash_at if kind != "chrysalis" else crash_at / 25.0
                data[(kind, crash_at)] = fate(kind, t)
        return data

    benchmark.pedantic(run, rounds=1, iterations=1)

    t = Table(
        f"A3: enclosure fate vs crash instant (abort at {ABORT_AT} ms)",
        ["crash at (ms)", "charlotte", "soda", "chrysalis"],
    )
    for crash_at in CRASH_TIMES:
        t.add(crash_at, data[("charlotte", crash_at)],
              data[("soda", crash_at)], data[("chrysalis", crash_at)])
    save_table("a3_crash_window", t)

    # SODA and Chrysalis never lose the enclosure, at any instant
    for kind in ("soda", "chrysalis"):
        for crash_at in CRASH_TIMES:
            assert data[(kind, crash_at)] == "safe", (kind, crash_at)
    # Charlotte: lost everywhere inside the window, safe once the
    # forbid has returned the enclosure
    for crash_at in (5.0, 45.0, 60.0):
        assert data[("charlotte", crash_at)] == "LOST", (crash_at, data)
    for crash_at in (75.0, 200.0):
        assert data[("charlotte", crash_at)] == "safe", (crash_at, data)
