"""The real-transport cluster: ideal control plane, socket data plane."""

from __future__ import annotations

import weakref

from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.links import EndRef
from repro.net.kernel import NetKernel
from repro.net.runtime import NetRuntime
from repro.sim.failure import CrashMode


class NetCluster(ClusterBase):
    """A cluster whose every message crosses a real OS socket.

    Routing, mailboxes, crash unwinding and costs are the ideal
    backend's; the difference is `NetKernel._transit`, which will not
    let a message reach its destination without the bytes having gone
    through the process-wide switch (`repro.net.hub`) and back.  The
    switch round-trip is synchronous in simulated time, so same-seed
    runs stay bit-identical — what real transport does *not* keep
    deterministic is wall-clock timing, which only the distributed
    `serve`/`load` path (and the E17 bench) measures.

    Real transport has exactly one event order; simulator sharding is
    meaningless here, so only ``sim_backend="global"`` is accepted
    (the CLI rejects the combination with exit 2).
    """

    KIND = "real-asyncio"

    def __init__(self, seed: int = 0, costmodel=None, **kwargs) -> None:
        backend = kwargs.get("sim_backend", "global")
        if backend != "global":
            raise ValueError(
                f"the {self.KIND!r} backend runs on real sockets; "
                f"--sim-backend {backend!r} does not apply (only 'global')"
            )
        super().__init__(seed=seed, costmodel=costmodel, **kwargs)

    def _setup_hardware(self) -> None:
        from repro.net.hub import hub_connect

        self.kernel = NetKernel(self.registry, self.metrics)
        self.kernel.attach(hub_connect())
        # sockets are not garbage: close on drop even without close()
        self._finalizer = weakref.finalize(self, self.kernel.detach)

    def close(self) -> None:
        self._finalizer()

    def make_runtime(self, handle: ProcessHandle) -> NetRuntime:
        return NetRuntime(handle, self)

    def create_link(self, a: ProcessHandle, b: ProcessHandle) -> None:
        link = self.registry.alloc_link(a.name, b.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        a.runtime.preload_end(ref_a)
        b.runtime.preload_end(ref_b)
        self.kernel.route[ref_a] = a.runtime
        self.kernel.route[ref_b] = b.runtime

    def on_crash(self, handle: ProcessHandle, mode: CrashMode) -> None:
        # a processor failure runs no process-side cleanup; the kernel
        # (which survives) unwinds the dead process's links itself
        if mode is CrashMode.PROCESSOR:
            self.kernel.process_crashed(
                handle.runtime, f"crash: processor of {handle.name} failed"
            )
