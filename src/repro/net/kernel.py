"""The real-transport kernel: ideal semantics, socket data plane.

Tables and semantics are the ideal kernel's — owner routes, per-end
mailboxes, receipt-at-consumption, shared abort/destroy bookkeeping —
but no message reaches a mailbox by reference.  `post` and `deliver`
serialise the `WireMessage` into a frame, push the bytes through the
process-wide socket switch (`repro.net.hub`), decode the bytes that
came back, and apply the *decoded* message.  Whatever the destination
runtime observes has genuinely survived the OS socket layer — payload,
enclosure refs, error code, causal span and all (the frame codec's
round-trip property is what the conformance suite then exercises
end to end).

The round-trip is synchronous in simulated time, so determinism is
untouched: event order never depends on socket timing.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Set, TYPE_CHECKING

from repro.core.links import EndRef
from repro.core.wire import WireMessage
from repro.net.frames import decode_frame, encode_frame
from repro.net.hub import HubConnection, hub_connect

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.runtime import NetRuntime


class NetKernel:
    """Ideal-shaped kernel whose delivery path is a real socket."""

    def __init__(self, registry, metrics) -> None:
        self.registry = registry
        self.metrics = metrics
        #: owning runtime of each registered end
        self.route: Dict[EndRef, "NetRuntime"] = {}
        #: unconsumed messages, keyed by the *destination* end
        self.mailbox: Dict[EndRef, Deque[WireMessage]] = {}
        #: destroyed links and why
        self.destroyed: Dict[int, str] = {}
        #: consumed-then-aborted request seqs, keyed by requester end
        self.aborted: Dict[EndRef, Set[int]] = {}
        self._conn: Optional[HubConnection] = None

    # -- the data plane ------------------------------------------------
    def attach(self, conn: HubConnection) -> None:
        self._conn = conn

    def detach(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close()

    def _transit(self, msg: WireMessage) -> WireMessage:
        """Send ``msg`` over the wire and return what the wire gave
        back.  Callers must use the returned message, not the
        original — that substitution is the whole point."""
        body = encode_frame(msg)
        echoed = self._conn.roundtrip(body)
        self.metrics.count("net.frames")
        self.metrics.count("net.frame_bytes", len(body))
        return decode_frame(echoed)

    # -- ideal-kernel surface ------------------------------------------
    def owner(self, ref: EndRef):
        return self.route.get(ref)

    def box(self, ref: EndRef) -> Deque[WireMessage]:
        return self.mailbox.setdefault(ref, deque())

    def is_destroyed(self, ref: EndRef) -> bool:
        return ref.link in self.destroyed

    def post(self, dest: EndRef, msg: WireMessage) -> None:
        """Queue the wire's copy of ``msg`` for ``dest``."""
        wired = self._transit(msg)
        self.box(dest).append(wired)
        self.metrics.count(f"wire.messages.{wired.kind.value}")
        self.metrics.count("wire.bytes", wired.wire_size)
        self.metrics.count("net.handoffs")
        owner = self.route.get(dest)
        if owner is not None:
            owner._wake()

    def deliver(self, dest: EndRef, msg: WireMessage) -> None:
        """Hand the wire's copy of a reply straight to the requester
        (replies are always wanted, §3.2.1 — no mailbox stop)."""
        wired = self._transit(msg)
        self.metrics.count(f"wire.messages.{wired.kind.value}")
        self.metrics.count("wire.bytes", wired.wire_size)
        self.metrics.count("net.handoffs")
        owner = self.route.get(dest)
        if owner is not None:
            owner.deliver_reply(dest, wired)

    def withdraw(self, dest: EndRef, seq: int) -> bool:
        """Remove an unconsumed request before its receipt, if possible."""
        box = self.mailbox.get(dest)
        if box:
            for msg in list(box):
                if msg.seq == seq:
                    box.remove(msg)
                    self.metrics.count("net.withdrawals")
                    return True
        return False

    def destroy_link(self, ref: EndRef, reason: str) -> None:
        """Mark the link of ``ref`` dead and unwind both mailboxes:
        unconsumed messages were never received, so their senders get
        bounces (enclosures come home), then the surviving peer is told
        the link is gone."""
        if ref.link in self.destroyed:
            return
        self.destroyed[ref.link] = reason
        peer = ref.peer
        # messages TO ``ref`` were sent by the peer and never received
        for msg in self.mailbox.pop(ref, ()):
            sender = self.route.get(peer)
            if sender is not None:
                sender.notify_bounce(peer, msg.seq)
        # messages FROM ``ref`` sitting unconsumed at the peer
        owner = self.route.get(ref)
        for msg in self.mailbox.pop(peer, ()):
            if owner is not None:
                owner.notify_bounce(ref, msg.seq)
        self.aborted.pop(ref, None)
        self.aborted.pop(peer, None)
        peer_rt = self.route.get(peer)
        if peer_rt is not None:
            peer_rt.notify_destroyed(peer, reason, crash="crash" in reason)
        self.route.pop(ref, None)

    def process_crashed(self, runtime, reason: str) -> None:
        """A processor failed: every link routed to ``runtime`` dies.
        The dead side ran no cleanup, so the kernel does it: bounces
        for the peers' unreceived messages, loss records for the dead
        side's in-transit enclosures, crash notices all around."""
        dead = [ref for ref, rt in self.route.items() if rt is runtime]
        # unroute first so no upcall lands in the dead process
        for ref in dead:
            self.route.pop(ref, None)
        for ref in dead:
            if ref.link in self.destroyed:
                continue
            # enclosures the dead process had in transit are gone
            for msg in self.mailbox.get(ref.peer, ()):
                for enc in msg.enclosures:
                    self.registry.record_lost(enc)
            self.destroy_link(ref, reason)
            self.registry.record_destroyed(ref.link, reason)
