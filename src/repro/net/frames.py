"""Length-prefixed wire frames carrying `WireMessage` bytes.

The simulated kernels hand `WireMessage` objects around by reference;
the real transport has to put every field on an actual wire.  A frame
is the full message — kind, sequence numbers, operation name,
signature hash, payload, enclosure refs and their kernel metadata,
the error code, the send timestamp and the piggybacked causal
`SpanContext` — in a fixed big-endian layout, so a message decoded on
the far side is *content-identical* to the one that was sent (the
round-trip property `tests/net/test_frames.py` pins for every field).

Framing on a stream is a 4-byte big-endian length prefix followed by
the frame body (`pack_frame` / `FrameReader`); the body itself starts
with a one-byte version so the format can evolve.
"""

from __future__ import annotations

import json
import struct
from typing import List, Optional, Tuple

from repro.core.links import EndRef
from repro.core.wire import ExceptionCode, MsgKind, WireMessage
from repro.obs.causal import SpanContext

#: bump when the body layout changes; a mismatch raises `FrameError`
FRAME_VERSION = 1

#: the stream framing: 4-byte big-endian body length
LENGTH_PREFIX = struct.Struct(">I")

#: frames above this are a protocol violation, not a big message —
#: refuse before allocating (16 MiB)
MAX_FRAME_BYTES = 16 * 1024 * 1024

_HEAD = struct.Struct(">BBqqQ")          # version, kind, seq, reply_to, sighash
_F64 = struct.Struct(">d")               # sent_at (exact float round-trip)
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_ENC = struct.Struct(">qB")              # enclosure: link, side
_SPAN = struct.Struct(">QQQB")           # trace_id, span_id, parent_id, flags

_KINDS: Tuple[MsgKind, ...] = tuple(MsgKind)
_KIND_CODE = {kind: i for i, kind in enumerate(_KINDS)}
_ERRORS: Tuple[ExceptionCode, ...] = tuple(ExceptionCode)
_ERROR_CODE = {err: i + 1 for i, err in enumerate(_ERRORS)}  # 0 = no error

_SPAN_PRESENT = 0x01
_SPAN_HAS_PARENT = 0x02
_SPAN_SAMPLED = 0x04


class FrameError(ValueError):
    """A frame that cannot be encoded or decoded faithfully."""


def encode_frame(msg: WireMessage) -> bytes:
    """Serialise one `WireMessage` into a frame body (no length prefix)."""
    parts: List[bytes] = [
        _HEAD.pack(FRAME_VERSION, _KIND_CODE[msg.kind], msg.seq,
                   msg.reply_to, msg.sighash)
    ]
    opname = msg.opname.encode("utf-8")
    if len(opname) > 0xFFFF:
        raise FrameError(f"opname too long for the wire: {len(opname)} bytes")
    parts.append(_U16.pack(len(opname)))
    parts.append(opname)
    payload = bytes(msg.payload)
    parts.append(_U32.pack(len(payload)))
    parts.append(payload)
    parts.append(_U32.pack(msg.enc_total))
    parts.append(_U16.pack(len(msg.enclosures)))
    for ref in msg.enclosures:
        parts.append(_ENC.pack(ref.link, ref.side))
    # enclosure metadata is kernel-defined dicts; JSON with sorted keys
    # keeps the byte stream deterministic for identical content
    meta = json.dumps(msg.enclosure_meta, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")
    parts.append(_U32.pack(len(meta)))
    parts.append(meta)
    parts.append(bytes([_ERROR_CODE.get(msg.error, 0)]))
    parts.append(_F64.pack(msg.sent_at))
    span = msg.span
    if span is None:
        parts.append(b"\x00")
    else:
        flags = _SPAN_PRESENT
        if span.parent_id is not None:
            flags |= _SPAN_HAS_PARENT
        if span.sampled:
            flags |= _SPAN_SAMPLED
        parts.append(bytes([flags]))
        parts.append(_SPAN.pack(span.trace_id & 0xFFFFFFFFFFFFFFFF,
                                span.span_id & 0xFFFFFFFFFFFFFFFF,
                                (span.parent_id or 0) & 0xFFFFFFFFFFFFFFFF,
                                0))
    return b"".join(parts)


def decode_frame(body: bytes) -> WireMessage:
    """Rebuild the `WireMessage` a frame body carries."""
    try:
        version, kind_code, seq, reply_to, sighash = _HEAD.unpack_from(body, 0)
    except struct.error as exc:
        raise FrameError(f"truncated frame head: {exc}") from None
    if version != FRAME_VERSION:
        raise FrameError(f"frame version {version} != {FRAME_VERSION}")
    try:
        off = _HEAD.size
        (n,) = _U16.unpack_from(body, off)
        off += _U16.size
        opname = body[off:off + n].decode("utf-8")
        off += n
        (n,) = _U32.unpack_from(body, off)
        off += _U32.size
        payload = body[off:off + n]
        if len(payload) != n:
            raise FrameError("truncated payload")
        off += n
        (enc_total,) = _U32.unpack_from(body, off)
        off += _U32.size
        (n_enc,) = _U16.unpack_from(body, off)
        off += _U16.size
        enclosures: List[EndRef] = []
        for _ in range(n_enc):
            link, side = _ENC.unpack_from(body, off)
            off += _ENC.size
            enclosures.append(EndRef(link, side))
        (n,) = _U32.unpack_from(body, off)
        off += _U32.size
        enclosure_meta = json.loads(body[off:off + n].decode("utf-8"))
        off += n
        err_code = body[off]
        off += 1
        (sent_at,) = _F64.unpack_from(body, off)
        off += _F64.size
        flags = body[off]
        off += 1
        span: Optional[SpanContext] = None
        if flags & _SPAN_PRESENT:
            trace_id, span_id, parent_id, _pad = _SPAN.unpack_from(body, off)
            off += _SPAN.size
            span = SpanContext(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_id if flags & _SPAN_HAS_PARENT else None,
                sampled=bool(flags & _SPAN_SAMPLED),
            )
    except (struct.error, IndexError, UnicodeDecodeError,
            json.JSONDecodeError) as exc:
        raise FrameError(f"malformed frame: {exc}") from None
    if off != len(body):
        raise FrameError(
            f"frame carries {len(body) - off} trailing byte(s)"
        )
    return WireMessage(
        kind=_KINDS[kind_code],
        seq=seq,
        reply_to=reply_to,
        opname=opname,
        sighash=sighash,
        payload=payload,
        enclosures=enclosures,
        enclosure_meta=enclosure_meta,
        enc_total=enc_total,
        error=_ERRORS[err_code - 1] if err_code else None,
        sent_at=sent_at,
        span=span,
    )


def pack_frame(body: bytes) -> bytes:
    """Prefix a frame body with its 4-byte length for a stream."""
    if len(body) > MAX_FRAME_BYTES:
        raise FrameError(f"frame too large: {len(body)} bytes")
    return LENGTH_PREFIX.pack(len(body)) + body


class FrameReader:
    """Incremental de-framer for a byte stream.

    Feed it whatever the socket produced; it yields complete frame
    bodies in order.  Used by both the blocking hub connection and the
    asyncio server/load paths, so framing lives in exactly one place.
    """

    __slots__ = ("_buf",)

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> List[bytes]:
        self._buf.extend(data)
        out: List[bytes] = []
        while True:
            if len(self._buf) < LENGTH_PREFIX.size:
                return out
            (n,) = LENGTH_PREFIX.unpack_from(self._buf, 0)
            if n > MAX_FRAME_BYTES:
                raise FrameError(f"frame length {n} exceeds the cap")
            end = LENGTH_PREFIX.size + n
            if len(self._buf) < end:
                return out
            out.append(bytes(self._buf[LENGTH_PREFIX.size:end]))
            del self._buf[:end]

    @property
    def pending_bytes(self) -> int:
        return len(self._buf)
