"""Process supervision for real node processes.

`NodeSupervisor` spawns each node as ``python -m repro net serve``
(its own interpreter, its own asyncio loop, its own socket), confirms
liveness through the ``REPRO-NET READY <endpoint>`` stdout handshake,
and detects crashes two ways — the supervisor side sees the exit code,
the client side sees ``ECONNREFUSED``/EOF — both of which feed the
load generator's failover path.  ``crash()`` is deliberate failure
injection (SIGKILL: the node runs no cleanup, like the simulator's
PROCESSOR crash mode); ``stop_all()`` is orderly teardown and is safe
to call twice.
"""

from __future__ import annotations

import os
import selectors
import subprocess
import sys
import tempfile
from time import monotonic  # repro: allow[DET001] — wall-clock spawn deadlines for real OS processes
from typing import Dict, List, Optional

from repro.net.server import READY_PREFIX

#: wall seconds a freshly spawned node gets to print its READY line
SPAWN_DEADLINE_S = 20.0


class SpawnFailed(RuntimeError):
    """A node process died or stalled before announcing readiness."""


class NodeProcess:
    """One supervised node: the Popen handle plus its endpoint."""

    def __init__(self, name: str, proc: subprocess.Popen,
                 endpoint: str) -> None:
        self.name = name
        self.proc = proc
        #: UDS path, or ``host:port`` when serving TCP
        self.endpoint = endpoint

    @property
    def alive(self) -> bool:
        return self.proc.poll() is None

    @property
    def returncode(self) -> Optional[int]:
        return self.proc.poll()


def _await_ready(proc: subprocess.Popen, deadline_s: float) -> str:
    """Block until the child prints its READY line; return the endpoint."""
    fd = proc.stdout.fileno()
    os.set_blocking(fd, False)
    sel = selectors.DefaultSelector()
    sel.register(fd, selectors.EVENT_READ)
    buf = b""
    deadline = monotonic() + deadline_s
    try:
        while True:
            if b"\n" in buf:
                line, _, rest = buf.partition(b"\n")
                text = line.decode("utf-8", "replace").strip()
                if text.startswith(READY_PREFIX):
                    return text[len(READY_PREFIX):].strip()
                buf = rest
                continue
            remaining = deadline - monotonic()
            if remaining <= 0:
                raise SpawnFailed(
                    f"node did not become ready within {deadline_s:.0f}s"
                )
            if proc.poll() is not None:
                raise SpawnFailed(
                    f"node exited with {proc.returncode} before READY"
                )
            if sel.select(timeout=min(remaining, 0.2)):
                chunk = os.read(fd, 4096)
                if not chunk:
                    raise SpawnFailed("node closed stdout before READY")
                buf += chunk
    finally:
        sel.close()


class NodeSupervisor:
    """Spawn, monitor, crash, and tear down real node processes."""

    def __init__(self) -> None:
        self.nodes: Dict[str, NodeProcess] = {}
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None

    # -- lifecycle -----------------------------------------------------
    def _socket_dir(self) -> str:
        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-nodes-")
        return self._tmpdir.name

    def spawn(self, name: str, tcp: bool = False,
              drop_first: int = 0) -> NodeProcess:
        """Start one node and wait for its READY handshake."""
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        import repro

        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)
        ))
        env = dict(os.environ)
        env["PYTHONPATH"] = src_dir + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        cmd: List[str] = [sys.executable, "-m", "repro", "net", "serve",
                          "--name", name]
        if tcp:
            cmd += ["--tcp", "0"]
        else:
            cmd += ["--socket", os.path.join(self._socket_dir(),
                                             f"{name}.sock")]
        if drop_first:
            cmd += ["--drop-first", str(drop_first)]
        proc = subprocess.Popen(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env
        )
        try:
            endpoint = _await_ready(proc, SPAWN_DEADLINE_S)
        except SpawnFailed:
            proc.kill()
            proc.wait()
            raise
        node = NodeProcess(name, proc, endpoint)
        self.nodes[name] = node
        return node

    def alive(self, name: str) -> bool:
        return name in self.nodes and self.nodes[name].alive

    def crash(self, name: str) -> None:
        """Hard-kill a node (no cleanup runs — the PROCESSOR mode of
        the real world).  Clients learn of the death through refused
        connections; the supervisor through the exit code."""
        node = self.nodes[name]
        node.proc.kill()
        node.proc.wait()

    def stop_all(self) -> None:
        """Orderly teardown of every node still running."""
        for node in self.nodes.values():
            if node.alive:
                node.proc.terminate()
        for node in self.nodes.values():
            try:
                node.proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                node.proc.kill()
                node.proc.wait()
            if node.proc.stdout is not None:
                node.proc.stdout.close()
        self.nodes.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __enter__(self) -> "NodeSupervisor":
        return self

    def __exit__(self, *exc) -> None:
        self.stop_all()
