"""The load generator: thousands of client coroutines over real sockets.

One asyncio loop runs every client concurrently; each client owns its
connection, issues pipelined-one-at-a-time requests, and runs the
paper's *runtime-placement* recovery discipline — the same
`repro.core.recovery.RecoveryPolicy` knobs the simulator uses, but
driven by wall-clock timers (``asyncio.wait_for``) instead of engine
events:

* attempt ``k`` waits ``policy.backoff_ms(k)`` for the reply, so the
  policy's exponential backoff *is* the widening wait window;
* after ``max_retries`` unanswered retransmissions on an address the
  client fails over to the next address (sticky, like the chaos
  workload) — or, with no addresses left, records the request as
  **exhausted**: the wall-clock analogue of `RecoveryExhausted`,
  reported as a count rather than raised so a million-request run
  aggregates instead of dying;
* a refused or reset connection is crash detection: no timeout is
  waited, the client fails over immediately.

Client-observed **exactly-once** is an accounting identity the E17
bench machine-checks: ``completed + exhausted == issued``, each
completed request matched to exactly one reply, with the server-side
``duplicates`` counter proving retransmissions were absorbed by the
dedup table rather than re-executed.
"""

from __future__ import annotations

import asyncio
import json
import os
from dataclasses import dataclass, field
from time import perf_counter  # repro: allow[DET001] — measuring real-transport wall-clock RTT is the purpose of this module
from typing import List, Optional, Tuple

from repro.core.recovery import RecoveryPolicy
from repro.core.wire import MsgKind, WireMessage
from repro.net.frames import (
    LENGTH_PREFIX,
    FrameError,
    decode_frame,
    encode_frame,
    pack_frame,
)
from repro.net.server import STATS_OP
from repro.obs.hist import StreamingHistogram

#: wall-clock knobs suited to a loaded asyncio loop (the simulator's
#: chaos policy times out in 25 ms — realistic for simulated links,
#: flappy for a thousand coroutines sharing one real event loop)
DEFAULT_LOAD_POLICY = RecoveryPolicy(
    timeout_ms=1000.0, max_retries=3, backoff_factor=2.0, jitter_frac=0.0
)


@dataclass
class LoadReport:
    """Aggregate outcome of one `run_load` call."""

    clients: int
    requests_per_client: int
    issued: int = 0
    completed: int = 0
    exhausted: int = 0
    retries: int = 0
    failovers: int = 0
    connect_errors: int = 0
    wall_s: float = 0.0
    rtt: StreamingHistogram = field(default_factory=StreamingHistogram)

    @property
    def throughput_per_s(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def exactly_once(self) -> bool:
        """The client-side half of the exactly-once check: every issued
        request has exactly one outcome."""
        return self.completed + self.exhausted == self.issued


async def _open(endpoint: str) -> Tuple[asyncio.StreamReader,
                                        asyncio.StreamWriter]:
    if ":" in endpoint and not os.path.exists(endpoint):
        host, port = endpoint.rsplit(":", 1)
        return await asyncio.open_connection(host, int(port))
    return await asyncio.open_unix_connection(endpoint)


async def _read_frame(reader: asyncio.StreamReader) -> WireMessage:
    head = await reader.readexactly(LENGTH_PREFIX.size)
    (n,) = LENGTH_PREFIX.unpack(head)
    return decode_frame(await reader.readexactly(n))


class _Client:
    """One client coroutine's connection + recovery state."""

    __slots__ = ("cid", "endpoints", "addr_idx", "reader", "writer")

    def __init__(self, cid: int, endpoints: List[str]) -> None:
        self.cid = cid
        self.endpoints = endpoints
        self.addr_idx = 0  # sticky: failover advances, never returns
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None

    def _drop_connection(self) -> None:
        if self.writer is not None:
            self.writer.close()
        self.reader = self.writer = None

    async def _ensure_connected(self) -> bool:
        if self.writer is not None:
            return True
        try:
            self.reader, self.writer = await _open(
                self.endpoints[self.addr_idx]
            )
            return True
        except OSError:
            return False

    async def _attempt(self, frame: bytes, seq: int,
                       wait_ms: float) -> Optional[WireMessage]:
        """One send + bounded wait.  None = timed out (retry);
        ConnectionError propagates = the server is gone (fail over)."""
        self.writer.write(frame)
        await self.writer.drain()
        deadline = perf_counter() + wait_ms / 1000.0
        while True:
            remaining = deadline - perf_counter()
            if remaining <= 0:
                return None
            try:
                msg = await asyncio.wait_for(
                    _read_frame(self.reader), timeout=remaining
                )
            except asyncio.TimeoutError:
                return None
            except (asyncio.IncompleteReadError, FrameError) as exc:
                raise ConnectionResetError("server closed mid-read") from exc
            if msg.kind is MsgKind.REPLY and msg.reply_to == seq:
                return msg
            # a stale reply to an attempt we already timed out on:
            # ignore it and keep waiting inside the same window

    async def run(self, requests: int, payload: bytes,
                  policy: RecoveryPolicy, report: LoadReport) -> None:
        for seq in range(1, requests + 1):
            report.issued += 1
            frame = pack_frame(encode_frame(WireMessage(
                kind=MsgKind.REQUEST, seq=seq, opname="ping",
                sighash=self.cid, payload=payload, sent_at=0.0,
            )))
            t0 = perf_counter()
            done = False
            while not done:
                attempt = 0
                while attempt <= policy.max_retries:
                    if not await self._ensure_connected():
                        report.connect_errors += 1
                        break  # crash detection: fail over at once
                    try:
                        msg = await self._attempt(
                            frame, seq, policy.backoff_ms(attempt)
                        )
                    except (ConnectionError, OSError):
                        self._drop_connection()
                        break  # reset mid-flight: fail over at once
                    if msg is not None:
                        report.completed += 1
                        report.rtt.record((perf_counter() - t0) * 1000.0)
                        done = True
                        break
                    attempt += 1
                    report.retries += 1
                if done:
                    break
                # this address is out of budget (or dead): fail over
                self._drop_connection()
                if self.addr_idx + 1 < len(self.endpoints):
                    self.addr_idx += 1
                    report.failovers += 1
                else:
                    report.exhausted += 1
                    break
        self._drop_connection()


async def _run_load(endpoints: List[str], clients: int, requests: int,
                    payload_bytes: int, policy: RecoveryPolicy,
                    report: LoadReport) -> None:
    payload = b"x" * payload_bytes
    tasks = [
        _Client(cid, list(endpoints)).run(requests, payload, policy, report)
        for cid in range(clients)
    ]
    await asyncio.gather(*tasks)


def run_load(endpoints: List[str], clients: int = 8, requests: int = 4,
             payload_bytes: int = 32,
             policy: Optional[RecoveryPolicy] = None) -> LoadReport:
    """Drive ``clients`` concurrent coroutines against ``endpoints``.

    Each client issues ``requests`` sequential pings, retrying and
    failing over per ``policy`` (`DEFAULT_LOAD_POLICY` when omitted).
    """
    if policy is None:
        policy = DEFAULT_LOAD_POLICY
    report = LoadReport(clients=clients, requests_per_client=requests)
    t0 = perf_counter()
    asyncio.run(_run_load(endpoints, clients, requests, payload_bytes,
                          policy, report))
    report.wall_s = perf_counter() - t0
    return report


def query_stats(endpoint: str) -> dict:
    """Ask a live node for its dedup counters (the ``__stats__`` op)."""

    async def _query() -> dict:
        reader, writer = await _open(endpoint)
        try:
            writer.write(pack_frame(encode_frame(WireMessage(
                kind=MsgKind.REQUEST, seq=0, opname=STATS_OP, sent_at=0.0,
            ))))
            await writer.drain()
            reply = await _read_frame(reader)
            return json.loads(reply.payload.decode("utf-8"))
        finally:
            writer.close()

    return asyncio.run(_query())
