"""A real node process: the asyncio server behind ``repro net serve``.

Speaks the frame protocol of `repro.net.frames` over a Unix-domain or
TCP socket.  Semantics are the paper's server half, reduced to what
the E17 measurements need:

* a REQUEST executes **at most once per server**: the dedup table keys
  on ``(sighash, seq)`` — the load generator uses ``sighash`` as the
  client id — and a duplicate arrival replays the cached reply bytes
  instead of re-executing (the `duplicates` stat is the proof that
  retransmissions happened and were absorbed);
* ``--drop-first N`` makes the first arrival of the first ``N``
  distinct requests execute but *withholds the reply*, deterministically
  forcing the client's wall-clock timeout/retry path so a test run can
  assert ``retries >= 1`` and ``duplicates >= 1`` without real packet
  loss;
* the ``__stats__`` operation returns the counters as JSON, so the
  harness can interrogate a server before crashing it.

On startup the process prints ``REPRO-NET READY <endpoint>`` on stdout
— the supervisor's spawn handshake.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple

from repro.core.wire import MsgKind, WireMessage
from repro.net.frames import (
    LENGTH_PREFIX,
    FrameError,
    decode_frame,
    encode_frame,
    pack_frame,
)

#: the control operation answered with the server's counters
STATS_OP = "__stats__"

#: stdout handshake line, watched by `repro.net.supervisor`
READY_PREFIX = "REPRO-NET READY"


class NodeServer:
    """One node's request executor + dedup table."""

    def __init__(self, name: str, drop_first: int = 0) -> None:
        self.name = name
        self.drop_first = drop_first
        #: (sighash, seq) -> cached reply frame body
        self.reply_cache: Dict[Tuple[int, int], bytes] = {}
        self.requests_seen = 0
        self.executed_unique = 0
        self.duplicates = 0
        self.dropped_replies = 0
        self._reply_seq = 0

    # -- request handling ----------------------------------------------
    def _reply_to(self, req: WireMessage, payload: bytes) -> bytes:
        self._reply_seq += 1
        return encode_frame(WireMessage(
            kind=MsgKind.REPLY,
            seq=self._reply_seq,
            reply_to=req.seq,
            opname=req.opname,
            sighash=req.sighash,
            payload=payload,
            sent_at=0.0,
            span=req.span,
        ))

    def handle(self, req: WireMessage) -> Optional[bytes]:
        """Process one request; return the reply frame body to send,
        or None when the reply is deliberately withheld."""
        if req.opname == STATS_OP:
            return self._reply_to(req, json.dumps(self.stats()).encode())
        self.requests_seen += 1
        key = (req.sighash, req.seq)
        cached = self.reply_cache.get(key)
        if cached is not None:
            # a retransmission: exactly-once means replay, not re-execute
            self.duplicates += 1
            return cached
        self.executed_unique += 1
        reply = self._reply_to(req, req.payload)
        self.reply_cache[key] = reply
        if self.drop_first > 0:
            # execute, cache, but stay silent: the client must time out
            # and retransmit, and the retransmit must hit the cache
            self.drop_first -= 1
            self.dropped_replies += 1
            return None
        return reply

    def stats(self) -> dict:
        return {
            "name": self.name,
            "requests_seen": self.requests_seen,
            "executed_unique": self.executed_unique,
            "duplicates": self.duplicates,
            "dropped_replies": self.dropped_replies,
        }

    # -- the asyncio half ----------------------------------------------
    async def _connection(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                head = await reader.readexactly(LENGTH_PREFIX.size)
                (n,) = LENGTH_PREFIX.unpack(head)
                body = await reader.readexactly(n)
                try:
                    req = decode_frame(body)
                except FrameError:
                    break  # protocol violation: drop the connection
                reply = self.handle(req)
                if reply is not None:
                    writer.write(pack_frame(reply))
                    await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            writer.close()

    async def serve(self, socket_path: Optional[str] = None,
                    port: Optional[int] = None) -> None:
        """Bind, announce readiness on stdout, and serve forever."""
        if socket_path is not None:
            server = await asyncio.start_unix_server(
                self._connection, path=socket_path
            )
            endpoint = socket_path
        else:
            server = await asyncio.start_server(
                self._connection, host="127.0.0.1", port=port or 0
            )
            endpoint = "127.0.0.1:%d" % server.sockets[0].getsockname()[1]
        print(f"{READY_PREFIX} {endpoint}", flush=True)
        async with server:
            await server.serve_forever()


def serve_forever(name: str, socket_path: Optional[str] = None,
                  port: Optional[int] = None, drop_first: int = 0) -> None:
    """Blocking entry point used by ``python -m repro net serve``."""
    node = NodeServer(name, drop_first=drop_first)
    try:
        asyncio.run(node.serve(socket_path=socket_path, port=port))
    except KeyboardInterrupt:  # pragma: no cover - interactive teardown
        pass
