"""The LYNX runtime for the real-transport backend.

Identical hook-for-hook to the ideal runtime — same single charged
handoff, same receipt-at-consumption, same shared aborted-seq
screening — because the backends are *meant* to be semantically
indistinguishable: the divergence is in the data plane (`NetKernel`
pushes every message through a real socket), not in the contract.
Keeping the simulated shapes ideal-identical is what makes the E17
measured-vs-simulated comparison meaningful.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.exceptions import RequestAborted
from repro.core.links import ConnectWaiter, EndRef, EndState
from repro.core.runtime import LynxRuntimeBase
from repro.core.wire import WireMessage
from repro.sim.tasks import sleep


class NetRuntime(LynxRuntimeBase):
    """Socket transport behind ideal semantics; see module docstring."""

    RUNTIME_NAME = "net"

    def __init__(self, handle, cluster) -> None:
        super().__init__(handle, cluster)
        self.costs = cluster.costmodel.ideal
        self.kernel = cluster.kernel

    def runtime_costs(self):
        return self.cluster.costmodel.ideal.runtime

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def rt_new_link(self) -> Generator:
        link = self.registry.alloc_link(self.name, self.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        self.kernel.route[ref_a] = self
        self.kernel.route[ref_b] = self
        return ref_a, ref_b
        yield

    def _handoff(self, msg: WireMessage) -> Generator:
        """Charge the one simulated cost of the transport and span it;
        the *wire* cost is paid inside `NetKernel._transit`."""
        t0 = self.engine.now
        yield sleep(self.engine, self.costs.delivery_ms)
        if msg.span is not None:
            self.cluster.spans.emit(
                msg.span, "kernel", "handoff", self.name, t0, self.engine.now
            )

    def rt_send_request(self, es: EndState, msg: WireMessage) -> Generator:
        if self.kernel.is_destroyed(es.ref):
            raise self.destroyed_error(self.kernel.destroyed[es.ref.link])
        yield from self._handoff(msg)
        self.kernel.post(es.ref.peer, msg)

    def rt_send_reply(self, es: EndState, msg: WireMessage) -> Generator:
        requester = es.ref.peer
        if self.kernel.is_destroyed(es.ref):
            raise self.destroyed_error(self.kernel.destroyed[es.ref.link])
        aborted = self.kernel.aborted.get(requester)
        if aborted and msg.reply_to in aborted:
            aborted.discard(msg.reply_to)
            raise RequestAborted(
                f"requester aborted seq {msg.reply_to} on {es.ref}"
            )
        yield from self._handoff(msg)
        self.kernel.deliver(requester, msg)
        # delivery is the receipt: unblock the replying coroutine now
        self.notify_receipt(es.ref, msg.seq)

    def rt_block_wait(self) -> Generator:
        yield self.wakeup_future()

    def rt_request_available(self, es: EndState) -> bool:
        return bool(self.kernel.mailbox.get(es.ref))

    def rt_take_request(self, es: EndState) -> Generator:
        box = self.kernel.mailbox.get(es.ref)
        if not box:
            return None
        msg = box.popleft()
        # receipt-at-consumption: unconsumed requests stay withdrawable
        sender = self.kernel.owner(es.ref.peer)
        if sender is not None:
            sender.notify_receipt(es.ref.peer, msg.seq)
        return msg
        yield

    def rt_destroy(self, es: EndState, reason: str) -> Generator:
        why = self.crash_tagged(reason)
        # our unconsumed sends: the base already cleared ``outgoing``,
        # so bring their enclosures home directly before the kernel
        # drops the mailboxes
        for msg in self.kernel.mailbox.get(es.ref.peer, ()):
            self._restore_enclosures(msg)
        self.kernel.destroy_link(es.ref, why)
        return
        yield

    def rt_abort_connect(self, es: EndState, waiter: ConnectWaiter) -> Generator:
        if self.kernel.withdraw(es.ref.peer, waiter.seq):
            return True
        # consumed already: flag the seq so the reply raises on the
        # server side (same capability surface as the ideal kernel)
        self.kernel.aborted.setdefault(es.ref, set()).add(waiter.seq)
        return False
        yield

    def rt_adopt_end(self, ref: EndRef, meta: dict) -> Generator:
        self.kernel.route[ref] = self
        reason: Optional[str] = self.kernel.destroyed.get(ref.link)
        if reason is not None:
            self.notify_destroyed(ref, reason, crash="crash" in reason)
        elif self.kernel.mailbox.get(ref):
            self._wake()
        return
        yield
