"""Real-transport backend: the kernel interface over actual sockets.

Every other backend in this repository simulates its network.  This
package registers ``real-asyncio``, a kernel whose data plane is a
real OS socket: every `WireMessage` a runtime sends is serialised into
a length-prefixed frame (`repro.net.frames`), round-tripped through an
asyncio switch listening on a Unix-domain socket (TCP on hosts without
UDS — `repro.net.hub`), decoded from the returned bytes, and only then
applied to the destination mailbox (`repro.net.kernel`).  The causal
`SpanContext` rides inside the frame, so tracing and flight-recorder
dumps work unchanged over the wire.

The in-process backend keeps the control plane (routing tables, crash
bookkeeping) in memory so it stays deterministic and runs the full
conformance suite; the *distributed* half — real node processes
spawned and monitored by `repro.net.supervisor`, served by
`repro.net.server`, and driven by the `repro.net.load` generator with
wall-clock `RecoveryPolicy` timeout/retry/backoff — is what the E17
bench measures against the simulator's shapes (docs/PORTS.md,
"Real transport").
"""

from repro.net.hub import TransportUnavailable

__all__ = ["TransportUnavailable"]
