"""The in-process switch: one asyncio socket server per Python process.

The registered ``real-asyncio`` backend keeps its control plane (the
routing and mailbox tables in `repro.net.kernel.NetKernel`) in memory,
but its *data plane* is real: every message is framed and round-tripped
through the switch this module runs — an asyncio server on a
Unix-domain socket (TCP 127.0.0.1 where UDS is unavailable) living in
one daemon thread shared by every cluster in the process.  The
round-trip is synchronous from the simulation's point of view, which
is what keeps the backend deterministic: the engine's event order
never depends on socket timing, only the bytes do.

Hosts that forbid sockets entirely raise `TransportUnavailable`; the
conformance suite converts that into a skip-with-reason, and the
benches record ``None`` for the real-transport metrics.
"""

from __future__ import annotations

import asyncio
import os
import socket
import struct
import tempfile
import threading
from typing import Optional, Tuple

from repro.net.frames import LENGTH_PREFIX, MAX_FRAME_BYTES

#: wall-clock cap on any single blocking socket operation — a hung
#: switch must surface as an error, never a silent test-suite hang
SOCKET_TIMEOUT_S = 30.0


class TransportUnavailable(RuntimeError):
    """This host cannot run the real transport (sockets forbidden)."""


async def _echo_connection(reader: asyncio.StreamReader,
                           writer: asyncio.StreamWriter) -> None:
    """Per-connection switch loop: read one length-prefixed frame,
    write it straight back.  The value is not the echo — it is that
    the bytes genuinely crossed the OS socket layer both ways."""
    try:
        while True:
            head = await reader.readexactly(LENGTH_PREFIX.size)
            (n,) = LENGTH_PREFIX.unpack(head)
            if n > MAX_FRAME_BYTES:
                break
            body = await reader.readexactly(n)
            writer.write(head + body)
            await writer.drain()
    except (asyncio.IncompleteReadError, ConnectionError, OSError):
        pass
    finally:
        writer.close()


class Hub:
    """Lazily started singleton switch for this Python process."""

    _lock = threading.Lock()
    _instance: Optional["Hub"] = None

    def __init__(self) -> None:
        self.endpoint: Optional[Tuple] = None  # ("unix", path) | ("tcp", host, port)
        self._error: Optional[BaseException] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-net-hub", daemon=True
        )
        self._thread.start()
        self._ready.wait(SOCKET_TIMEOUT_S)
        if self.endpoint is None:
            raise TransportUnavailable(
                f"could not start the socket switch: {self._error!r}"
            )

    @classmethod
    def shared(cls) -> "Hub":
        with cls._lock:
            if cls._instance is None:
                cls._instance = cls()
            return cls._instance

    # -- the switch thread ---------------------------------------------
    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(self._start_server())
        except BaseException as exc:  # noqa: BLE001 - reported to starter
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        loop.run_forever()

    async def _start_server(self) -> None:
        if hasattr(socket, "AF_UNIX"):
            try:
                path = os.path.join(
                    tempfile.mkdtemp(prefix="repro-net-"), "switch.sock"
                )
                await asyncio.start_unix_server(_echo_connection, path=path)
                self.endpoint = ("unix", path)
                return
            except (OSError, NotImplementedError):
                pass  # fall through to TCP loopback
        server = await asyncio.start_server(
            _echo_connection, host="127.0.0.1", port=0
        )
        host, port = server.sockets[0].getsockname()[:2]
        self.endpoint = ("tcp", host, port)


class HubConnection:
    """One cluster's blocking connection to the switch.

    ``roundtrip`` sends a framed body and blocks until the switch
    echoes it back — the synchronous discipline that makes the
    real-transport backend exactly as deterministic as ``ideal``.
    """

    __slots__ = ("_sock", "frames", "bytes_moved")

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self.frames = 0
        self.bytes_moved = 0

    def roundtrip(self, body: bytes) -> bytes:
        sock = self._sock
        if sock is None:
            raise TransportUnavailable("connection to the switch is closed")
        head = LENGTH_PREFIX.pack(len(body))
        try:
            sock.sendall(head + body)
            echoed_head = self._read_exact(LENGTH_PREFIX.size)
            (n,) = LENGTH_PREFIX.unpack(echoed_head)
            echoed = self._read_exact(n)
        except (OSError, struct.error) as exc:
            raise TransportUnavailable(
                f"switch round-trip failed: {exc}"
            ) from exc
        self.frames += 1
        self.bytes_moved += len(head) + len(body)
        return echoed

    def _read_exact(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise TransportUnavailable("switch closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    @property
    def closed(self) -> bool:
        return self._sock is None


def hub_connect() -> HubConnection:
    """Open one blocking connection to the process-wide switch."""
    hub = Hub.shared()
    endpoint = hub.endpoint
    try:
        if endpoint[0] == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(SOCKET_TIMEOUT_S)
            sock.connect(endpoint[1])
        else:
            sock = socket.create_connection(
                endpoint[1:], timeout=SOCKET_TIMEOUT_S
            )
    except OSError as exc:
        raise TransportUnavailable(
            f"cannot connect to the switch at {endpoint!r}: {exc}"
        ) from exc
    return HubConnection(sock)
