"""Linda over raw SODA — the natural fit.

A blocking ``in`` is *exactly* a SODA request the server has not
accepted yet: "At any time, a process can accept a request that was
made of it at some time in the past" (§4.1).  The server keeps the
pattern (carried out-of-band, the §4.2.1 small-OOB idealisation) and
simply accepts the request — shipping the tuple back in the same
transfer — the moment a match exists.  No polling, no bouncing, no
extra messages: one request and one completion per operation, however
long the wait.

The server is pure event logic inside the software-interrupt handler:
it needs no task of its own.
"""

from __future__ import annotations

from typing import Dict

from repro.linda.api import (
    LindaClientBase,
    LindaSystemBase,
    decode_tuple,
    encode_tuple,
)
from repro.linda.space import Pattern, TupleSpace
from repro.sim.futures import Future
from repro.soda.cluster import SodaCluster
from repro.soda.kernel import AcceptStatus, Interrupt, InterruptKind

SERVER = "linda-server"


class SodaLinda(LindaSystemBase):
    KIND = "soda"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.cluster = SodaCluster(seed=seed)
        kernel = self.cluster.kernel
        self.port = kernel.register_process(SERVER, 0)
        self.space = TupleSpace()
        self.name = kernel.new_name()
        kernel.advertise(SERVER, self.name)
        self.port.set_handler(self._on_interrupt)
        self._next_node = 1

    # ------------------------------------------------------------------
    # the entire server
    # ------------------------------------------------------------------
    def _on_interrupt(self, intr: Interrupt) -> None:
        if intr.kind is not InterruptKind.REQUEST:
            return
        op = intr.oob.get("op")
        if op == "out":
            # accept now; the tuple arrives with the transfer
            fut = self.port.accept(intr.rid, nrecv=intr.nsend)
            fut.add_done_callback(self._on_out_received)
        elif op in ("take", "read"):
            pattern = intr.oob["pattern"]
            tup = self.space.try_match(pattern, take=(op == "take"))
            if tup is not None:
                self._serve(intr.rid, tup)
            else:
                # THE Linda move: just... don't accept yet (§4.1)
                self.space.add_waiter(pattern, op == "take", intr.rid)
                self.metrics.count("linda.blocked_waiters")

    def _on_out_received(self, fut: Future) -> None:
        status, data = fut.value
        if status is not AcceptStatus.OK or data is None:
            return
        tup = decode_tuple(data)
        self.metrics.count("linda.outs")
        for waiter, served in self.space.out(tup):
            self._serve(waiter.token, served)

    def _serve(self, rid: int, tup) -> None:
        payload = encode_tuple(tup)
        self.port.accept(rid, nsend=len(payload), data=payload)
        self.metrics.count("linda.served")

    # ------------------------------------------------------------------
    def client(self, name: str) -> "SodaLindaClient":
        port = self.cluster.kernel.register_process(name, self._next_node)
        self._next_node += 1
        return SodaLindaClient(self, name, port)


class SodaLindaClient(LindaClientBase):
    def __init__(self, system: SodaLinda, name: str, port) -> None:
        self.system = system
        self.name = name
        self.port = port
        self._completions: Dict[int, Future] = {}
        port.set_handler(self._on_interrupt)

    def _on_interrupt(self, intr: Interrupt) -> None:
        fut = self._completions.pop(intr.rid, None)
        if fut is not None and not fut.is_settled():
            if intr.kind is InterruptKind.COMPLETION:
                fut.resolve(intr.data)
            else:
                fut.fail(RuntimeError(f"linda server died ({intr.kind})"))

    def _await_completion(self, rid: int) -> Future:
        fut = Future(self.system.engine, f"{self.name}.linda")
        self._completions[rid] = fut
        return fut

    def out(self, tup):
        payload = encode_tuple(tup)
        rid = yield self.port.request(
            SERVER, self.system.name, {"op": "out"},
            nsend=len(payload), data=payload,
        )
        yield self._await_completion(rid)

    def _query(self, op: str, pattern: Pattern):
        rid = yield self.port.request(
            SERVER, self.system.name, {"op": op, "pattern": pattern},
            nsend=0, nrecv=1 << 16,
        )
        data = yield self._await_completion(rid)
        return decode_tuple(data)

    def take(self, pattern):
        result = yield from self._query("take", pattern)
        return result

    def read(self, pattern):
        result = yield from self._query("read", pattern)
        return result
