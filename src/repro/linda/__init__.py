"""A second "language" on the same kernels: a miniature Linda.

The paper's final argument (§6, lesson three) is not about LYNX at
all: "For general-purpose computing a distributed operating system
must support a wide variety of languages and applications ... by
maintaining the flexibility of the kernel interface they permit
equally efficient implementations of a wide variety of other
distributed languages, with entirely different needs."  §1 names
Linda — a coordination model with *nothing* in common with LYNX links:
an associative tuple space with blocking ``in``.

This package implements that second language over each kernel's **raw
interface** (no LYNX runtime underneath):

* `repro.linda.space` — the kernel-free matching engine;
* `repro.linda.soda_adapter` — SODA's delayed *accept* is a perfect
  blocking ``in``: the request simply waits, unaccepted, until a match
  exists ("screening belongs in the application layer");
* `repro.linda.chrysalis_adapter` — shared memory makes the tuple
  space a mapped object plus event blocks; there is no server at all;
* `repro.linda.charlotte_adapter` — a central server juggling one
  Receive and one send slot per client link; the high-level kernel
  fits the *different* language no better than it fit LYNX.

Experiment A5 compares the three adapters' complexity and latency —
§6's closing claim, measured.
"""

from repro.linda.space import ANY, Pattern, TupleSpace, match
from repro.linda.api import make_linda, LindaClientBase

__all__ = [
    "ANY",
    "Pattern",
    "TupleSpace",
    "match",
    "make_linda",
    "LindaClientBase",
]
