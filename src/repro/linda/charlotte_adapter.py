"""Linda over raw Charlotte — the awkward fit, again.

A central server holds the space with one kernel link per client.  The
shape of the §3.2 problems recurs for this *entirely different*
language:

* the server must keep a Receive posted on every client link and
  repost after each delivery (activity juggling);
* one outstanding send per link means replies to blocked ``in``s queue
  in the server when a client has several pending operations;
* a blocking ``in`` forces the server to hold the request and reply
  much later — there is no way to leave it "in the kernel" as SODA
  does, so the server buffers patterns and owes replies, growing
  state the low-level kernels never need.

That the same kernel is clumsy for two unrelated languages is §6's
lesson three: "A high-level interface is only useful to those
applications for which its abstractions are appropriate."
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.charlotte.cluster import CharlotteCluster
from repro.charlotte.kernel import (
    CallStatus,
    Completion,
    CompletionKind,
    _KEnd,
    _KLink,
)
from repro.core.links import EndRef
from repro.core.wire import MsgKind, WireMessage
from repro.linda.api import (
    LindaClientBase,
    LindaSystemBase,
    decode_pattern,
    decode_tuple,
    encode_pattern,
    encode_tuple,
)
from repro.linda.space import Pattern, TupleSpace
from repro.sim.tasks import Task

SERVER = "linda-server"


class CharlotteLinda(LindaSystemBase):
    KIND = "charlotte"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.cluster = CharlotteCluster(seed=seed)
        self.kernel = self.cluster.kernel
        self.port = self.kernel.register_process(SERVER, 0)
        self.space = TupleSpace()
        self._next_node = 1
        self._client_refs: Dict[str, EndRef] = {}
        #: per-link outbound queues (one outstanding send each, §3.1)
        self._sendq: Dict[EndRef, Deque[WireMessage]] = {}
        self._send_busy: Dict[EndRef, bool] = {}
        self._started = False

    # ------------------------------------------------------------------
    def client(self, name: str) -> "CharlotteLindaClient":
        cport = self.kernel.register_process(name, self._next_node)
        link = self.cluster.registry.alloc_link(SERVER, name)
        ref_s, ref_c = EndRef(link, 0), EndRef(link, 1)
        self.kernel.links[link] = _KLink(
            link,
            [_KEnd(ref_s, SERVER, 0), _KEnd(ref_c, name, self._next_node)],
        )
        self._next_node += 1
        self._client_refs[name] = ref_s
        self._sendq[ref_s] = deque()
        self._send_busy[ref_s] = False
        if not self._started:
            self._started = True
            # the server is a daemon: it does not count toward client
            # completion (it winds down when the last link dies, or
            # simply idles in Wait at quiescence)
            Task(self.cluster.engine, self._server(), "linda-server")
        return CharlotteLindaClient(self, name, cport, ref_c)

    # ------------------------------------------------------------------
    # the server task: Wait-loop over all client links
    # ------------------------------------------------------------------
    def _server(self):
        # post the initial Receive on every client link as they appear
        posted = set()
        while True:
            for ref in self._client_refs.values():
                if ref not in posted:
                    yield self.port.receive(ref)
                    posted.add(ref)
            desc: Completion = yield self.port.wait()
            if desc.kind is CompletionKind.RECV_DONE:
                yield self.port.receive(desc.ref)  # repost immediately
                yield from self._handle(desc.ref, desc.msg)
            elif desc.kind is CompletionKind.SEND_DONE:
                self._send_busy[desc.ref] = False
                yield from self._pump(desc.ref)
            elif desc.kind is CompletionKind.LINK_DESTROYED:
                self._client_refs = {
                    n: r for n, r in self._client_refs.items()
                    if r != desc.ref
                }
                if not self._client_refs:
                    return  # all clients gone: wind down

    def _handle(self, ref: EndRef, msg: WireMessage):
        op = msg.opname
        if op == "out":
            tup = decode_tuple(msg.payload)
            self.metrics.count("linda.outs")
            for waiter, served in self.space.out(tup):
                yield from self._send_tuple(waiter.token, served)
        else:
            pattern = decode_pattern(msg.payload)
            tup = self.space.try_match(pattern, take=(op == "take"))
            if tup is not None:
                yield from self._send_tuple(ref, tup)
            else:
                # the server itself must buffer the pattern and owe the
                # reply — Charlotte gives it nowhere else to park
                self.space.add_waiter(pattern, op == "take", ref)
                self.metrics.count("linda.blocked_waiters")

    def _send_tuple(self, ref: EndRef, tup):
        msg = WireMessage(kind=MsgKind.REPLY, seq=0, opname="tuple",
                          payload=encode_tuple(tup))
        self._sendq[ref].append(msg)
        self.metrics.count("linda.served")
        yield from self._pump(ref)

    def _pump(self, ref: EndRef):
        if self._send_busy.get(ref) or not self._sendq.get(ref):
            return
        msg = self._sendq[ref].popleft()
        status = yield self.port.send(ref, msg)
        if status is CallStatus.SUCCESS:
            self._send_busy[ref] = True
        # a DESTROYED status simply drops the reply: the client is gone


class CharlotteLindaClient(LindaClientBase):
    def __init__(self, system: CharlotteLinda, name: str, port,
                 ref: EndRef) -> None:
        self.system = system
        self.name = name
        self.port = port
        self.ref = ref

    def _await(self, want_kind: CompletionKind):
        while True:
            desc = yield self.port.wait()
            if desc.kind is want_kind:
                return desc

    def out(self, tup):
        msg = WireMessage(kind=MsgKind.REQUEST, seq=0, opname="out",
                          payload=encode_tuple(tup))
        status = yield self.port.send(self.ref, msg)
        assert status is CallStatus.SUCCESS, status
        yield from self._await(CompletionKind.SEND_DONE)

    def _query(self, op: str, pattern: Pattern):
        # post the Receive for the (possibly much later) reply first
        yield self.port.receive(self.ref)
        msg = WireMessage(kind=MsgKind.REQUEST, seq=0, opname=op,
                          payload=encode_pattern(pattern))
        status = yield self.port.send(self.ref, msg)
        assert status is CallStatus.SUCCESS, status
        yield from self._await(CompletionKind.SEND_DONE)
        desc = yield from self._await(CompletionKind.RECV_DONE)
        return decode_tuple(desc.msg.payload)

    def take(self, pattern):
        result = yield from self._query("take", pattern)
        return result

    def read(self, pattern):
        result = yield from self._query("read", pattern)
        return result

    def close(self):
        yield self.port.destroy(self.ref)
