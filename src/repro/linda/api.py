"""The mini-Linda client API and factory.

Clients are *raw simulation tasks* (generators driven by
`repro.sim.tasks.Task`), not LYNX processes — the whole point of the
experiment is that this language bypasses the LYNX runtime and sits
directly on each kernel:

    system = make_linda("soda")
    def producer(client):
        yield from client.out(("job", 1))
    def consumer(client, sink):
        tup = yield from client.take(("job", ANY))
        sink.append(tup)
    system.spawn(producer(system.client("p")))
    system.spawn(consumer(system.client("c"), results))
    system.run_until_quiet()

Tuples are flat Python tuples of ints/floats/strs/bytes/bools; they are
byte-encoded (repr) so the kernels charge realistic sizes.
"""

from __future__ import annotations

import ast
from typing import Any, Generator, Tuple

from repro.linda.space import ANY, Pattern
from repro.sim.tasks import Task

_ALLOWED = (int, float, str, bytes, bool)


def encode_tuple(tup: Tuple[Any, ...]) -> bytes:
    for v in tup:
        if not isinstance(v, _ALLOWED):
            raise TypeError(f"linda tuples carry scalars only, got {v!r}")
    return repr(tup).encode()


def decode_tuple(data: bytes) -> Tuple[Any, ...]:
    return ast.literal_eval(data.decode())


def encode_pattern(pattern: Pattern) -> bytes:
    parts = []
    for p in pattern:
        if p is ANY:
            parts.append("?")
        elif isinstance(p, type):
            parts.append(f"t:{p.__name__}")
        else:
            parts.append(f"v:{p!r}")
    return "\x1f".join(parts).encode()


_TYPES = {"int": int, "float": float, "str": str, "bytes": bytes,
          "bool": bool}


def decode_pattern(data: bytes) -> Pattern:
    if not data:
        return ()
    out = []
    for part in data.decode().split("\x1f"):
        if part == "?":
            out.append(ANY)
        elif part.startswith("t:"):
            out.append(_TYPES[part[2:]])
        else:
            out.append(ast.literal_eval(part[2:]))
    return tuple(out)


class LindaClientBase:
    """Abstract client: three generator operations."""

    def out(self, tup: Tuple[Any, ...]) -> Generator:
        """Add ``tup`` to the space; returns once it is in."""
        raise NotImplementedError
        yield

    def take(self, pattern: Pattern) -> Generator:
        """Linda ``in``: remove and return a match; blocks until one
        exists."""
        raise NotImplementedError
        yield

    def read(self, pattern: Pattern) -> Generator:
        """Linda ``rd``: return a match without removing it."""
        raise NotImplementedError
        yield

    def close(self) -> Generator:
        """Release transport resources (Charlotte: destroy the client's
        link so the server can wind down).  Optional; default no-op."""
        return
        yield


class LindaSystemBase:
    """One tuple space on one kernel."""

    KIND = "abstract"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._tasks = []

    @property
    def engine(self):
        return self.cluster.engine

    @property
    def metrics(self):
        return self.cluster.metrics

    def client(self, name: str) -> LindaClientBase:
        raise NotImplementedError

    def spawn(self, gen: Generator, name: str = "linda-task") -> Task:
        t = Task(self.engine, gen, name)
        self._tasks.append(t)
        return t

    def run_until_quiet(self, max_ms: float = 1e7) -> float:
        return self.cluster.run_until_quiet(max_ms=max_ms)

    @property
    def all_finished(self) -> bool:
        return all(t.finished for t in self._tasks)

    def check(self) -> None:
        for t in self._tasks:
            if t.finished:
                t.done.result()  # re-raise any client failure


def make_linda(kind: str, seed: int = 0) -> LindaSystemBase:
    from repro.core.ports import kernel_profile

    profile = kernel_profile(kind)  # raises with the registered list
    if profile.linda_adapter is None:
        raise ValueError(f"kernel {kind!r} has no Linda adapter registered")
    return profile.linda_adapter()(seed)
