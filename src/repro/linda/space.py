"""The tuple-space matching engine — kernel-free.

Linda semantics (Carriero & Gelernter, cited by the paper):

* ``out(t)`` adds tuple ``t`` to the space;
* ``in(p)`` removes and returns a tuple matching pattern ``p``,
  blocking until one exists (this package calls it ``take`` — ``in``
  is a Python keyword);
* ``rd(p)`` returns a match without removing it (here: ``read``).

A pattern element is an actual value (matches equal values), a Python
type (matches instances), or `ANY`.  Matching requires equal arity.

`TupleSpace` also manages blocked waiters so the adapters share the
wake-on-out logic: ``out`` returns the waiters the new tuple satisfies,
in arrival order, with at most one *taker* (the tuple can only be
removed once) but any number of readers ahead of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple


class _Any:
    _instance: Optional["_Any"] = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "ANY"


#: wildcard pattern element
ANY = _Any()

#: a pattern is a tuple of values, types, or ANY
Pattern = Tuple[Any, ...]


def match(pattern: Pattern, tup: Tuple[Any, ...]) -> bool:
    """Linda matching: equal arity; per element, ANY matches anything,
    a type matches its instances, a value matches by equality."""
    if len(pattern) != len(tup):
        return False
    for p, v in zip(pattern, tup):
        if p is ANY:
            continue
        if isinstance(p, type):
            if not isinstance(v, p):
                return False
        elif p != v:
            return False
    return True


@dataclass
class Waiter:
    """A blocked ``take``/``read``, adapter-specific ``token`` attached
    (a SODA rid, a Chrysalis event name, a Charlotte link ref, ...)."""

    pattern: Pattern
    take: bool
    token: Any
    seq: int = 0


class TupleSpace:
    """Tuples plus blocked waiters; used by every adapter's server (or,
    under Chrysalis, shared directly)."""

    def __init__(self) -> None:
        self.tuples: List[Tuple[Any, ...]] = []
        self.waiters: List[Waiter] = []
        self._next_seq = 0

    def __len__(self) -> int:
        return len(self.tuples)

    # ------------------------------------------------------------------
    def try_match(self, pattern: Pattern, take: bool) -> Optional[tuple]:
        """Return (and for ``take`` remove) the oldest matching tuple."""
        for i, tup in enumerate(self.tuples):
            if match(pattern, tup):
                if take:
                    self.tuples.pop(i)
                return tup
        return None

    def add_waiter(self, pattern: Pattern, take: bool, token: Any) -> Waiter:
        w = Waiter(pattern, take, token, self._next_seq)
        self._next_seq += 1
        self.waiters.append(w)
        return w

    def remove_waiter(self, waiter: Waiter) -> None:
        if waiter in self.waiters:
            self.waiters.remove(waiter)

    def out(self, tup: Tuple[Any, ...]) -> List[Tuple[Waiter, tuple]]:
        """Add a tuple; return the waiters it satisfies, oldest first:
        every matching reader that arrived before the first matching
        taker sees it, the taker consumes it (and nobody after)."""
        satisfied: List[Tuple[Waiter, tuple]] = []
        taker: Optional[Waiter] = None
        for w in sorted(self.waiters, key=lambda w: w.seq):
            if not match(w.pattern, tup):
                continue
            if w.take:
                taker = w
                break
            satisfied.append((w, tup))
        if taker is not None:
            satisfied.append((taker, tup))
            self.waiters.remove(taker)
        else:
            self.tuples.append(tup)
        for w, _ in satisfied:
            if not w.take:
                self.waiters.remove(w)
        return satisfied
