"""Linda over raw Chrysalis — there is no server at all.

The tuple space is a mapped memory object; ``out``/``take``/``read``
are a handful of atomic operations on it, and a blocked ``in`` parks
the caller's event-block name inside the space and waits — precisely
the pattern §5.1's primitives were microcoded for.  "Chrysalis
provides no messages at all, but its shared-memory operations can be
used to build whatever style of screening is desired" (§6, lesson
two): here the "screening" is a pattern match under an atomic op.

This adapter is by far the smallest of the three — lesson three in
miniature.
"""

from __future__ import annotations

from repro.chrysalis.cluster import ChrysalisCluster
from repro.chrysalis.kernel import ChrysalisPort
from repro.linda.api import LindaClientBase, LindaSystemBase, encode_tuple
from repro.linda.space import Pattern, TupleSpace

#: shared-memory bytes charged per tuple copy (header + encoding)
_COPY_HEADER = 16


class ChrysalisLinda(LindaSystemBase):
    KIND = "chrysalis"

    def __init__(self, seed: int = 0) -> None:
        super().__init__(seed)
        self.cluster = ChrysalisCluster(seed=seed)
        kernel = self.cluster.kernel
        self.space = TupleSpace()
        self.oid = kernel.make_object(self.space)

    def client(self, name: str) -> "ChrysalisLindaClient":
        return ChrysalisLindaClient(self, name)


class ChrysalisLindaClient(LindaClientBase):
    def __init__(self, system: ChrysalisLinda, name: str) -> None:
        self.system = system
        self.name = name
        self.port = ChrysalisPort(system.cluster.kernel, name)
        self._event: int | None = None
        self._space: TupleSpace | None = None

    def _setup(self):
        if self._space is None:
            self._space = yield self.port.map_object(self.system.oid)
            self._event = yield self.port.make_event()

    def out(self, tup):
        yield from self._setup()
        yield self.port.copy(len(encode_tuple(tup)) + _COPY_HEADER)
        satisfied = yield self.port.atomic(lambda: self._space.out(tup))
        self.system.metrics.count("linda.outs")
        for waiter, served in satisfied:
            # waiter.token is the blocked client's event-block name
            yield self.port.post(waiter.token, served)

    def _query(self, pattern: Pattern, take: bool):
        yield from self._setup()
        tup = yield self.port.atomic(
            lambda: self._space.try_match(pattern, take)
        )
        if tup is None:
            yield self.port.atomic(
                lambda: self._space.add_waiter(pattern, take, self._event)
            )
            self.system.metrics.count("linda.blocked_waiters")
            tup = yield self.port.event_wait(self._event)
        yield self.port.copy(len(encode_tuple(tup)) + _COPY_HEADER)
        self.system.metrics.count("linda.served")
        return tup

    def take(self, pattern):
        result = yield from self._query(pattern, take=True)
        return result

    def read(self, pattern):
        result = yield from self._query(pattern, take=False)
        return result
