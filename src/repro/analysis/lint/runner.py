"""File collection and the one-call entry point (`run_lint`).

Path semantics match the CLI conventions set by ``bench --only``: a
path that does not exist is a usage error (`LintPathError` → exit 2,
clear message), not an empty-and-green run.  Directories are walked
for ``*.py`` in sorted order so reports are byte-stable.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.lint.baseline import DEFAULT_BASELINE_NAME, load_baseline
from repro.analysis.lint.core import LintResult, ModuleInfo, lint_modules


class LintPathError(ValueError):
    """A requested lint path does not exist."""


def lint_repo_root(start: Optional[str] = None) -> Path:
    """The repository root: nearest ancestor holding a pyproject.toml
    (falls back to the current directory when the package is installed
    outside its checkout)."""
    path = Path(start or os.path.abspath(__file__)).resolve()
    for candidate in (path, *path.parents):
        if (candidate / "pyproject.toml").exists():
            return candidate
    return Path(os.getcwd())


def default_paths(root: Path) -> List[Path]:
    """What ``python -m repro lint`` checks with no path arguments."""
    return [root / "src" / "repro"]


def collect_files(paths: Sequence[Path]) -> List[Path]:
    """Expand files/directories to a sorted, de-duplicated .py list."""
    files: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.is_file():
            files.append(p)
        else:
            raise LintPathError(
                f"no such file or directory: {p} (paths are files or "
                f"directories of .py sources)"
            )
    seen = set()
    unique: List[Path] = []
    for f in sorted(files):
        r = f.resolve()
        if r not in seen:
            seen.add(r)
            unique.append(f)
    return unique


def run_lint(
    paths: Optional[Sequence] = None,
    root: Optional[Path] = None,
    baseline_path: Optional[str] = None,
    rules: Optional[Sequence] = None,
    deep: bool = False,
) -> LintResult:
    """Lint ``paths`` (default: ``<repo>/src/repro``) with the full
    registered rule set (or ``rules``), honouring the baseline at
    ``baseline_path`` (default: ``<repo>/LINT_BASELINE.json``; a
    missing baseline file simply grandfathers nothing).

    ``deep=True`` additionally links the parsed modules into a
    `repro.analysis.flow.ProgramGraph` and runs every registered
    whole-program rule over it — one parse, both passes."""
    # the rules package registers on import; pulling it here keeps
    # `from repro.analysis.lint.runner import run_lint` self-contained
    import repro.analysis.lint.rules  # noqa: F401

    root = Path(root) if root is not None else lint_repo_root()
    targets = [Path(p) for p in paths] if paths else default_paths(root)
    files = collect_files(targets)
    if baseline_path is None:
        baseline_path = str(root / DEFAULT_BASELINE_NAME)
    baseline = load_baseline(baseline_path)
    modules = [ModuleInfo.parse(f, root=root) for f in files]
    program = None
    deep_rules = None
    if deep:
        from repro.analysis.flow import build_program, registered_deep_rules

        program = build_program(modules)
        deep_rules = registered_deep_rules()
    return lint_modules(
        modules,
        rules=rules,
        baseline=baseline,
        program=program,
        deep_rules=deep_rules,
    )
