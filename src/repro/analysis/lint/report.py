"""Report rendering: the machine-readable JSON document (schema
``repro.lint`` — versioned and drift-gated like the bench schemas)
and the human-readable text listing.

The JSON document is deliberately timestamp- and path-free of
anything machine-specific: findings are repo-relative and sorted, so
two clean checkouts produce byte-identical reports — the lint pass
holds itself to the determinism bar it enforces.

Schema v2 (this version) adds a top-level ``deep`` flag and a
``scope`` per rule entry (``module`` for per-file rules, ``program``
for whole-program ones).  `load_lint_report` still accepts v1
documents and normalizes them to the v2 shape, so every consumer sees
one format and old artifacts keep loading.
"""

from __future__ import annotations

from typing import List

from repro.analysis.lint.core import LintResult

LINT_SCHEMA = "repro.lint"
LINT_SCHEMA_VERSION = 2


class LintReportError(ValueError):
    """A lint report document is not one this version can load."""


def lint_json_doc(result: LintResult) -> dict:
    """The versioned machine-readable report for one lint run."""
    rules = {}
    for r in tuple(result.rules) + tuple(result.deep_rules):
        rules[r.id] = {
            "severity": r.severity,
            "title": r.title,
            "scope": getattr(r, "scope", "module"),
        }
    return {
        "schema": LINT_SCHEMA,
        "schema_version": LINT_SCHEMA_VERSION,
        "deep": result.deep,
        "rules": rules,
        "files_scanned": result.files_scanned,
        "counts": {
            "total": len(result.findings),
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
                "baselined": f.baselined,
            }
            for f in result.findings
        ],
        "exit_code": result.exit_code,
    }


def load_lint_report(doc: dict) -> dict:
    """Validate a ``repro.lint`` report (v1 or v2) and return it in the
    v2 shape: v1 documents gain ``deep: False`` and per-rule
    ``scope: "module"``; v2 documents must already carry both."""
    if not isinstance(doc, dict) or doc.get("schema") != LINT_SCHEMA:
        raise LintReportError(
            f"not a {LINT_SCHEMA} document: schema="
            f"{doc.get('schema') if isinstance(doc, dict) else type(doc)!r}"
        )
    version = doc.get("schema_version")
    if version not in (1, LINT_SCHEMA_VERSION):
        raise LintReportError(
            f"unsupported {LINT_SCHEMA} schema_version {version!r} "
            f"(this build loads 1 and {LINT_SCHEMA_VERSION})"
        )
    for key in ("rules", "files_scanned", "counts", "findings", "exit_code"):
        if key not in doc:
            raise LintReportError(f"lint report missing {key!r}")
    out = dict(doc)
    out["schema_version"] = LINT_SCHEMA_VERSION
    if version == 1:
        if "deep" in doc:
            raise LintReportError("v1 lint report must not carry 'deep'")
        out["deep"] = False
        out["rules"] = {
            rid: {**entry, "scope": "module"}
            for rid, entry in doc["rules"].items()
        }
    else:
        if "deep" not in doc:
            raise LintReportError("v2 lint report missing 'deep'")
        for rid, entry in doc["rules"].items():
            if "scope" not in entry:
                raise LintReportError(
                    f"v2 lint report rule {rid!r} missing 'scope'"
                )
    return out


def render_text(result: LintResult) -> str:
    """The terminal listing: one line per active finding, then a
    summary that accounts for every disposition."""
    lines: List[str] = []
    for f in result.active:
        lines.append(f"{f.location()}: {f.rule} [{f.severity}] {f.message}")
    n_active = len(result.active)
    summary = (
        f"repro lint{' --deep' if result.deep else ''}: "
        f"{'ok' if not n_active else f'{n_active} finding(s)'}"
        f" ({result.files_scanned} files"
    )
    if result.deep:
        summary += f", {len(result.deep_rules)} deep rules"
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed"
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    summary += ")"
    lines.append(summary)
    return "\n".join(lines)
