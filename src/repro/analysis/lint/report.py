"""Report rendering: the machine-readable JSON document (schema
``repro.lint`` — versioned and drift-gated like the bench schemas)
and the human-readable text listing.

The JSON document is deliberately timestamp- and path-free of
anything machine-specific: findings are repo-relative and sorted, so
two clean checkouts produce byte-identical reports — the lint pass
holds itself to the determinism bar it enforces.
"""

from __future__ import annotations

from typing import List

from repro.analysis.lint.core import LintResult

LINT_SCHEMA = "repro.lint"
LINT_SCHEMA_VERSION = 1


def lint_json_doc(result: LintResult) -> dict:
    """The versioned machine-readable report for one lint run."""
    return {
        "schema": LINT_SCHEMA,
        "schema_version": LINT_SCHEMA_VERSION,
        "rules": {
            r.id: {"severity": r.severity, "title": r.title}
            for r in result.rules
        },
        "files_scanned": result.files_scanned,
        "counts": {
            "total": len(result.findings),
            "active": len(result.active),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "findings": [
            {
                "rule": f.rule,
                "severity": f.severity,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "suppressed": f.suppressed,
                "baselined": f.baselined,
            }
            for f in result.findings
        ],
        "exit_code": result.exit_code,
    }


def render_text(result: LintResult) -> str:
    """The terminal listing: one line per active finding, then a
    summary that accounts for every disposition."""
    lines: List[str] = []
    for f in result.active:
        lines.append(f"{f.location()}: {f.rule} [{f.severity}] {f.message}")
    n_active = len(result.active)
    summary = (
        f"repro lint: {'ok' if not n_active else f'{n_active} finding(s)'}"
        f" ({result.files_scanned} files"
    )
    if result.suppressed:
        summary += f", {len(result.suppressed)} suppressed"
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    summary += ")"
    lines.append(summary)
    return "\n".join(lines)
