"""Lint-hygiene rules: the suppression machinery polices itself.

ALLOW001 keeps ``# repro: allow[RULE]`` honest.  An allow is a
sanctioned, justified escape hatch — but code moves, and an allow
whose finding no longer fires is a live grant of permission attached
to nothing.  Left in place it will silently re-arm the day someone
reintroduces the pattern two lines away, with the justification for a
different decade's code.

The detection is not a per-module AST walk: whether an allow is *used*
depends on which rules ran and what they found, so it runs as a
post-pass inside `lint_modules` (see ``_unused_allow_findings``) after
all per-module and whole-program findings exist.  This module only
registers the id/severity/title so the registry, report, docs table,
and drift tests treat ALLOW001 like any other rule."""

from __future__ import annotations

from typing import Iterator

from repro.analysis.lint.core import ALLOW_RULE_ID, ModuleInfo, Violation, rule


@rule(
    ALLOW_RULE_ID,
    "unused # repro: allow[...] suppression",
)
def allow001(module: ModuleInfo) -> Iterator[Violation]:
    # findings come from the post-pass in core.lint_modules, which can
    # see every other rule's output; registration here is what opts the
    # pass in and gives the rule its place in the registry
    return iter(())
