"""Observability-plane rules.

OBS001 guards the telemetry memory contract: the metrics plane is
constant-memory by design (`LatencyRecorder` streams into a
log-bucketed histogram; `TimeSeries` keeps constant-size window
aggregates), so an unbounded ``list.append`` into a module-level
container, or into an instance list from a hot recording method,
reintroduces exactly the O(samples) growth the PR that added this
rule removed.  Bounded containers (``deque(maxlen=...)``) and
workload-local result lists are fine; the rule looks only at

* module-level names bound to a list literal (``SAMPLES = []``) that
  any code in the module then ``.append``s to, and
* ``self.<attr>.append(...)`` inside methods conventionally on the
  per-sample path (``record`` / ``observe`` / ``add`` / ``sample`` /
  ``emit``) when ``__init__`` binds that attribute to a list literal.

Sanctioned accumulation sites carry ``# repro: allow[OBS001]``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.lint.core import ModuleInfo, Violation, rule

#: methods assumed to run once per sample/event — the hot path where
#: an instance list grows without bound over a run
HOT_METHODS = frozenset({"record", "observe", "add", "sample", "emit"})


def _list_literal(expr: ast.AST) -> bool:
    return isinstance(expr, ast.List) or (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "list"
    )


def _module_level_lists(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign) and _list_literal(node.value):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    names.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and _list_literal(node.value) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _init_list_attrs(cls: ast.ClassDef) -> Set[str]:
    """Attributes ``__init__`` binds to a list literal (``self.x = []``)."""
    attrs: Set[str] = set()
    for item in cls.body:
        if not (isinstance(item, ast.FunctionDef) and item.name == "__init__"):
            continue
        for node in ast.walk(item):
            value = None
            if isinstance(node, ast.Assign):
                value, targets = node.value, node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            else:
                continue
            if not _list_literal(value):
                continue
            for tgt in targets:
                if (
                    isinstance(tgt, ast.Attribute)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id == "self"
                ):
                    attrs.add(tgt.attr)
    return attrs


def _append_target(node: ast.AST):
    """The ``X`` of an ``X.append(...)`` call expression, else None."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "append"
    ):
        return node.func.value
    return None


@rule(
    "OBS001",
    "unbounded raw-sample accumulation in the telemetry plane",
)
def obs001(module: ModuleInfo) -> Iterator[Violation]:
    globals_ = _module_level_lists(module.tree)
    # module-level lists appended to from anywhere in the module
    if globals_:
        for node in ast.walk(module.tree):
            target = _append_target(node)
            if isinstance(target, ast.Name) and target.id in globals_:
                yield node, (
                    f"append into module-level list {target.id!r}: "
                    "long-lived telemetry containers must be bounded "
                    "(deque(maxlen=...)) or streaming (StreamingHistogram / "
                    "TimeSeries) — raw-sample retention is O(run length)"
                )
    # instance lists appended to from per-sample recording methods
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs = _init_list_attrs(node)
        if not attrs:
            continue
        for item in node.body:
            if not (
                isinstance(item, ast.FunctionDef)
                and item.name in HOT_METHODS
            ):
                continue
            for sub in ast.walk(item):
                target = _append_target(sub)
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr in attrs
                ):
                    yield sub, (
                        f"{node.name}.{item.name} appends every sample to "
                        f"self.{target.attr}: per-sample methods must feed "
                        "a bounded or streaming container, not a raw list "
                        "(see repro.obs.hist.StreamingHistogram)"
                    )
