"""The shipped rule set.  Importing this package registers every rule
with the registry in `repro.analysis.lint.core`; the catalog with
rationale lives in docs/LINT.md.

=========  ==========================================================
``DET001``  wall-clock / entropy outside `repro.sim.rng`
``DET002``  iteration over unordered sets in order-sensitive modules
``LAY001``  kernel imports that bypass `repro.core.ports`
``LAY002``  capability attributes missing from `KernelCapabilities`
``API001``  `RecoveryExhausted` swallowed without trace
``SIM001``  float equality on simulated timestamps
``SIM002``  direct engine construction bypassing `repro.sim.backends`
``OBS001``  unbounded raw-sample accumulation in the telemetry plane
``ALLOW001``  stale `# repro: allow[...]` suppressions
=========  ==========================================================

The whole-program rules (SHARD001, SIM003, NET001, API002) live in
`repro.analysis.flow.rules` and run under ``lint --deep``.
"""

import repro.analysis.lint.rules.determinism  # noqa: F401
import repro.analysis.lint.rules.hygiene  # noqa: F401
import repro.analysis.lint.rules.layering  # noqa: F401
import repro.analysis.lint.rules.obs  # noqa: F401
import repro.analysis.lint.rules.semantics  # noqa: F401
