"""Layering rules: the paper's central claim is that the placement of
the kernel/runtime boundary decides how awkward the language
implementation becomes, and PR 3 reified that boundary as
`repro.core.ports`.  These rules keep the boundary real: every layer
above the kernel packages reaches a backend only through the registry
(LAY001), and capability-conditional behaviour keys only on fields a
backend actually declares (LAY002)."""

from __future__ import annotations

import ast
import dataclasses
from typing import FrozenSet, Iterator

from repro.analysis.lint.core import (
    ModuleInfo,
    Violation,
    imported_modules,
    module_level_imports,
    rule,
)


def _kernel_packages() -> FrozenSet[str]:
    from repro.core.ports import registered_kernels

    return frozenset(registered_kernels())


@rule(
    "LAY001",
    "kernel import that bypasses repro.core.ports",
)
def lay001(module: ModuleInfo) -> Iterator[Violation]:
    """No module outside a kernel's own package may import
    ``repro.<kernel>`` internals at module level.  Two escape hatches,
    both deliberate: per-kernel glue whose filename declares the
    kernel it binds (``repro/linda/soda_adapter.py`` may import
    ``repro.soda``), and function-level lazy imports (the registry's
    factories, the raw baselines) — those run only after a profile
    lookup has chosen the backend.  ``if TYPE_CHECKING:`` blocks are
    module-level too: typing-only cycles still count as layering."""
    kernels = _kernel_packages()
    if module.package and module.package[0] in kernels:
        return  # the kernel's own package
    for node in module_level_imports(module.tree):
        for name in imported_modules(node):
            parts = name.split(".")
            if len(parts) >= 2 and parts[0] == "repro" and parts[1] in kernels:
                kernel = parts[1]
                if kernel in module.path.stem:
                    continue  # declared per-kernel glue (soda_adapter)
                yield node, (
                    f"module-level import of repro.{kernel} crosses the "
                    f"kernel/runtime boundary; reach backends through the "
                    f"repro.core.ports registry"
                )


def _capability_fields() -> FrozenSet[str]:
    from repro.core.ports import KernelCapabilities

    return frozenset(f.name for f in dataclasses.fields(KernelCapabilities))


@rule(
    "LAY002",
    "capability attribute not declared in KernelCapabilities",
)
def lay002(module: ModuleInfo) -> Iterator[Violation]:
    """Every ``<profile>.capabilities.<flag>`` read must name a field
    of the `KernelCapabilities` digest.  A flag that is not declared
    there is a semantic divergence the conformance suite cannot see —
    the boundary leaks exactly the way §6 warns about."""
    declared = _capability_fields()
    for node in ast.walk(module.tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr == "capabilities"
            and node.attr not in declared
        ):
            yield node, (
                f"capability {node.attr!r} is not a KernelCapabilities "
                f"field; declare it in repro.core.ports so the "
                f"conformance suite and digests can see it"
            )
