"""Determinism rules: the invariant that a run is exactly reproducible
from its seed.  All randomness flows through `repro.sim.rng.SimRandom`
and all time through the engine clock; these rules flag the two ways
the invariant silently erodes — ambient entropy/wall-clock (DET001)
and unordered-collection iteration in scheduling-order-sensitive
modules (DET002)."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from repro.analysis.lint.core import (
    ModuleInfo,
    Violation,
    dotted_name,
    imported_modules,
    rule,
)

#: modules whose import anywhere under src/repro (outside sim/rng.py)
#: is itself the hazard — ambient entropy or the host's wall clock
ENTROPY_MODULES = frozenset({"random", "secrets", "uuid"})
CLOCK_MODULES = frozenset({"time", "datetime"})

#: dotted call names that read the wall clock or entropy pool
NONDETERMINISTIC_CALLS = frozenset({
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.thread_time", "time.thread_time_ns",
    "time.sleep",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "date.today", "datetime.date.today",
    "os.urandom",
})

#: the module exempt from DET001 — the one sanctioned entropy source
RNG_MODULE: Tuple[str, ...] = ("sim", "rng")

#: ordering calls whose ``key=id`` makes the order an accident of the
#: allocator (`id()` values differ run to run)
ORDERING_CALLS = frozenset({"sorted", "sort", "min", "max"})


@rule(
    "DET001",
    "wall-clock or entropy outside repro.sim.rng",
)
def det001(module: ModuleInfo) -> Iterator[Violation]:
    """Flag imports of clock/entropy modules, calls that read the host
    clock or entropy pool, and ``key=id`` ordering — anywhere under
    ``src/repro`` except `repro.sim.rng` itself.  Sanctioned uses
    (bench wall-clock measurement, dispatch profiling) carry inline
    ``# repro: allow[DET001]`` suppressions with a justification."""
    if module.package == RNG_MODULE:
        return
    hazard_modules = ENTROPY_MODULES | CLOCK_MODULES
    for node in ast.walk(module.tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            for name in imported_modules(node):
                root = name.split(".")[0]
                if root in hazard_modules:
                    yield node, (
                        f"import of {root!r}: randomness must flow through "
                        f"repro.sim.rng.SimRandom and time through the "
                        f"engine clock"
                    )
        elif isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            root = dotted.split(".")[0]
            if dotted in NONDETERMINISTIC_CALLS or root in ENTROPY_MODULES:
                yield node, (
                    f"call to {dotted}() is nondeterministic; use the "
                    f"engine clock / a seeded SimRandom stream"
                )
            elif (
                (dotted in ORDERING_CALLS or dotted.split(".")[-1] in ("sort",))
                and any(
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id == "id"
                    for kw in node.keywords
                )
            ):
                yield node, (
                    "ordering keyed on id() varies run to run; key on a "
                    "stable attribute instead"
                )


#: modules where iteration order feeds scheduling decisions, so an
#: unordered iteration is a latent same-seed divergence
def _order_sensitive(package: Optional[Tuple[str, ...]]) -> bool:
    if package is None:
        return True  # fixture / ad-hoc file: apply the full rule set
    if package[:1] == ("sim",):
        return True
    if package == ("core", "runtime"):
        return True
    from repro.core.ports import registered_kernels

    return bool(package) and package[0] in registered_kernels()


def _is_set_expr(node: ast.AST) -> bool:
    """Syntactically set-valued: a set literal/comprehension, a call to
    set()/frozenset(), or a set-algebra method result."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "intersection",
            "union",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False


@rule(
    "DET002",
    "unordered set iteration in an order-sensitive module",
)
def det002(module: ModuleInfo) -> Iterator[Violation]:
    """In ``sim/``, ``core/runtime.py`` and the kernel packages, flag
    iteration over a syntactic set expression (``for x in set(...)``,
    set-typed comprehensions, ``list({...})``).  Set iteration order
    depends on hash values — PYTHONHASHSEED for strings, allocator
    addresses for identity-hashed objects — so the schedule it feeds
    diverges between same-seed runs.  Sort it (``sorted(...)``) or
    keep an insertion-ordered structure (dicts are ordered; deques and
    lists are fine)."""
    if not _order_sensitive(module.package):
        return
    msg = (
        "iterating a set here makes scheduling order depend on hash "
        "values; wrap it in sorted(...) or use an ordered collection"
    )
    for node in ast.walk(module.tree):
        if isinstance(node, ast.For) and _is_set_expr(node.iter):
            yield node.iter, msg
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                if _is_set_expr(gen.iter):
                    yield gen.iter, msg
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
            and _is_set_expr(node.args[0])
        ):
            yield node.args[0], msg
