"""Recovery-API and simulated-time semantics rules.

API001 guards the hints discipline (§4.1): `RecoveryExhausted` is the
one signal a runtime-placement backend gives the application that the
network misbehaved, so code that swallows it silently erases the
paper's hints-vs-absolutes distinction — a handler must either
re-raise or record a ``recovery.*`` metric so the loss stays
observable.

SIM001 guards the clock: simulated timestamps are floats accumulated
from cost-model charges, so exact equality is a coincidence of one
cost profile and breaks the moment a charge changes.  Compare with
tolerances or half-open windows.

SIM002 guards the `SimBackend` port: engines are obtained through the
`repro.sim.backends` registry (``make_engine`` / ``sim_backend=``),
never constructed directly.  A direct ``Engine(...)`` pins the code to
the single global heap, so it silently cannot run on the sharded
backends — the exact coupling the registry exists to prevent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.lint.core import ModuleInfo, Violation, dotted_name, rule

EXHAUSTED = "RecoveryExhausted"


def _names_exhausted(expr: ast.AST) -> bool:
    """Does an except-clause type expression mention RecoveryExhausted?"""
    if isinstance(expr, ast.Tuple):
        return any(_names_exhausted(e) for e in expr.elts)
    if isinstance(expr, ast.Name):
        return expr.id == EXHAUSTED
    if isinstance(expr, ast.Attribute):
        return expr.attr == EXHAUSTED
    return False


def _handler_keeps_signal(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or records a recovery.* metric
    (any call carrying a string literal in the ``recovery.`` metric
    namespace counts — ``metrics.count("recovery.failovers")``)."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Constant)
            and isinstance(node.value, str)
            and node.value.startswith("recovery.")
        ):
            return True
    return False


@rule(
    "API001",
    "RecoveryExhausted swallowed without re-raise or recovery.* metric",
)
def api001(module: ModuleInfo) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Try):
            continue
        for handler in node.handlers:
            if handler.type is None or not _names_exhausted(handler.type):
                continue
            if not _handler_keeps_signal(handler):
                yield handler, (
                    "except RecoveryExhausted must re-raise or record a "
                    "recovery.* metric; swallowing it hides the hint the "
                    "runtime-placement stance exists to surface (§4.1)"
                )


#: names that hold simulated instants in this codebase's vocabulary
TIMESTAMP_NAMES = frozenset({"now", "sent_at", "t0", "t1", "deadline"})
TIMESTAMP_SUFFIXES = ("_at", "_t0", "_t1")


def _is_timestamp(expr: ast.AST) -> bool:
    name = None
    if isinstance(expr, ast.Attribute):
        name = expr.attr
    elif isinstance(expr, ast.Name):
        name = expr.id
    if name is None:
        return False
    return name in TIMESTAMP_NAMES or name.endswith(TIMESTAMP_SUFFIXES)


@rule(
    "SIM001",
    "float equality on simulated timestamps",
)
def sim001(module: ModuleInfo) -> Iterator[Violation]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_timestamp(left) or _is_timestamp(right):
                yield node, (
                    "simulated timestamps are accumulated floats; == / != "
                    "on them is cost-model roulette — compare with a "
                    "tolerance or a half-open window"
                )


#: engine classes only the backend registry may construct
ENGINE_CLASS_NAMES = frozenset(
    {"Engine", "ShardedSerialEngine", "ShardedParallelEngine"}
)


@rule(
    "SIM002",
    "direct engine construction bypassing the SimBackend registry",
)
def sim002(module: ModuleInfo) -> Iterator[Violation]:
    # the registry package's factories are the one legitimate caller
    if module.package is not None and module.package[:2] == ("sim", "backends"):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = dotted_name(node.func)
        if name is None:
            continue
        if name.rsplit(".", 1)[-1] in ENGINE_CLASS_NAMES:
            yield node, (
                f"{name}(...) pins this code to one engine "
                "implementation; obtain engines through the "
                "repro.sim.backends registry (make_engine / "
                "sim_backend=) so the workload runs on every backend"
            )
