"""repro.analysis.lint — the determinism & layering static-analysis pass.

The reproduction rests on two invariants nothing else enforces
mechanically: *determinism* (all randomness and time flow through
`repro.sim.rng.SimRandom` and the engine clock, which is what makes
same-seed fault runs bit-identical and every bench comparison
meaningful) and *layering discipline* (runtimes reach kernels only
through `repro.core.ports` and the capabilities each backend
declares).  This package turns both conventions into checked rules,
Eraser-style: an AST visitor core, a rule registry with per-rule
severity, ``# repro: allow[RULE]`` inline suppressions, and a
checked-in baseline (``LINT_BASELINE.json``) for grandfathered
findings.

Entry points::

    python -m repro lint [--deep] [--json OUT|-] [--baseline FILE]
                         [--fix-baseline] [paths...]

    from repro.analysis.lint import run_lint
    result = run_lint()            # defaults to <repo>/src/repro
    result = run_lint(deep=True)   # + whole-program rules (repro.analysis.flow)
    result.exit_code               # 1 iff active findings exist

The rule catalog, suppression workflow and JSON report schema are
documented in docs/LINT.md (kept honest by a doc-drift test).
"""

from repro.analysis.lint.baseline import (
    BASELINE_SCHEMA,
    BASELINE_SCHEMA_VERSION,
    DEFAULT_BASELINE_NAME,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.analysis.lint.core import (
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    get_rule,
    register_rule,
    registered_rules,
    rule,
)
from repro.analysis.lint.report import (
    LINT_SCHEMA,
    LINT_SCHEMA_VERSION,
    LintReportError,
    lint_json_doc,
    load_lint_report,
    render_text,
)
from repro.analysis.lint.runner import (
    LintPathError,
    collect_files,
    lint_repo_root,
    run_lint,
)

# importing the rules package registers the shipped rule set
import repro.analysis.lint.rules  # noqa: F401  (registration side effect)

__all__ = [
    "BASELINE_SCHEMA",
    "BASELINE_SCHEMA_VERSION",
    "BaselineError",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "LINT_SCHEMA",
    "LINT_SCHEMA_VERSION",
    "LintPathError",
    "LintReportError",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "collect_files",
    "get_rule",
    "lint_json_doc",
    "lint_repo_root",
    "load_baseline",
    "load_lint_report",
    "register_rule",
    "registered_rules",
    "render_text",
    "rule",
    "run_lint",
    "write_baseline",
]
