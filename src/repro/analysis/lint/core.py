"""Visitor core of the lint pass: findings, the rule registry, inline
suppressions, and the engine that runs every registered rule over a
set of parsed modules.

A *rule* is a function ``check(module: ModuleInfo) -> iterator of
(node_or_line, message)`` registered under a stable id (``DET001``,
``LAY001``, ...) with a severity and one-line title.  Rules never see
files — the engine parses once and hands every rule the same
`ModuleInfo`, so adding a rule costs one function, not another tree
walk over the repository.

Suppression is per-line and explicit: ``# repro: allow[DET001]`` on
the offending line (or the line directly above it) silences exactly
the named rules there and nowhere else.  Suppressed findings are
still reported (marked ``suppressed``) so the JSON artifact records
every sanctioned escape hatch; only *active* findings gate the exit
code.  Grandfathered findings live in the baseline file instead
(`repro.analysis.lint.baseline`).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: the severities a rule may declare, strongest first
SEVERITIES: Tuple[str, ...] = ("error", "warning")

#: the inline suppression marker: ``repro: allow[DET001,LAY002]``
#: inside a comment; prose may follow the closing bracket (justify
#: the suppression!)
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9_,\s]+)\]")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str  # posix, repo-relative when under the lint root
    line: int
    col: int
    message: str
    #: silenced by an inline ``# repro: allow[rule]`` comment
    suppressed: bool = False
    #: grandfathered by an entry in the baseline file
    baselined: bool = False

    @property
    def active(self) -> bool:
        """Does this finding gate the exit code?"""
        return not (self.suppressed or self.baselined)

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class ModuleInfo:
    """One parsed source file, shared by every rule.

    ``package`` is the module's dotted-path parts relative to the
    ``repro`` package root when the file lives under ``src/repro``
    (``("sim", "rng")`` for ``src/repro/sim/rng.py``) and ``None``
    otherwise.  Rules that scope themselves to parts of the tree
    (order-sensitive modules, kernel packages) treat ``None`` as
    in-scope everywhere, so fixture files and ad-hoc paths get the
    full rule set.
    """

    path: Path
    display: str
    package: Optional[Tuple[str, ...]]
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: Path, root: Optional[Path] = None) -> "ModuleInfo":
        source = path.read_text()
        display = path.as_posix()
        package: Optional[Tuple[str, ...]] = None
        if root is not None:
            try:
                rel = path.resolve().relative_to(root.resolve())
            except ValueError:
                rel = None
            if rel is not None:
                display = rel.as_posix()
                parts = rel.parts
                if parts[:2] == ("src", "repro") and len(parts) > 2:
                    mod = parts[2:-1] + (Path(parts[-1]).stem,)
                    package = tuple(p for p in mod if p != "__init__")
        return cls(
            path=path,
            display=display,
            package=package,
            source=source,
            tree=ast.parse(source, filename=str(path)),
            lines=source.splitlines(),
        )

    def allowed_rules(self, line: int) -> set:
        """Rule ids suppressed at ``line`` (1-based): an allow comment
        on the line itself or on the line directly above it."""
        allowed: set = set()
        for lineno in (line, line - 1):
            if 1 <= lineno <= len(self.lines):
                m = _ALLOW_RE.search(self.lines[lineno - 1])
                if m:
                    allowed.update(
                        tag.strip() for tag in m.group(1).split(",") if tag.strip()
                    )
        return allowed


#: what a rule's check yields: an AST node (location source) or a
#: 1-based line number, plus the human-readable message
Violation = Tuple[Union[ast.AST, int], str]
CheckFn = Callable[[ModuleInfo], Iterator[Violation]]


@dataclass(frozen=True)
class Rule:
    """A registered rule: stable id, severity, title, check function.

    ``scope`` is ``"module"`` for per-file rules; the whole-program
    registry (`repro.analysis.flow.core.DeepRule`) uses ``"program"``.
    """

    id: str
    title: str
    severity: str
    check: CheckFn
    scope: str = "module"

    def run(self, module: ModuleInfo) -> Iterator[Finding]:
        for node_or_line, message in self.check(module):
            if isinstance(node_or_line, int):
                line, col = node_or_line, 0
            else:
                line = getattr(node_or_line, "lineno", 1)
                col = getattr(node_or_line, "col_offset", 0)
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=module.display,
                line=line,
                col=col,
                message=message,
                suppressed=self.id in module.allowed_rules(line),
            )


_RULES: Dict[str, Rule] = {}


def register_rule(r: Rule) -> Rule:
    """Register a rule; ids are unique and severities constrained."""
    if r.id in _RULES:
        raise ValueError(f"lint rule {r.id!r} already registered")
    if r.severity not in SEVERITIES:
        raise ValueError(
            f"lint rule {r.id!r}: severity {r.severity!r} not in {SEVERITIES}"
        )
    _RULES[r.id] = r
    return r


def rule(id: str, title: str, severity: str = "error"):
    """Decorator form of `register_rule` for plain check functions."""

    def deco(fn: CheckFn) -> CheckFn:
        register_rule(Rule(id=id, title=title, severity=severity, check=fn))
        return fn

    return deco


def registered_rules() -> Tuple[Rule, ...]:
    """Every registered rule, sorted by id (stable report order)."""
    return tuple(_RULES[k] for k in sorted(_RULES))


def get_rule(rule_id: str) -> Rule:
    """Look up one rule, with a helpful error listing what exists."""
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ValueError(
            f"unknown lint rule {rule_id!r}; registered rules: "
            f"{', '.join(sorted(_RULES))}"
        ) from None


@dataclass
class LintResult:
    """Everything one lint run produced, in deterministic order.

    ``rules`` holds the per-module rules that ran; ``deep_rules`` the
    whole-program rules when this was a ``--deep`` run (``deep`` is
    True then, and the JSON report says so)."""

    findings: List[Finding]
    files_scanned: int
    rules: Tuple[Rule, ...]
    deep_rules: Tuple = ()
    deep: bool = False

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> List[Finding]:
        return [f for f in self.findings if f.suppressed]

    @property
    def baselined(self) -> List[Finding]:
        return [f for f in self.findings if f.baselined]

    @property
    def exit_code(self) -> int:
        """Non-zero iff unsuppressed, non-baselined findings exist."""
        return 1 if self.active else 0

    def fired(self) -> set:
        """Rule ids with at least one finding (any disposition)."""
        return {f.rule for f in self.findings}


#: rule id of the unused-suppression post-pass (see rules/hygiene.py)
ALLOW_RULE_ID = "ALLOW001"


def _comment_allow_tags(module: ModuleInfo) -> Dict[int, List[str]]:
    """``line -> allow tags`` for allows in *actual comments*.  The
    suppression regex is line-based, so prose in a docstring that
    quotes the allow syntax matches it too; convicting documentation
    of being a stale suppression would be absurd, so ALLOW001 judges
    only COMMENT tokens."""
    import io
    import tokenize

    out: Dict[int, List[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(module.source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            m = _ALLOW_RE.search(tok.string)
            if m:
                out[tok.start[0]] = [
                    t.strip() for t in m.group(1).split(",") if t.strip()
                ]
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # unparseable token stream (the file itself parsed, so this is
        # rare): fall back to the same line regex suppression uses
        for lineno, text in enumerate(module.lines, start=1):
            m = _ALLOW_RE.search(text)
            if m:
                out[lineno] = [
                    t.strip() for t in m.group(1).split(",") if t.strip()
                ]
    return out


def _unused_allow_findings(
    modules: Sequence[ModuleInfo],
    findings: Sequence[Finding],
    ran_ids: set,
    allow_rule: Rule,
) -> Iterator[Finding]:
    """The ALLOW001 post-pass: every ``# repro: allow[RULE]`` tag must
    have silenced an actual finding this run, else the escape hatch has
    rotted.  Only tags naming rules that *ran this invocation* are
    judged — a shallow run never convicts an allow for a deep rule."""
    suppressed_lines: Dict[Tuple[str, str], set] = {}
    for f in findings:
        if f.suppressed:
            suppressed_lines.setdefault((f.path, f.rule), set()).add(f.line)
    for module in modules:
        for lineno, tags in sorted(_comment_allow_tags(module).items()):
            for tag in tags:
                if tag == ALLOW_RULE_ID or tag not in ran_ids:
                    continue
                covered = suppressed_lines.get((module.display, tag), set())
                # an allow on line N silences findings on N and N+1
                if covered & {lineno, lineno + 1}:
                    continue
                yield Finding(
                    rule=ALLOW_RULE_ID,
                    severity=allow_rule.severity,
                    path=module.display,
                    line=lineno,
                    col=0,
                    message=(
                        f"unused suppression: no {tag} finding fires "
                        f"here any more — the code this allow covered "
                        f"has changed; delete the stale "
                        f"`# repro: allow[{tag}]`"
                    ),
                    suppressed=ALLOW_RULE_ID
                    in module.allowed_rules(lineno),
                )


def lint_modules(
    modules: Iterable[ModuleInfo],
    rules: Optional[Sequence[Rule]] = None,
    baseline: Optional[Sequence] = None,
    program=None,
    deep_rules: Optional[Sequence] = None,
) -> LintResult:
    """Run ``rules`` (default: all registered) over parsed modules.

    ``baseline`` entries (see `repro.analysis.lint.baseline`) match
    findings by ``(rule, path)``; matched findings are marked
    ``baselined`` and stop gating the exit code.

    When ``program`` (a `repro.analysis.flow.ProgramGraph` built from
    the same modules) and ``deep_rules`` are given, the whole-program
    rules run too and the result is marked ``deep``.
    """
    module_list = list(modules)
    active_rules = tuple(rules) if rules is not None else registered_rules()
    deep_active = tuple(deep_rules) if deep_rules is not None else ()
    grandfathered = {(e.rule, e.path) for e in (baseline or ())}

    def grandfather(f: Finding) -> Finding:
        if not f.suppressed and (f.rule, f.path) in grandfathered:
            return replace(f, baselined=True)
        return f

    findings: List[Finding] = []
    for module in module_list:
        for r in active_rules:
            findings.extend(grandfather(f) for f in r.run(module))
    if program is not None:
        for dr in deep_active:
            findings.extend(grandfather(f) for f in dr.run(program))
    allow_rule = next(
        (r for r in active_rules if r.id == ALLOW_RULE_ID), None
    )
    if allow_rule is not None:
        ran_ids = {r.id for r in active_rules}
        ran_ids.update(r.id for r in deep_active)
        findings.extend(
            grandfather(f)
            for f in _unused_allow_findings(
                module_list, findings, ran_ids, allow_rule
            )
        )
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return LintResult(
        findings=findings,
        files_scanned=len(module_list),
        rules=active_rules,
        deep_rules=deep_active,
        deep=program is not None and bool(deep_active),
    )


# ----------------------------------------------------------------------
# shared AST helpers used by several rules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for an Attribute/Name chain, None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def module_level_imports(tree: ast.Module) -> Iterator[ast.AST]:
    """Top-level Import/ImportFrom nodes, including ones nested in
    module-level ``if``/``try`` blocks (TYPE_CHECKING guards are
    module-level too — typing-only cycles still count as layering)."""
    todo = list(tree.body)
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.If, ast.Try)):
            todo.extend(ast.iter_child_nodes(node))


def imported_modules(node: ast.AST) -> List[str]:
    """The dotted module names an Import/ImportFrom node binds."""
    if isinstance(node, ast.ImportFrom):
        return [node.module or ""]
    if isinstance(node, ast.Import):
        return [alias.name for alias in node.names]
    return []
