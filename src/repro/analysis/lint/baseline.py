"""The grandfathered-findings baseline (``LINT_BASELINE.json``).

A baseline entry matches findings by ``(rule, path)`` — line numbers
drift with every edit, so pinning them would make the baseline churn
instead of shrink.  Every entry must carry a ``note`` justifying why
the finding is grandfathered rather than fixed; the schema gate in
``benchmarks/check_schema.py`` rejects entries without one (and
entries naming rules that do not exist).  The shipped baseline is
empty: every true positive in the tree was fixed, and the sanctioned
wall-clock uses carry inline ``# repro: allow[...]`` suppressions
instead — the baseline exists for *future* growth, so a refactor that
surfaces a pre-existing finding can land without being held hostage
by it.

``python -m repro lint --fix-baseline`` rewrites the file from the
current active findings, stamping each new entry with a placeholder
note to replace with a real justification (or, better, a fix).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, List, Optional

BASELINE_SCHEMA = "repro.lint-baseline"
BASELINE_SCHEMA_VERSION = 1
DEFAULT_BASELINE_NAME = "LINT_BASELINE.json"

#: what --fix-baseline writes for a freshly grandfathered finding
PLACEHOLDER_NOTE = "grandfathered by --fix-baseline; justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered (rule, path) pair with its justification."""

    rule: str
    path: str
    note: str


class BaselineError(ValueError):
    """The baseline file is malformed (wrong schema, missing notes)."""


def load_baseline(path: str) -> List[BaselineEntry]:
    """Read and validate a baseline file; [] when ``path`` is absent."""
    if not os.path.exists(path):
        return []
    with open(path) as fh:
        doc = json.load(fh)
    if doc.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"{path}: schema {doc.get('schema')!r} != {BASELINE_SCHEMA!r}"
        )
    if doc.get("schema_version") != BASELINE_SCHEMA_VERSION:
        raise BaselineError(
            f"{path}: schema_version {doc.get('schema_version')!r} != "
            f"{BASELINE_SCHEMA_VERSION}"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: 'entries' must be a list")
    out: List[BaselineEntry] = []
    for i, e in enumerate(entries):
        if not isinstance(e, dict):
            raise BaselineError(f"{path}: entry {i} is not an object")
        rule = e.get("rule")
        rel = e.get("path")
        note = e.get("note")
        if not rule or not rel:
            raise BaselineError(f"{path}: entry {i} needs 'rule' and 'path'")
        if not note or not str(note).strip():
            raise BaselineError(
                f"{path}: entry {i} ({rule} {rel}) has no justifying 'note'"
            )
        out.append(BaselineEntry(rule=str(rule), path=str(rel), note=str(note)))
    return out


def write_baseline(path: str, findings: Iterable, keep: Optional[dict] = None) -> dict:
    """Rewrite the baseline from ``findings``.

    Inline-suppressed findings are excluded (they are already
    justified where they fire); previously-baselined findings that
    still fire are kept so a refresh never silently un-grandfathers.
    ``keep`` maps ``(rule, path)`` to an existing note so a refreshed
    baseline does not lose justifications already written.  Returns
    the document written.
    """
    keep = keep or {}
    seen = set()
    entries = []
    for f in findings:
        key = (f.rule, f.path)
        if key in seen or f.suppressed:
            continue
        seen.add(key)
        entries.append({
            "rule": f.rule,
            "path": f.path,
            "note": keep.get(key, PLACEHOLDER_NOTE),
        })
    entries.sort(key=lambda e: (e["path"], e["rule"]))
    doc = {
        "schema": BASELINE_SCHEMA,
        "schema_version": BASELINE_SCHEMA_VERSION,
        "note": (
            "Grandfathered lint findings (matched by rule+path). Every "
            "entry must justify itself; the goal is an empty list. See "
            "docs/LINT.md."
        ),
        "entries": entries,
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return doc
