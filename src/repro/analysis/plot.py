"""ASCII line plots for benchmark output.

The paper's footnote-2 comparison is really a figure (two latency
curves crossing); `ascii_plot` renders such series in plain text so the
benches' saved artifacts show the *shape* at a glance, terminal-first.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: glyphs assigned to series, in order
MARKS = "ox+*#@"


def ascii_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (x, y) series on one axis grid.

    Points are nearest-cell plotted; collisions show the later series'
    mark.  Returns a multi-line string with axes, tick labels and a
    legend.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]

    def cell(x: float, y: float) -> Tuple[int, int]:
        cx = round((x - x_lo) / (x_hi - x_lo) * (width - 1))
        cy = round((y - y_lo) / (y_hi - y_lo) * (height - 1))
        return cx, height - 1 - cy

    for (name, pts), mark in zip(series.items(), MARKS):
        # connect consecutive points with linear interpolation so the
        # curve shape reads even with few samples
        pts = sorted(pts)
        for (x0, y0), (x1, y1) in zip(pts, pts[1:]):
            steps = max(
                abs(cell(x1, y1)[0] - cell(x0, y0)[0]),
                abs(cell(x1, y1)[1] - cell(x0, y0)[1]),
                1,
            )
            for s in range(steps + 1):
                f = s / steps
                cx, cy = cell(x0 + (x1 - x0) * f, y0 + (y1 - y0) * f)
                grid[cy][cx] = mark
        for x, y in pts:  # points overwrite interpolation
            cx, cy = cell(x, y)
            grid[cy][cx] = mark

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    y_hi_s, y_lo_s = f"{y_hi:.4g}", f"{y_lo:.4g}"
    margin = max(len(y_hi_s), len(y_lo_s)) + 1
    for i, row in enumerate(grid):
        if i == 0:
            label = y_hi_s
        elif i == height - 1:
            label = y_lo_s
        else:
            label = ""
        lines.append(label.rjust(margin) + " |" + "".join(row))
    lines.append(" " * margin + " +" + "-" * width)
    x_lo_s, x_hi_s = f"{x_lo:.4g}", f"{x_hi:.4g}"
    axis = x_lo_s + x_hi_s.rjust(width - len(x_lo_s))
    lines.append(" " * (margin + 2) + axis)
    if x_label:
        lines.append(" " * (margin + 2) + x_label.center(width))
    legend = "   ".join(
        f"{mark} {name}" for (name, _), mark in zip(series.items(), MARKS)
    )
    lines.append(" " * (margin + 2) + legend)
    return "\n".join(lines)
