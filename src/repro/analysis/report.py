"""Table formatting for the benchmark harness.

Every bench prints a table with the paper's figure next to the
measured one so the shape comparison is inspectable in the bench
output; EXPERIMENTS.md records the same rows.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

Cell = Union[str, int, float, None]


def _fmt(cell: Cell, width: int = 0) -> str:
    if cell is None:
        s = "—"
    elif isinstance(cell, float):
        if cell != cell:  # NaN
            s = "—"
        elif abs(cell) >= 1000 or (cell and abs(cell) < 0.01):
            s = f"{cell:.3g}"
        else:
            s = f"{cell:.2f}".rstrip("0").rstrip(".")
    else:
        s = str(cell)
    return s.rjust(width) if width else s


class Table:
    """A fixed-column text table."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []
        #: unformatted cells, kept so tables export losslessly to JSON
        self.raw_rows: List[List[Cell]] = []

    def add(self, *cells: Cell) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells for {len(self.columns)} columns"
            )
        # report tables hold one row per rendered line, not one per
        # sample — bounded by the report, so raw retention is fine
        self.raw_rows.append(list(cells))  # repro: allow[OBS001]
        self.rows.append([_fmt(c) for c in cells])  # repro: allow[OBS001]

    def to_dict(self) -> dict:
        """The table as a JSON-safe dict: ``{"title", "columns",
        "rows"}`` with raw (unformatted) cells; NaN becomes null."""
        from repro.obs.jsonl import json_safe

        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [json_safe(row) for row in self.raw_rows],
        }

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "  "
        lines = [self.title, "=" * len(self.title)]
        lines.append(sep.join(c.ljust(w) for c, w in zip(self.columns, widths)))
        lines.append(sep.join("-" * w for w in widths))
        for row in self.rows:
            lines.append(sep.join(c.rjust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print()
        print(self.render())
        print()


def paper_vs_measured(
    title: str,
    rows: Iterable[Sequence[Cell]],
    extra_columns: Sequence[str] = (),
) -> Table:
    """A table whose first three columns are (quantity, paper,
    measured); benches append match commentary in extra columns."""
    t = Table(title, ["quantity", "paper", "measured", *extra_columns])
    for row in rows:
        t.add(*row)
    return t
