"""Measurement: cost models, code-complexity accounting, report tables."""

from repro.analysis.costmodel import (
    CostModel,
    RuntimeCosts,
    CharlotteCosts,
    SodaCosts,
    ChrysalisCosts,
)

__all__ = [
    "CostModel",
    "RuntimeCosts",
    "CharlotteCosts",
    "SodaCosts",
    "ChrysalisCosts",
]
