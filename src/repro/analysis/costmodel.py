"""Hardware/kernel cost models calibrated to the paper's measurements.

This module is the reproduction's *substitution* for the 1986 testbeds
(see DESIGN.md §4).  Each kernel charges simulated CPU and delivery
time using the constants here; the constants are **fitted to the
paper's end-to-end numbers**, and everything else — message counts,
protocol overheads, crossovers, ratios — *emerges* from executing the
protocols against them.

Calibration targets
-------------------
Charlotte (§3.3):
    raw kernel-call RPC: 55 ms (no data), 60 ms (1000 B each way)
    LYNX RPC:            57 ms (no data), 65 ms (1000 B each way)
SODA (§4.3 + footnote 2):
    ~3x faster than Charlotte for small messages; break-even between
    1 KB and 2 KB (SODA's 1 Mbit/s CSMA bus vs Crystal's 10 Mbit ring)
Chrysalis (§5.3):
    LYNX RPC: 2.4 ms (no data), 4.6 ms (1000 B each way); planned
    tuning "likely to improve both figures by 30 to 40%"

Derivations (kept here so the numbers are auditable):

* Charlotte: round trip = 2 kernel messages.  With syscall cost c and
  per-message kernel fixed cost F, the raw critical path is
  ``(2c + F + w) + (2c + F + w) + c`` where w is ring transit
  (access 0.05 ms); solving 2F + 5c + 2w = 55 with c = 0.5 gives
  F ≈ 26.2.  Slope: 2*(ring 0.0008 + kernel k_b) = 0.005 ms/B
  -> k_b = 0.0017 ms/B.
* SODA: per message ≈ request syscall + bus + interrupt + accept
  syscall + transfer + completion interrupt ≈ 1.8 + T; two messages
  at ~57/3 total give T ≈ 6.35 (fitted).  Slope: bus 0.008 + transfer
  0.0067 = 0.0147 ms/B per message, which puts the break-even with
  Charlotte near 1.55 KB — inside the paper's 1–2 KB window.
* Chrysalis: per direction = gather + flag + enqueue(+post) +
  dequeue + scatter + dispatch ≈ 1.2 ms (constants fitted against the
  executed protocol); copies through the switch at 0.61 us/B each way
  give the 2.2 ms slope for 1000 B both directions.

The exact end-to-end figures are asserted (with tolerance) by
``tests/analysis/test_calibration.py`` and printed alongside the paper
values by benches E1/E4/E5.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional


@dataclass(frozen=True)
class RuntimeCosts:
    """Costs of the language run-time package itself: the "efforts on
    the part of the run-time package to gather and scatter parameters,
    block and unblock coroutines, establish default exception handlers,
    enforce flow control, perform type checking, update tables for
    enclosed links" (§3.3)."""

    #: fixed cost to gather (marshal) one message
    gather_fixed_ms: float
    #: fixed cost to scatter (unmarshal) one message
    scatter_fixed_ms: float
    #: per payload byte, each of gather and scatter
    per_byte_ms: float
    #: per block-point dispatch (choose queue, switch coroutine)
    dispatch_ms: float
    #: per enclosed link end (validity check + table update, §3.3)
    per_enclosure_ms: float


@dataclass(frozen=True)
class CharlotteCosts:
    """Charlotte kernel (§3.1) on Crystal hardware."""

    #: CPU cost of MakeLink/Destroy/Send/Receive/Cancel (bounded calls)
    syscall_ms: float = 0.5
    #: CPU cost of a Wait call returning a completion
    wait_syscall_ms: float = 0.5
    #: kernel processing per message (matching, buffering, protection
    #: checks — "Charlotte wastes time by checking these things itself")
    kernel_msg_fixed_ms: float = 26.2
    #: kernel copy cost per byte (both nodes combined)
    kernel_per_byte_ms: float = 0.0017
    #: each inter-kernel message of the 3-party link-move agreement
    move_protocol_msg_ms: float = 1.5
    makelink_ms: float = 1.0
    destroy_ms: float = 1.0
    #: token ring parameters (10 Mbit/s Proteon, §3.1)
    ring_rate_mbit: float = 10.0
    ring_access_ms: float = 0.05
    runtime: RuntimeCosts = field(
        default_factory=lambda: RuntimeCosts(
            gather_fixed_ms=0.5,
            scatter_fixed_ms=0.35,
            per_byte_ms=0.00075,
            dispatch_ms=0.15,
            per_enclosure_ms=0.2,
        )
    )


@dataclass(frozen=True)
class SodaCosts:
    """SODA kernel (§4.1) on PDP-11/23s with a 1 Mbit/s CSMA bus."""

    #: CPU cost of posting a request (put/get/signal/exchange)
    request_syscall_ms: float = 0.3
    #: CPU cost of an accept call
    accept_syscall_ms: float = 0.3
    #: kernel-processor work to complete an accepted transfer
    transfer_fixed_ms: float = 6.35
    #: per byte moved in a completed transfer (kernel copies; the bus
    #: serialisation is charged separately by the CSMABus model)
    transfer_per_byte_ms: float = 0.0067
    #: delivering a software interrupt to the client processor
    interrupt_ms: float = 0.2
    advertise_ms: float = 0.2
    new_name_ms: float = 0.1
    #: kernel retry period for requests whose target is not accepting
    retry_period_ms: float = 20.0
    #: how long a requester waits before concluding its hint is bad
    hint_timeout_ms: float = 120.0
    #: per discover broadcast attempt
    discover_cost_ms: float = 1.0
    #: wait before concluding a discover got no answer
    discover_timeout_ms: float = 50.0
    #: broadcast attempts before falling back to freeze (§4.2)
    discover_attempts: int = 3
    #: outstanding-request limit per ordered process pair (§4.2.1:
    #: "a limit of half a dozen or so is unlikely to be exceeded")
    pair_request_limit: int = 6
    #: CSMA bus parameters (1 Mbit/s, §4.3)
    bus_rate_mbit: float = 1.0
    bus_access_ms: float = 0.2
    bus_backoff_ms: float = 0.4
    runtime: RuntimeCosts = field(
        default_factory=lambda: RuntimeCosts(
            gather_fixed_ms=0.5,
            scatter_fixed_ms=0.35,
            per_byte_ms=0.00075,
            dispatch_ms=0.15,
            per_enclosure_ms=0.2,
        )
    )


@dataclass(frozen=True)
class ChrysalisCosts:
    """Chrysalis primitives (§5.1), many microcoded, on the Butterfly."""

    dq_enqueue_ms: float = 0.214
    dq_dequeue_ms: float = 0.286
    event_post_ms: float = 0.143
    event_wait_ms: float = 0.071
    #: atomic 16-bit flag op: "extremely inexpensive" (§5.2)
    flag_op_ms: float = 0.01
    #: non-atomic write of a >16-bit quantity (dual queue name, §5.2)
    wide_write_ms: float = 0.02
    make_object_ms: float = 0.5
    map_ms: float = 0.3
    unmap_ms: float = 0.2
    make_event_ms: float = 0.2
    make_queue_ms: float = 0.3
    #: Butterfly switch (shared-memory interconnect)
    switch_per_byte_us: float = 0.61
    switch_hop_us: float = 4.0
    #: "code tuning and protocol optimizations now under development are
    #: likely to improve both figures by 30 to 40%" — the tuned profile
    #: scales fixed CPU costs by this factor (E5 ablation)
    tuned_factor: float = 0.65
    runtime: RuntimeCosts = field(
        default_factory=lambda: RuntimeCosts(
            gather_fixed_ms=0.4,
            scatter_fixed_ms=0.343,
            per_byte_ms=0.0,  # copies are charged by the switch model
            dispatch_ms=0.257,
            per_enclosure_ms=0.08,
        )
    )

    def tuned(self) -> "ChrysalisCosts":
        """The §5.3 "30 to 40%" tuned variant: fixed CPU costs scaled."""
        f = self.tuned_factor
        rt = self.runtime
        return replace(
            self,
            dq_enqueue_ms=self.dq_enqueue_ms * f,
            dq_dequeue_ms=self.dq_dequeue_ms * f,
            event_post_ms=self.event_post_ms * f,
            event_wait_ms=self.event_wait_ms * f,
            runtime=RuntimeCosts(
                gather_fixed_ms=rt.gather_fixed_ms * f,
                scatter_fixed_ms=rt.scatter_fixed_ms * f,
                per_byte_ms=rt.per_byte_ms,
                dispatch_ms=rt.dispatch_ms * f,
                per_enclosure_ms=rt.per_enclosure_ms * f,
            ),
        )


@dataclass(frozen=True)
class IdealCosts:
    """The ``ideal`` reference backend: no protocol, no interconnect —
    just the irreducible runtime work plus a token in-memory handoff.
    Deliberately *not* calibrated to any paper system; it is the lower
    bound the three real kernels are compared against in E1/E13, and it
    tracks *this implementation's* hot-path cost.  Recalibrated in
    PR 6 after the lazy-decode/slots/timer-wheel pass shrank the real
    receive path (docs/PERFORMANCE.md has the before/after)."""

    #: handing a message to the peer's mailbox (one pointer move)
    delivery_ms: float = 0.015
    runtime: RuntimeCosts = field(
        default_factory=lambda: RuntimeCosts(
            gather_fixed_ms=0.006,
            # scatter is the lazy-decode leg: the receive path no
            # longer walks the body eagerly
            scatter_fixed_ms=0.006,
            per_byte_ms=0.0,
            dispatch_ms=0.003,
            per_enclosure_ms=0.003,
        )
    )


@dataclass(frozen=True)
class CostModel:
    """Bundle of the calibrated profiles; clusters pick their own."""

    charlotte: CharlotteCosts = field(default_factory=CharlotteCosts)
    soda: SodaCosts = field(default_factory=SodaCosts)
    chrysalis: ChrysalisCosts = field(default_factory=ChrysalisCosts)
    ideal: IdealCosts = field(default_factory=IdealCosts)

    @staticmethod
    def default() -> "CostModel":
        return CostModel()


#: Paper-reported figures, for calibration tests and bench tables.
PAPER = {
    "charlotte.raw.rpc0": 55.0,
    "charlotte.raw.rpc1000": 60.0,
    "charlotte.lynx.rpc0": 57.0,
    "charlotte.lynx.rpc1000": 65.0,
    "chrysalis.lynx.rpc0": 2.4,
    "chrysalis.lynx.rpc1000": 4.6,
    "soda.small_msg_speedup_vs_charlotte": 3.0,
    "soda.breakeven_bytes.low": 1024.0,
    "soda.breakeven_bytes.high": 2048.0,
    "charlotte.runtime.loc": 4200.0,  # 4000 C + 200 asm
    "charlotte.runtime.comm_share": 0.45,
    "chrysalis.runtime.loc": 3800.0,  # 3600 C + 200 asm
    "reply_ack_traffic_increase": 0.5,
    "chrysalis.tuning_improvement.low": 0.30,
    "chrysalis.tuning_improvement.high": 0.40,
}
