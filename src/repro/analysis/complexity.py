"""Code-size and complexity accounting for the three runtime packages.

Paper §3.3: the Charlotte runtime was "just over 4000 lines of C and
200 lines of VAX assembler, compiling to about 21K of object code ...
approximately 45% is devoted to the communication routines that
interact with the Charlotte kernel, including perhaps 5K for unwanted
messages and multiple enclosures."  §5.3: the Chrysalis runtime was
"approximately 3600 lines of C and 200 lines of assembler, compiling
to 15 or 16K ... appreciably smaller".  §4.3 predicts SODA would save
"on the order of 4K bytes" of special-case code.

We cannot compare Python lines to 1986 C lines in absolute terms; what
*is* comparable — and what the paper's claim is really about — is the
**relative** size and branchiness of the three kernel-specific runtime
halves, and what fraction of the Charlotte package exists only to
handle unwanted messages and multiple enclosures.  This module measures
those quantities by static analysis (AST) of the actual source.
"""

from __future__ import annotations

import ast
import importlib
import inspect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence

import repro.core.runtime
from repro.core.ports import kernel_profile, registered_kernels

#: functions/classes of the Charlotte runtime that exist solely for the
#: §3.2.1 unwanted-message machinery and the §3.2.2 multi-enclosure
#: protocol — the "perhaps 5K" of §3.3.  Curated by reading the module;
#: `test_complexity.py` asserts the names stay in sync with the source.
CHARLOTTE_SPECIAL_CASES = frozenset(
    {
        "_bounce_unwanted",
        "_recv_bounce",
        "_recv_allow",
        "_resend",
        "_recv_goahead",
        "_recv_enc",
        "_packetise",
        "_PartialIn",
        "_recv_ack",
    }
)


def runtime_modules(kind: str) -> List:
    """The imported module set making up one kernel-specific runtime
    half — read from the backend's `KernelProfile` so this analyzer
    never names a kernel package itself (and automatically covers new
    backends such as ``ideal``)."""
    profile = kernel_profile(kind)
    return [importlib.import_module(m) for m in profile.runtime_modules]


#: the kernel-independent half shared by every backend (§2's semantics)
COMMON_MODULES = [repro.core.runtime]


@dataclass
class UnitStats:
    """Logical size of one function or class."""

    name: str
    logical_loc: int
    branches: int


@dataclass
class ModuleStats:
    module: str
    logical_loc: int
    branches: int
    units: Dict[str, UnitStats] = field(default_factory=dict)


@dataclass
class PackageStats:
    kind: str
    kernel_specific_loc: int
    kernel_specific_branches: int
    common_loc: int
    common_branches: int
    modules: List[ModuleStats] = field(default_factory=list)

    @property
    def total_loc(self) -> int:
        return self.kernel_specific_loc + self.common_loc

    @property
    def total_branches(self) -> int:
        return self.kernel_specific_branches + self.common_branches

    @property
    def kernel_share(self) -> float:
        """Fraction of the package that is kernel-specific — the analog
        of §3.3's "devoted to the communication routines that interact
        with the ... kernel"."""
        return self.kernel_specific_loc / self.total_loc


_BRANCH_NODES = (
    ast.If,
    ast.For,
    ast.While,
    ast.Try,
    ast.ExceptHandler,
    ast.BoolOp,
    ast.IfExp,
    ast.comprehension,
)


def _logical_lines(node: ast.AST) -> int:
    """Count statement nodes — a whitespace/comment/docstring-insensitive
    'logical lines of code' measure."""
    count = 0
    for sub in ast.walk(node):
        if isinstance(sub, ast.stmt):
            # skip bare docstring expressions
            if isinstance(sub, ast.Expr) and isinstance(sub.value, ast.Constant):
                continue
            count += 1
    return count


def _branches(node: ast.AST) -> int:
    return sum(1 for sub in ast.walk(node) if isinstance(sub, _BRANCH_NODES))


def analyze_module(module) -> ModuleStats:
    src = inspect.getsource(module)
    tree = ast.parse(src)
    stats = ModuleStats(
        module=module.__name__,
        logical_loc=_logical_lines(tree),
        branches=_branches(tree),
    )
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            stats.units[node.name] = UnitStats(
                node.name, _logical_lines(node), _branches(node)
            )
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        stats.units[sub.name] = UnitStats(
                            sub.name, _logical_lines(sub), _branches(sub)
                        )
    return stats


def runtime_package_stats(kind: str) -> PackageStats:
    """Size up one kernel's LYNX runtime package: its kernel-specific
    modules plus the shared kernel-independent half."""
    modules = [analyze_module(m) for m in runtime_modules(kind)]
    common = [analyze_module(m) for m in COMMON_MODULES]
    return PackageStats(
        kind=kind,
        kernel_specific_loc=sum(m.logical_loc for m in modules),
        kernel_specific_branches=sum(m.branches for m in modules),
        common_loc=sum(m.logical_loc for m in common),
        common_branches=sum(m.branches for m in common),
        modules=modules,
    )


def charlotte_special_case_stats() -> UnitStats:
    """Aggregate size of the retry/forbid/allow + goahead/enc machinery
    in the Charlotte runtime — §3.3's "perhaps 5K for unwanted messages
    and multiple enclosures"."""
    (mod,) = [
        m for m in map(analyze_module, runtime_modules("charlotte"))
        if m.module == "repro.charlotte.runtime"
    ]
    loc = 0
    branches = 0
    for name in CHARLOTTE_SPECIAL_CASES:
        unit = mod.units.get(name)
        if unit is None:
            raise KeyError(
                f"special-case unit {name!r} vanished from charlotte.runtime; "
                "update CHARLOTTE_SPECIAL_CASES"
            )
        loc += unit.logical_loc
        branches += unit.branches
    return UnitStats("charlotte-special-cases", loc, branches)


def comparison() -> Dict[str, Dict[str, float]]:
    """The E2 table: per kernel, package sizes and ratios, with the
    paper's C figures alongside."""
    out: Dict[str, Dict[str, float]] = {}
    for kind in registered_kernels():
        stats = runtime_package_stats(kind)
        out[kind] = {
            "kernel_specific_loc": stats.kernel_specific_loc,
            "kernel_specific_branches": stats.kernel_specific_branches,
            "total_loc": stats.total_loc,
            "kernel_share": stats.kernel_share,
        }
    special = charlotte_special_case_stats()
    out["charlotte"]["special_case_loc"] = special.logical_loc
    out["charlotte"]["special_case_share_of_specific"] = (
        special.logical_loc / out["charlotte"]["kernel_specific_loc"]
    )
    return out
