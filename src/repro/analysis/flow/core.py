"""Deep (whole-program) rule registry.

A *deep rule* is the interprocedural counterpart of
`repro.analysis.lint.core.Rule`: instead of one module at a time, its
check receives the linked `ProgramGraph` and yields ``(module,
node_or_line, message)`` triples — the module locates the finding, so
one rule can report across files in a single pass.

Deep rules share everything else with the shallow registry: the same
`Finding` type, the same per-line ``# repro: allow[RULE]`` suppression
(resolved against the module the finding lands in), the same baseline
matching, and the same report/severity vocabulary.  They live in a
separate registry keyed off ``scope="program"`` so ``python -m repro
lint`` stays fast by default and ``--deep`` opts into the linked pass.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Tuple, Union

from repro.analysis.lint.core import SEVERITIES, Finding

from .graph import ModuleGraph, ProgramGraph

__all__ = [
    "DeepRule",
    "DeepViolation",
    "deep_rule",
    "get_deep_rule",
    "registered_deep_rules",
]

#: what a deep check yields: the module the finding belongs to, an AST
#: node or 1-based line locating it, and the message
DeepViolation = Tuple[ModuleGraph, Union[ast.AST, int], str]
DeepCheckFn = Callable[[ProgramGraph], Iterator[DeepViolation]]


@dataclass(frozen=True)
class DeepRule:
    """A registered whole-program rule."""

    id: str
    title: str
    severity: str
    check: DeepCheckFn
    scope: str = "program"

    def run(self, program: ProgramGraph) -> Iterator[Finding]:
        for module, node_or_line, message in self.check(program):
            if isinstance(node_or_line, int):
                line, col = node_or_line, 0
            else:
                line = getattr(node_or_line, "lineno", 1)
                col = getattr(node_or_line, "col_offset", 0)
            info = module.info
            yield Finding(
                rule=self.id,
                severity=self.severity,
                path=info.display,
                line=line,
                col=col,
                message=message,
                suppressed=self.id in info.allowed_rules(line),
            )


_DEEP_RULES: Dict[str, DeepRule] = {}


def register_deep_rule(r: DeepRule) -> DeepRule:
    if r.id in _DEEP_RULES:
        raise ValueError(f"deep lint rule {r.id!r} already registered")
    if r.severity not in SEVERITIES:
        raise ValueError(
            f"deep lint rule {r.id!r}: severity {r.severity!r} "
            f"not in {SEVERITIES}"
        )
    _DEEP_RULES[r.id] = r
    return r


def deep_rule(id: str, title: str, severity: str = "error"):
    """Decorator form of `register_deep_rule`."""

    def deco(fn: DeepCheckFn) -> DeepCheckFn:
        register_deep_rule(
            DeepRule(id=id, title=title, severity=severity, check=fn)
        )
        return fn

    return deco


def registered_deep_rules() -> Tuple[DeepRule, ...]:
    """Every registered deep rule, sorted by id."""
    import repro.analysis.flow.rules  # noqa: F401  (registers on import)

    return tuple(_DEEP_RULES[k] for k in sorted(_DEEP_RULES))


def get_deep_rule(rule_id: str) -> DeepRule:
    import repro.analysis.flow.rules  # noqa: F401

    try:
        return _DEEP_RULES[rule_id]
    except KeyError:
        raise ValueError(
            f"unknown deep lint rule {rule_id!r}; registered: "
            f"{', '.join(sorted(_DEEP_RULES))}"
        ) from None
