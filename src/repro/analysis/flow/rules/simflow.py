"""SIM003 — static lookahead-violation check for cross-shard posts.

The sharded-parallel backend is only deterministic because of the
Chandy–Misra–Bryant contract: no cross-shard event may be scheduled
closer than the conservative lookahead window, and the window is fed
by `Engine.note_link_floor` from every network model's
``min_latency_ms``.  The runtime enforces it (``Engine.post`` raises),
but only on the code paths a given seed happens to execute.  This rule
proves violations *statically*: it folds each post site's delay
expression to a lower bound and compares it against the smallest link
floor any registered network model can configure.

Floor discovery is itself static: a *floor class* is any class whose
``__init__`` calls ``_register_floor`` (the `NetworkModel` protocol)
and that defines ``min_latency_ms``; its floor is the property's
return expression folded against the ``__init__`` parameter defaults.
The engine's own ``DEFAULT_LOOKAHEAD_MS`` joins the candidate set, and
the *minimum* over all candidates is the bar — a delay below even the
smallest configurable floor can never be legal, whatever topology the
workload picks.  Unfoldable delays (runtime-computed, no provable
bound) never fire: precision over recall, as everywhere in this layer.

Post sites are ``<anything>.post(shard, delay, ...)`` calls plus the
self-bound alias idiom (``self._post = eng.post`` in ``__init__``,
``self._post(target, delay, ...)`` on the hot path) that the scale
workload uses to skip attribute lookups.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from ..core import DeepViolation, deep_rule
from ..fold import fold_lower_bound
from ..graph import ClassInfo, FunctionInfo, ModuleGraph, ProgramGraph

#: where the engine's fallback lookahead constant lives
_BACKENDS_MODULE = "repro.sim.backends"
_DEFAULT_LOOKAHEAD = "DEFAULT_LOOKAHEAD_MS"


def _init_defaults(cls: ClassInfo) -> Dict[str, ast.AST]:
    """``param name -> default expression`` for the class ``__init__``."""
    init = cls.methods.get("__init__")
    if init is None:
        return {}
    args = init.node.args
    env: Dict[str, ast.AST] = {}
    positional = list(args.posonlyargs) + list(args.args)
    for arg, default in zip(
        positional[len(positional) - len(args.defaults):], args.defaults
    ):
        env[arg.arg] = default
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is not None:
            env[arg.arg] = default
    return env


def _floor_return(cls: ClassInfo) -> Optional[ast.AST]:
    meth = cls.methods.get("min_latency_ms")
    if meth is None:
        return None
    for sub in ast.walk(meth.node):
        if isinstance(sub, ast.Return) and sub.value is not None:
            return sub.value
    return None


def _registers_floor(cls: ClassInfo) -> bool:
    init = cls.methods.get("__init__")
    if init is None:
        return False
    for sub in ast.walk(init.node):
        if isinstance(sub, ast.Call):
            fn = sub.func
            if (
                isinstance(fn, ast.Attribute) and fn.attr == "_register_floor"
            ) or (isinstance(fn, ast.Name) and fn.id == "_register_floor"):
                return True
    return False


def link_floors(
    program: ProgramGraph,
) -> List[Tuple[ClassInfo, float]]:
    """Every statically discoverable (floor class, default floor ms)."""
    floors: List[Tuple[ClassInfo, float]] = []
    for mod in program.iter_modules():
        for cname in sorted(mod.classes):
            cls = mod.classes[cname]
            if not _registers_floor(cls):
                continue
            ret = _floor_return(cls)
            if ret is None:
                continue
            value = fold_lower_bound(
                program, mod, ret, cls, env=_init_defaults(cls)
            )
            if value is not None and value > 0:
                floors.append((cls, value))
    return floors


def smallest_floor(program: ProgramGraph) -> Optional[Tuple[str, float]]:
    """The smallest candidate lookahead floor and where it came from:
    the min over every floor class default and the engine fallback."""
    candidates: List[Tuple[str, float]] = []
    for cls, value in link_floors(program):
        candidates.append((f"{cls.module.name}.{cls.name}", value))
    backends = program.modules.get(_BACKENDS_MODULE)
    if backends is not None and _DEFAULT_LOOKAHEAD in backends.constants:
        value = fold_lower_bound(
            program, backends, backends.constants[_DEFAULT_LOOKAHEAD]
        )
        if value is not None and value > 0:
            candidates.append(
                (f"{_BACKENDS_MODULE}.{_DEFAULT_LOOKAHEAD}", value)
            )
    if not candidates:
        return None
    return min(candidates, key=lambda c: (c[1], c[0]))


def _is_post_alias(cls: Optional[ClassInfo], name: str) -> bool:
    """``self.NAME`` where ``__init__`` bound NAME to ``<x>.post``."""
    if cls is None:
        return False
    bound = cls.self_bindings.get(name)
    return isinstance(bound, ast.Attribute) and bound.attr == "post"


def _delay_expr(call: ast.Call) -> Optional[ast.AST]:
    """The delay argument of ``post(shard, delay, ...)``."""
    if len(call.args) >= 2:
        return call.args[1]
    for kw in call.keywords:
        if kw.arg in ("delay", "delay_ms"):
            return kw.value
    return None


def _local_env(func: FunctionInfo) -> Dict[str, ast.AST]:
    """Single-assignment locals: ``name -> value expression`` for
    names assigned exactly once (plain ``x = expr``).  This is what
    folds the hot-path idiom ``delay = BASE_MS + jitter;
    post(t, delay, ...)`` — a name assigned twice is ambiguous and
    stays unfoldable."""
    counts: Dict[str, int] = {}
    values: Dict[str, ast.AST] = {}
    for sub in ast.walk(func.node):
        if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
            t = sub.targets[0]
            if isinstance(t, ast.Name):
                counts[t.id] = counts.get(t.id, 0) + 1
                values[t.id] = sub.value
        elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
            t = sub.target
            if isinstance(t, ast.Name):
                counts[t.id] = counts.get(t.id, 0) + 2  # disqualify
        elif isinstance(sub, (ast.For, ast.comprehension)):
            t = sub.target
            if isinstance(t, ast.Name):
                counts[t.id] = counts.get(t.id, 0) + 2  # loop-carried
    return {n: v for n, v in values.items() if counts.get(n) == 1}


def _post_sites(func: FunctionInfo) -> Iterator[ast.Call]:
    for sub in ast.walk(func.node):
        if not isinstance(sub, ast.Call):
            continue
        fn = sub.func
        if isinstance(fn, ast.Attribute):
            if fn.attr == "post":
                yield sub
            elif (
                isinstance(fn.value, ast.Name)
                and fn.value.id == "self"
                and _is_post_alias(func.cls, fn.attr)
            ):
                yield sub
        # a bare name bound to a post alias is out of reach statically


@deep_rule(
    "SIM003",
    "no cross-shard post with a delay provably below the lookahead floor",
)
def check_post_below_floor(
    program: ProgramGraph,
) -> Iterator[DeepViolation]:
    floor = smallest_floor(program)
    if floor is None:
        return
    floor_name, floor_ms = floor
    for func in program.iter_functions():
        mod: ModuleGraph = func.module
        env = _local_env(func)
        for call in _post_sites(func):
            delay = _delay_expr(call)
            if delay is None:
                continue
            bound = fold_lower_bound(program, mod, delay, func.cls, env=env)
            if bound is None:
                continue  # no provable bound — the runtime check owns it
            if bound < floor_ms:
                yield (
                    mod,
                    call,
                    f"cross-shard post delay folds to {bound:g}ms, below "
                    f"the smallest registrable lookahead floor "
                    f"{floor_ms:g}ms ({floor_name}); Engine.post will "
                    f"raise under the Chandy-Misra-Bryant window — "
                    f"schedule at or above the link floor",
                )
