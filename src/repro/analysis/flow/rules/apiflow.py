"""API002 — interprocedural API001: the exhausted-recovery signal must
survive broad handlers anywhere on the call chain.

API001 (per-file) catches ``except RecoveryExhausted:`` blocks that
swallow the signal.  It cannot catch the interprocedural version: a
helper three calls down raises `RecoveryExhausted`, and a caller wraps
the whole chain in ``except Exception: pass``.  The hint the paper's
§4.1 stance exists to surface — *the network misbehaved and recovery
gave up* — dies just as silently, only further from the raise.

The rule propagates "can raise RecoveryExhausted" over the resolved
call graph (a call inside a ``try`` whose handlers catch the signal
does not propagate it upward), then flags every broad handler (bare
``except``, ``Exception``, ``BaseException``, or the repo's
`LynxError` root) that wraps a propagating call and neither re-raises
nor records a ``recovery.*`` metric — the same keeps-the-signal test
API001 applies to explicit handlers.  Handlers that *name*
`RecoveryExhausted` are API001's jurisdiction and are skipped here.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.lint.rules.semantics import (
    EXHAUSTED,
    _handler_keeps_signal,
    _names_exhausted,
)

from ..core import DeepViolation, deep_rule
from ..graph import FunctionInfo, ProgramGraph

#: exception names that catch RecoveryExhausted without naming it
_BROAD_CATCHES = frozenset({"Exception", "BaseException", "LynxError"})


def _handler_names(expr: Optional[ast.AST]) -> List[str]:
    """The type names one except clause catches ([] for bare except)."""
    if expr is None:
        return []
    if isinstance(expr, ast.Tuple):
        out: List[str] = []
        for e in expr.elts:
            out.extend(_handler_names(e))
        return out
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, ast.Attribute):
        return [expr.attr]
    return []


def _handler_catches_signal(handler: ast.ExceptHandler) -> bool:
    """Would this handler intercept a RecoveryExhausted in flight?"""
    if handler.type is None:
        return True
    names = _handler_names(handler.type)
    return EXHAUSTED in names or any(n in _BROAD_CATCHES for n in names)


def _raises_directly(func: FunctionInfo) -> bool:
    """Does the body contain ``raise RecoveryExhausted`` — directly
    (bare name, attribute, call form) or via a local first assigned a
    ``RecoveryExhausted(...)`` construction?"""
    constructed: set = set()
    for sub in ast.walk(func.node):
        if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
            ctor = sub.value.func
            if (isinstance(ctor, ast.Name) and ctor.id == EXHAUSTED) or (
                isinstance(ctor, ast.Attribute) and ctor.attr == EXHAUSTED
            ):
                constructed.update(
                    t.id for t in sub.targets if isinstance(t, ast.Name)
                )
    for sub in ast.walk(func.node):
        if not isinstance(sub, ast.Raise) or sub.exc is None:
            continue
        exc = sub.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        if (isinstance(exc, ast.Name) and exc.id == EXHAUSTED) or (
            isinstance(exc, ast.Attribute) and exc.attr == EXHAUSTED
        ):
            return True
        if isinstance(exc, ast.Name) and exc.id in constructed:
            return True
    return False


def _enclosing_tries(
    func: FunctionInfo,
) -> Dict[int, List[ast.Try]]:
    """``id(call node) -> [Try nodes whose body encloses it]``, inner
    first — scoping calls to the handlers that would catch them."""
    out: Dict[int, List[ast.Try]] = {}

    def walk(node: ast.AST, stack: Tuple[ast.Try, ...]) -> None:
        if isinstance(node, ast.Call):
            if stack:
                out[id(node)] = list(reversed(stack))
        if isinstance(node, ast.Try):
            for child in node.body + node.orelse + node.finalbody:
                walk(child, stack + (node,))
            for handler in node.handlers:
                for child in handler.body:
                    walk(child, stack)  # handler bodies escape this try
            return
        for child in ast.iter_child_nodes(node):
            walk(child, stack)

    walk(func.node, ())
    return out


def _call_escapes(tries: List[ast.Try]) -> bool:
    """Can a RecoveryExhausted raised by this call leave the function?"""
    for t in tries:
        if any(_handler_catches_signal(h) for h in t.handlers):
            return False
    return True


def _can_raise(
    program: ProgramGraph,
) -> Dict[str, FunctionInfo]:
    """Fixpoint: every function from which RecoveryExhausted can
    escape to the caller."""
    raisers: Dict[str, FunctionInfo] = {}
    funcs = program.iter_functions()
    for f in funcs:
        if _raises_directly(f):
            # a direct raise inside a catching try still doesn't
            # escape; keep it simple — the raise sites in this repo are
            # terminal (`raise RecoveryExhausted(...)` at give-up)
            raisers[f.qualname] = f
    changed = True
    enclosing_cache: Dict[str, Dict[int, List[ast.Try]]] = {}
    while changed:
        changed = False
        for f in funcs:
            if f.qualname in raisers:
                continue
            tries = enclosing_cache.get(f.qualname)
            if tries is None:
                tries = _enclosing_tries(f)
                enclosing_cache[f.qualname] = tries
            for edge in f.edges:
                target = edge.target
                if target is None or target.qualname not in raisers:
                    continue
                if _call_escapes(tries.get(id(edge.node), [])):
                    raisers[f.qualname] = f
                    changed = True
                    break
    return raisers


@deep_rule(
    "API002",
    "RecoveryExhausted swallowed by a broad handler down the call chain",
)
def check_exhausted_escapes(
    program: ProgramGraph,
) -> Iterator[DeepViolation]:
    raisers = _can_raise(program)
    if not raisers:
        return
    seen: Set[Tuple[str, int]] = set()
    for func in program.iter_functions():
        mod = func.module
        enclosing = _enclosing_tries(func)
        for sub in ast.walk(func.node):
            if not isinstance(sub, ast.Try):
                continue
            # API001 owns handlers that name the signal explicitly
            if any(
                h.type is not None and _names_exhausted(h.type)
                for h in sub.handlers
            ):
                continue
            broad = [
                h
                for h in sub.handlers
                if _handler_catches_signal(h)
                and not _handler_keeps_signal(h)
            ]
            if not broad:
                continue
            # does the try body contain a call that can deliver the
            # signal here?  (calls nested under an inner catching try
            # are that try's problem)
            culprit: Optional[FunctionInfo] = None
            for inner in sub.body + sub.orelse:
                for call in ast.walk(inner):
                    if not isinstance(call, ast.Call):
                        continue
                    chain = enclosing.get(id(call), [])
                    if sub in chain:
                        inner_tries = chain[: chain.index(sub)]
                        if any(
                            any(
                                _handler_catches_signal(h)
                                for h in t.handlers
                            )
                            for t in inner_tries
                        ):
                            continue  # an inner try already intercepts
                    target = func.call_targets.get(id(call))
                    if target is None or target.qualname not in raisers:
                        refs = func.ref_targets.get(id(call), [])
                        target = next(
                            (r for r in refs if r.qualname in raisers),
                            None,
                        )
                        if target is None:
                            continue
                    culprit = target
                    break
                if culprit is not None:
                    break
            if culprit is None:
                continue
            for handler in broad:
                key = (mod.info.display, handler.lineno)
                if key in seen:
                    continue
                seen.add(key)
                caught = ", ".join(_handler_names(handler.type)) or "bare"
                yield (
                    mod,
                    handler,
                    f"broad handler ({caught}) swallows RecoveryExhausted "
                    f"raised down the chain through "
                    f"{culprit.qualname}; re-raise it or record a "
                    f"recovery.* metric so the give-up stays observable "
                    f"(interprocedural API001)",
                )
