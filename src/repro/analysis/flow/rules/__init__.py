"""The shipped whole-program (deep) rules.

Importing this package registers every deep rule:

| id         | guards                                                    |
|------------|-----------------------------------------------------------|
| `SHARD001` | no shared module/class state written from forked workers  |
| `SIM003`   | no post delay provably below the CMB lookahead floor      |
| `NET001`   | no blocking calls reachable from repro.net coroutines     |
| `API002`   | RecoveryExhausted surviving broad handlers down the chain |
"""

from repro.analysis.flow.rules import (  # noqa: F401  (register on import)
    apiflow,
    netflow,
    shard,
    simflow,
)
