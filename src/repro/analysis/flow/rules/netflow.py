"""NET001 — no blocking calls reachable inside ``repro.net`` coroutines.

The real transport multiplexes every node, client, and hub connection
onto one asyncio event loop.  A single synchronous ``time.sleep``, a
blocking socket ``recv``, a file ``open``, or — worst — a nested
``Engine.run`` inside an ``async def`` stalls *every* coroutine on the
loop: the measured half of E17 silently serializes and the
measured-vs-simulated comparison stops meaning anything.

A per-file lint can catch ``time.sleep`` lexically inside an ``async
def``; what it cannot catch is the same call two frames down a
perfectly ordinary helper.  This rule walks each coroutine's body
*and* the sync functions it (transitively) calls through the resolved
call graph, and reports the blocking operation at the coroutine's call
site, naming the chain's end so the fix is one jump away.

Escapes: code handed to ``run_in_executor`` / ``asyncio.to_thread`` is
exactly where blocking calls belong, so those arguments are skipped.
Async callees are not descended into — they are coroutines themselves
and get their own scan.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.lint.core import dotted_name

from ..core import DeepViolation, deep_rule
from ..graph import FunctionInfo, ModuleGraph, ProgramGraph

#: socket methods that block the calling thread
_BLOCKING_SOCKET_METHODS = frozenset(
    {"sendall", "recv", "recv_into", "accept", "makefile"}
)
#: executor escapes: their arguments legitimately block
_EXECUTOR_CALLS = frozenset({"run_in_executor", "to_thread"})


def _in_net_scope(mod: ModuleGraph) -> bool:
    pkg = mod.info.package
    return pkg is None or pkg[:1] == ("net",)


def _sleep_is_time_sleep(mod: ModuleGraph, call: ast.Call) -> bool:
    """A bare ``sleep(...)`` that resolves to ``from time import sleep``."""
    if not isinstance(call.func, ast.Name) or call.func.id != "sleep":
        return False
    imp = mod.imports.get("sleep")
    return imp is not None and imp.module == "time" and imp.symbol == "sleep"


def _direct_block(
    program: ProgramGraph, func: FunctionInfo, call: ast.Call
) -> Optional[str]:
    """A human-readable description if this call blocks the thread."""
    mod = func.module
    name = dotted_name(call.func)
    if name == "time.sleep" or _sleep_is_time_sleep(mod, call):
        return "time.sleep(...)"
    if name is not None and (
        name == "asyncio.run" or name.endswith(".run_until_complete")
    ):
        return f"{name}(...) (nested event loop)"
    if isinstance(call.func, ast.Name) and call.func.id == "open":
        return "open(...) (synchronous file IO)"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        base = dotted_name(call.func.value) or ""
        if attr in _BLOCKING_SOCKET_METHODS:
            return f"{base or '<socket>'}.{attr}(...) (blocking socket IO)"
        if attr == "connect" and "sock" in base.lower():
            return f"{base}.connect(...) (blocking socket IO)"
        if attr == "run":
            target = func.call_targets.get(id(call))
            if (
                target is not None
                and target.cls is not None
                and target.cls.name.endswith("Engine")
            ):
                return (
                    f"{target.cls.name}.run(...) (runs the simulation "
                    f"loop to completion)"
                )
    return None


def _walk_skipping_executors(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` minus the argument subtrees of executor escapes."""
    todo: List[ast.AST] = [node]
    while todo:
        cur = todo.pop()
        yield cur
        if (
            isinstance(cur, ast.Call)
            and isinstance(cur.func, ast.Attribute)
            and cur.func.attr in _EXECUTOR_CALLS
        ):
            todo.append(cur.func)  # the receiver can still block
            continue
        todo.extend(ast.iter_child_nodes(cur))


#: memo: qualname -> (description of the blocking op, or None)
_BlockMemo = Dict[str, Optional[str]]


def _blocks(
    program: ProgramGraph,
    func: FunctionInfo,
    memo: _BlockMemo,
) -> Optional[str]:
    """Does calling this *sync* function (transitively) block?  Returns
    a description like ``"time.sleep(...) in repro.net.hub.roundtrip"``."""
    key = func.qualname
    if key in memo:
        return memo[key]
    memo[key] = None  # in-progress: cycles resolve to "not blocking"
    result: Optional[str] = None
    for sub in _walk_skipping_executors(func.node):
        if not isinstance(sub, ast.Call):
            continue
        desc = _direct_block(program, func, sub)
        if desc is not None:
            result = f"{desc} in {func.qualname}"
            break
        target = func.call_targets.get(id(sub))
        if target is not None and not target.is_async:
            deeper = _blocks(program, target, memo)
            if deeper is not None:
                result = deeper
                break
    memo[key] = result
    return result


def _async_functions(
    program: ProgramGraph,
) -> Iterator[Tuple[ModuleGraph, FunctionInfo]]:
    for func in program.iter_functions():
        if func.is_async and _in_net_scope(func.module):
            yield func.module, func


@deep_rule(
    "NET001",
    "no blocking calls reachable from repro.net coroutines",
)
def check_blocking_in_coroutines(
    program: ProgramGraph,
) -> Iterator[DeepViolation]:
    memo: _BlockMemo = {}
    for mod, func in _async_functions(program):
        seen_sites = set()
        for sub in _walk_skipping_executors(func.node):
            if not isinstance(sub, ast.Call):
                continue
            site = (getattr(sub, "lineno", 0), getattr(sub, "col_offset", 0))
            if site in seen_sites:
                continue
            desc = _direct_block(program, func, sub)
            if desc is not None:
                seen_sites.add(site)
                yield (
                    mod,
                    sub,
                    f"blocking call {desc} inside coroutine "
                    f"{func.qualname}; this stalls the entire event loop "
                    f"— await an async equivalent or hand it to an "
                    f"executor",
                )
                continue
            target = func.call_targets.get(id(sub))
            if target is not None and not target.is_async:
                deeper = _blocks(program, target, memo)
                if deeper is not None:
                    seen_sites.add(site)
                    yield (
                        mod,
                        sub,
                        f"coroutine {func.qualname} calls "
                        f"{target.qualname}, which blocks: {deeper}; "
                        f"this stalls the entire event loop — await an "
                        f"async equivalent or hand it to an executor",
                    )
    return
