"""SHARD001 — static race detector for forked shard workers.

``sharded-parallel`` with ``workers=`` forks one OS process per shard
(`multiprocessing` ``Process(target=...)``), and every shard-tagged
callback handed to the engine (``schedule_on`` / ``defer_on`` /
``bind_receiver`` / ``bind_harvest``) may execute inside any of those
forks.  A fork copies module state at spawn time: a write to a
module-level or class-level (shared across instances) name from worker
code is a write to a *per-process copy* — the paper's determinism
contract silently degrades into N diverging universes, with no
exception to point at.

The rule computes the set of functions reachable from worker entry
points over the conservative call graph (including callbacks passed as
arguments — the dominant idiom in an event-driven codebase) and flags:

* ``global NAME`` rebinding of a module-level name;
* mutation of a module-level mutable container (``REGISTRY[k] = v``,
  ``CACHE.append(x)``, ``STATS.update(...)`` and friends);
* class-attribute writes (``cls.attr = ...``, ``Type.attr = ...``,
  ``type(self).attr = ...``, ``self.__class__.attr = ...``) and
  mutation of class-level mutable containers reached through ``self``
  when the name was never rebound per-instance.

Instance state (``self.x`` where ``x`` is instance-bound) is fine:
each fork owns its shards' objects outright — that ownership split is
the whole point of the design.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analysis.lint.core import dotted_name

from ..core import DeepViolation, deep_rule
from ..graph import FunctionInfo, ProgramGraph

#: engine methods whose function-valued arguments run on shard workers
_SHARD_TAGGED = frozenset(
    {"schedule_on", "defer_on", "bind_receiver", "bind_harvest"}
)

#: methods that mutate the container they're called on
_MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "appendleft", "extendleft",
    "popleft", "sort", "reverse",
})


def worker_roots(program: ProgramGraph) -> List[FunctionInfo]:
    """Functions that enter execution on a forked shard worker: the
    ``target=`` of a ``Process(...)`` spawn, and every callback handed
    to a shard-tagged engine method."""
    roots: List[FunctionInfo] = []
    for func in program.iter_functions():
        for edge in func.edges:
            call = edge.node
            name = dotted_name(call.func)
            is_spawn = name is not None and name.rsplit(".", 1)[-1].endswith(
                "Process"
            )
            attr = (
                call.func.attr
                if isinstance(call.func, ast.Attribute)
                else None
            )
            if is_spawn or attr in _SHARD_TAGGED:
                roots.extend(edge.arg_refs)
    return roots


def _local_names(node: ast.AST) -> Set[str]:
    """Names bound locally inside a function (params, assignments,
    comprehension/loop targets, with-as) — these shadow module names."""
    names: Set[str] = set()
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        a = node.args
        for arg in list(a.posonlyargs) + list(a.args) + list(a.kwonlyargs):
            names.add(arg.arg)
        if a.vararg:
            names.add(a.vararg.arg)
        if a.kwarg:
            names.add(a.kwarg.arg)
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store):
            names.add(sub.id)
        elif isinstance(sub, (ast.Global, ast.Nonlocal)):
            names.difference_update(sub.names)
    return names


def _class_attr_target(
    program: ProgramGraph, func: FunctionInfo, expr: ast.AST
) -> Optional[str]:
    """If ``expr`` names a class-level attribute holder shared across
    instances — ``cls``, ``type(self)``, ``self.__class__``, or a
    resolvable class name — return a printable description of it."""
    if isinstance(expr, ast.Name) and expr.id == "cls":
        return "cls"
    if isinstance(expr, ast.Attribute) and expr.attr == "__class__":
        return "self.__class__"
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id == "type"
        and len(expr.args) == 1
    ):
        return "type(...)"
    name = dotted_name(expr)
    if name is not None:
        resolved = program.resolve(func.module, name)
        if resolved is not None and resolved[0] == "class":
            cls = resolved[1]
            return f"{cls.module.name}.{cls.name}"
    return None


def _shared_writes(
    program: ProgramGraph, func: FunctionInfo
) -> Iterator[DeepViolation]:
    node = func.node
    locals_ = _local_names(node)
    mod = func.module
    globals_declared: Set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Global):
            globals_declared.update(sub.names)

    for sub in ast.walk(node):
        # -- rebinding and attribute/subscript writes ------------------
        if isinstance(sub, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                sub.targets if isinstance(sub, ast.Assign) else [sub.target]
            )
            for t in targets:
                if isinstance(t, ast.Name) and t.id in globals_declared:
                    yield (
                        mod,
                        sub,
                        f"worker-reachable code rebinds module global "
                        f"{t.id!r} via `global`; forked shard workers each "
                        f"mutate a private copy — shared state diverges "
                        f"silently across processes",
                    )
                elif isinstance(t, ast.Attribute):
                    desc = _class_attr_target(program, func, t.value)
                    if desc is not None:
                        yield (
                            mod,
                            sub,
                            f"worker-reachable code writes class attribute "
                            f"{desc}.{t.attr}; class state is copied into "
                            f"each forked shard worker and the writes "
                            f"never reconcile",
                        )
                elif isinstance(t, ast.Subscript):
                    base = t.value
                    if (
                        isinstance(base, ast.Name)
                        and base.id not in locals_
                        and base.id in mod.mutables
                    ):
                        yield (
                            mod,
                            sub,
                            f"worker-reachable code mutates module-level "
                            f"container {base.id!r} by subscript "
                            f"assignment; each forked shard worker mutates "
                            f"its own fork-copied instance",
                        )
        # -- mutator method calls on shared containers -----------------
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr in _MUTATOR_METHODS
        ):
            base = sub.func.value
            if (
                isinstance(base, ast.Name)
                and base.id not in locals_
                and base.id in mod.mutables
            ):
                yield (
                    mod,
                    sub,
                    f"worker-reachable code calls "
                    f"{base.id}.{sub.func.attr}(...) on a module-level "
                    f"mutable; forked shard workers each mutate a "
                    f"fork-copied instance, so the containers diverge",
                )
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and func.cls is not None
                and base.attr in func.cls.class_mutables
                and base.attr not in func.cls.self_bindings
            ):
                yield (
                    mod,
                    sub,
                    f"worker-reachable code mutates class-level container "
                    f"{func.cls.name}.{base.attr} through self; the "
                    f"container is shared by every instance in the parent "
                    f"but fork-copied per worker",
                )


@deep_rule(
    "SHARD001",
    "no shared module/class state written from forked shard workers",
)
def check_shard_worker_state(
    program: ProgramGraph,
) -> Iterator[DeepViolation]:
    roots = worker_roots(program)
    if not roots:
        return
    seen: Set[int] = set()
    for func in program.reachable(roots):
        key = id(func.node)
        if key in seen:
            continue
        seen.add(key)
        yield from _shared_writes(program, func)
