"""Conservative constant folding over the program graph.

SIM003 needs to prove, statically, that a cross-shard post's delay is
below the smallest registered link floor.  "Prove" means folding the
delay expression down to a *lower bound*: every construct folds either
to a number that the runtime value can never go below, or to None
("don't know"), in which case no finding fires.  A random jitter term
``uniform(a, b)`` folds to ``fold(a)`` — the smallest value the draw
can produce — which is exactly the bound the Chandy–Misra–Bryant
window check in `Engine.post` enforces at runtime.

Name lookups resolve through the module graph: a bare ``NAME`` through
the module's own constants and its imports, a dotted
``mod.CONST`` across modules, and ``self.attr`` through the class's
``self.attr = ...`` bindings (folded in the binding method's own
module context).  Anything else — calls, subscripts, attribute chains
on unknown objects — is None.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

from repro.analysis.lint.core import dotted_name

from .graph import ClassInfo, ModuleGraph, ProgramGraph

__all__ = ["fold_lower_bound"]

#: functions whose result's lower bound is their first argument's
_LOWER_BOUND_OF_FIRST_ARG = frozenset({"uniform", "triangular"})

_MAX_DEPTH = 16


def fold_lower_bound(
    program: ProgramGraph,
    mod: ModuleGraph,
    expr: ast.AST,
    cls: Optional[ClassInfo] = None,
    env: Optional[Dict[str, ast.AST]] = None,
    _depth: int = 0,
) -> Optional[float]:
    """Fold ``expr`` (as seen from ``mod``, optionally inside ``cls``)
    to a numeric lower bound, or None when no bound is provable.

    ``env`` maps bare names to substitute expressions — callers use it
    to fold a method body against ``__init__`` parameter defaults."""
    if _depth > _MAX_DEPTH:
        return None

    def rec(e: ast.AST, m: ModuleGraph = mod,
            c: Optional[ClassInfo] = cls,
            v: Optional[Dict[str, ast.AST]] = env) -> Optional[float]:
        return fold_lower_bound(program, m, e, c, v, _depth + 1)

    if isinstance(expr, ast.Name) and env is not None and expr.id in env:
        return rec(env[expr.id])

    if isinstance(expr, ast.Constant):
        if isinstance(expr.value, bool) or not isinstance(
            expr.value, (int, float)
        ):
            return None
        return float(expr.value)

    if isinstance(expr, ast.UnaryOp):
        if isinstance(expr.op, ast.USub):
            # a lower bound of -x needs an *upper* bound of x; only a
            # constant gives both
            inner = expr.operand
            if isinstance(inner, ast.Constant) and isinstance(
                inner.value, (int, float)
            ) and not isinstance(inner.value, bool):
                return -float(inner.value)
            return None
        if isinstance(expr.op, ast.UAdd):
            return rec(expr.operand)
        return None

    if isinstance(expr, ast.BinOp):
        left, right = rec(expr.left), rec(expr.right)
        if left is None or right is None:
            return None
        if isinstance(expr.op, ast.Add):
            return left + right
        if isinstance(expr.op, ast.Sub):
            # lower(l - r) = lower(l) - upper(r); sound only when both
            # sides folded to exact constants, which is what folding to
            # a number means for every leaf we accept
            return left - right
        if isinstance(expr.op, ast.Mult):
            if left < 0 or right < 0:
                return None  # sign flips break the bound direction
            return left * right
        if isinstance(expr.op, ast.Div):
            if left < 0 or right <= 0:
                return None
            return left / right
        return None

    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name is not None:
            # `self._uniform` (the bound-method alias idiom) folds the
            # same as `uniform`
            tail = name.rsplit(".", 1)[-1].lstrip("_")
            if tail in _LOWER_BOUND_OF_FIRST_ARG and expr.args:
                return rec(expr.args[0])
            if tail in ("max",) and expr.args:
                bounds = [rec(a) for a in expr.args]
                known = [b for b in bounds if b is not None]
                # max() is at least its largest *provable* lower bound
                return max(known) if known else None
            if tail in ("min",) and expr.args:
                bounds = [rec(a) for a in expr.args]
                if any(b is None for b in bounds):
                    return None
                return min(bounds)  # type: ignore[type-var]
            if tail in ("float", "abs") and len(expr.args) == 1:
                inner = rec(expr.args[0])
                if tail == "abs":
                    return None if inner is None else max(inner, 0.0)
                return inner
        return None

    # self.attr through the class's binding table
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
        and cls is not None
    ):
        bound = cls.self_bindings.get(expr.attr)
        if bound is not None:
            return rec(bound, cls.module, cls)
        attr = program.class_attr(cls, expr.attr)
        if attr is not None:
            return rec(attr, cls.module, cls)
        return None

    name = dotted_name(expr)
    if name is not None:
        resolved = program.resolve(mod, name)
        if resolved is not None and resolved[0] == "const":
            _, owner, value = resolved
            return rec(value, owner, None)
        return None

    return None
