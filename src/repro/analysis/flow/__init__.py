"""Whole-program static analysis (`python -m repro lint --deep`).

The per-file lint (`repro.analysis.lint`) checks what one AST can
show.  This package links every parsed module into a `ProgramGraph` —
import graph, symbol table, conservative call graph — and runs
*interprocedural* rules over it: races on fork-shared state, lookahead
floors violated by constant-foldable delays, blocking calls buried
under helpers inside coroutines, and recovery signals swallowed far
from where they were raised.

Entry points: `build_program` links `ModuleInfo`s; `registered_deep_rules`
lists the shipped rules; the lint runner (`run_lint(deep=True)`) wires
both into the normal finding/baseline/report pipeline.
"""

from repro.analysis.flow.core import (
    DeepRule,
    DeepViolation,
    deep_rule,
    get_deep_rule,
    registered_deep_rules,
)
from repro.analysis.flow.fold import fold_lower_bound
from repro.analysis.flow.graph import (
    CallEdge,
    ClassInfo,
    FunctionInfo,
    ModuleGraph,
    ProgramGraph,
    build_program,
)

__all__ = [
    "CallEdge",
    "ClassInfo",
    "DeepRule",
    "DeepViolation",
    "FunctionInfo",
    "ModuleGraph",
    "ProgramGraph",
    "build_program",
    "deep_rule",
    "fold_lower_bound",
    "get_deep_rule",
    "registered_deep_rules",
]
