"""The whole-program graph: modules, symbols, and a conservative call graph.

`build_program` parses nothing itself — it takes the same `ModuleInfo`
objects the per-file lint pass already produced and links them into a
`ProgramGraph`:

* **module graph** — every file under ``src/repro`` keyed by its dotted
  name (``repro.sim.engine``); ad-hoc files (fixtures, scripts) keyed
  by their stem so deep rules run on them too;
* **symbol table** — per module: imports (aliases, ``from`` symbols,
  relative forms), top-level functions, classes with their methods and
  ``self.x = ...`` bindings, module-level constants, and module-level
  names bound to mutable containers;
* **call graph** — for every function, the calls whose targets resolve
  statically (direct names, imported names, ``self.method``, methods
  on locally constructed instances) plus *reference edges*: function
  objects passed as call arguments (``defer(d, self._serve, ...)``) —
  the dominant control-flow idiom of an event-driven codebase.

Resolution is deliberately conservative: an edge exists only when the
target is certain, and anything dynamic (``fn(*args)``, dict dispatch,
``getattr``) resolves to nothing.  Deep rules are therefore biased
toward precision — a finding names a chain that really exists — at the
price of recall, which is the right trade for a CI gate.

Import resolution follows re-export chains (``from repro.net import
hub_connect`` where ``repro.net.__init__`` itself imported it from
``repro.net.hub``) with a cycle guard, so import cycles terminate.
Nested ``def``s are folded into their enclosing function: a closure
handed to a scheduler is part of the parent's behaviour, and walking
it with the parent is what makes reachability see it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.core import ModuleInfo, dotted_name

__all__ = [
    "CallEdge",
    "ClassInfo",
    "FunctionInfo",
    "ModuleGraph",
    "ProgramGraph",
    "build_program",
]

#: AST nodes that bind a module-level name to a mutable container
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp,
                     ast.DictComp, ast.SetComp)
#: constructor names that build a mutable container
_MUTABLE_CALLS = frozenset({
    "list", "dict", "set", "deque", "defaultdict", "OrderedDict",
    "Counter", "bytearray",
})


def _is_mutable_expr(expr: ast.AST) -> bool:
    if isinstance(expr, _MUTABLE_LITERALS):
        return True
    if isinstance(expr, ast.Call):
        name = dotted_name(expr.func)
        if name is not None and name.rsplit(".", 1)[-1] in _MUTABLE_CALLS:
            return True
    return False


@dataclass
class FunctionInfo:
    """One function or method, with its resolved outgoing edges."""

    name: str
    qualname: str  # "<module>.<Class>.<name>" / "<module>.<name>"
    module: ModuleGraph
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional["ClassInfo"] = None
    is_async: bool = False
    #: resolved per call node (id(node) -> target), filled by _link
    call_targets: Dict[int, "FunctionInfo"] = field(default_factory=dict)
    #: function references passed as arguments, per call node
    ref_targets: Dict[int, List["FunctionInfo"]] = field(default_factory=dict)
    edges: List["CallEdge"] = field(default_factory=list)

    def callees(self) -> List["FunctionInfo"]:
        """Every function this one calls or passes as a callback, in
        source order, deduplicated."""
        seen: Set[str] = set()
        out: List[FunctionInfo] = []
        for edge in self.edges:
            for t in edge.targets():
                if t.qualname not in seen:
                    seen.add(t.qualname)
                    out.append(t)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.qualname}>"


@dataclass
class CallEdge:
    """One call site: the resolved callee (if any) and any function
    references among its arguments."""

    node: ast.Call
    target: Optional[FunctionInfo]
    arg_refs: List[FunctionInfo] = field(default_factory=list)

    def targets(self) -> List[FunctionInfo]:
        out = list(self.arg_refs)
        if self.target is not None:
            out.insert(0, self.target)
        return out


@dataclass
class ClassInfo:
    """One class: methods, base names, and ``self.x = ...`` bindings."""

    name: str
    module: "ModuleGraph"
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class-level attribute assignments (name -> value expression)
    class_attrs: Dict[str, ast.AST] = field(default_factory=dict)
    #: class-level names bound to mutable containers
    class_mutables: Set[str] = field(default_factory=set)
    #: ``self.NAME = <expr>`` seen in any method (last one wins)
    self_bindings: Dict[str, ast.AST] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ClassInfo {self.module.name}.{self.name}>"


@dataclass
class _Import:
    kind: str  # "module" | "symbol"
    module: str
    symbol: Optional[str] = None


@dataclass
class ModuleGraph:
    """One module's symbol table inside the program."""

    name: str
    info: ModuleInfo
    is_package: bool
    imports: Dict[str, _Import] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level simple constant assignments (name -> value expr)
    constants: Dict[str, ast.AST] = field(default_factory=dict)
    #: module-level names bound to mutable containers (name -> expr)
    mutables: Dict[str, ast.AST] = field(default_factory=dict)
    #: calls made from ``if __name__ == "__main__":`` blocks
    main_calls: List[ast.Call] = field(default_factory=list)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModuleGraph {self.name}>"


def module_dotted_name(info: ModuleInfo) -> str:
    """``repro.sim.engine`` for files under ``src/repro``; the file
    stem for ad-hoc paths (fixtures keep their full rule coverage)."""
    if info.package is not None:
        return ".".join(("repro",) + info.package)
    return info.path.stem


def _is_main_guard(node: ast.If) -> bool:
    t = node.test
    return (
        isinstance(t, ast.Compare)
        and isinstance(t.left, ast.Name)
        and t.left.id == "__name__"
        and len(t.ops) == 1
        and isinstance(t.ops[0], ast.Eq)
        and len(t.comparators) == 1
        and isinstance(t.comparators[0], ast.Constant)
        and t.comparators[0].value == "__main__"
    )


class ProgramGraph:
    """The linked whole-program view deep rules run on."""

    def __init__(self, modules: Sequence[ModuleGraph]) -> None:
        self.modules: Dict[str, ModuleGraph] = {m.name: m for m in modules}
        self._blocks_cache: Dict[str, object] = {}

    # -- iteration -----------------------------------------------------
    def iter_modules(self) -> List[ModuleGraph]:
        return [self.modules[k] for k in sorted(self.modules)]

    def iter_functions(self) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        for mod in self.iter_modules():
            out.extend(mod.functions[k] for k in mod.functions)
            for cname in mod.classes:
                cls = mod.classes[cname]
                out.extend(cls.methods[k] for k in cls.methods)
        return out

    # -- symbol resolution ---------------------------------------------
    def resolve(self, mod: ModuleGraph, dotted: str):
        """Resolve a dotted name as seen from ``mod``.  Returns one of
        ``("func", FunctionInfo)``, ``("class", ClassInfo)``,
        ``("classattr", ClassInfo, name)``, ``("const", ModuleGraph,
        expr)``, ``("mutable", ModuleGraph, name)``, ``("module",
        ModuleGraph)`` or None."""
        return self._resolve_parts(mod, dotted.split("."), set())

    def _resolve_parts(self, mod: ModuleGraph, parts: List[str], seen: set):
        if not parts:
            return ("module", mod)
        head, rest = parts[0], parts[1:]
        if head in mod.classes:
            cls = mod.classes[head]
            if not rest:
                return ("class", cls)
            if len(rest) == 1:
                meth = self.class_method(cls, rest[0])
                if meth is not None:
                    return ("func", meth)
                attr = self.class_attr(cls, rest[0])
                if attr is not None:
                    return ("classattr", cls, rest[0])
            return None
        if head in mod.functions:
            return ("func", mod.functions[head]) if not rest else None
        if head in mod.mutables:
            return ("mutable", mod, head) if not rest else None
        if head in mod.constants:
            return ("const", mod, mod.constants[head]) if not rest else None
        imp = mod.imports.get(head)
        if imp is not None:
            if imp.kind == "module":
                return self._resolve_module_path(imp.module, rest, seen)
            # a `from M import x` symbol: x may itself be a submodule
            sub = f"{imp.module}.{imp.symbol}"
            if sub in self.modules:
                return self._resolve_module_path(sub, rest, seen)
            target = self.modules.get(imp.module)
            if target is None:
                return None
            key = (target.name, imp.symbol)
            if key in seen:  # re-export cycle: give up, don't loop
                return None
            seen.add(key)
            return self._resolve_parts(target, [imp.symbol] + rest, seen)
        return None

    def _resolve_module_path(self, dotted: str, rest: List[str], seen: set):
        parts = dotted.split(".") + rest
        for i in range(len(parts), 0, -1):
            name = ".".join(parts[:i])
            if name in self.modules:
                remaining = parts[i:]
                if not remaining:
                    return ("module", self.modules[name])
                return self._resolve_parts(self.modules[name], remaining, seen)
        return None

    def class_method(self, cls: ClassInfo, name: str,
                     _seen: Optional[set] = None) -> Optional[FunctionInfo]:
        """Look ``name`` up on ``cls`` and its resolvable bases."""
        if name in cls.methods:
            return cls.methods[name]
        _seen = _seen if _seen is not None else set()
        key = (cls.module.name, cls.name)
        if key in _seen:
            return None
        _seen.add(key)
        for base in cls.bases:
            resolved = self._resolve_parts(cls.module, base.split("."), set())
            if resolved is not None and resolved[0] == "class":
                meth = self.class_method(resolved[1], name, _seen)
                if meth is not None:
                    return meth
        return None

    def class_attr(self, cls: ClassInfo, name: str,
                   _seen: Optional[set] = None) -> Optional[ast.AST]:
        if name in cls.class_attrs:
            return cls.class_attrs[name]
        _seen = _seen if _seen is not None else set()
        key = (cls.module.name, cls.name)
        if key in _seen:
            return None
        _seen.add(key)
        for base in cls.bases:
            resolved = self._resolve_parts(cls.module, base.split("."), set())
            if resolved is not None and resolved[0] == "class":
                attr = self.class_attr(resolved[1], name, _seen)
                if attr is not None:
                    return attr
        return None

    # -- reachability --------------------------------------------------
    def reachable(self, roots: Iterable[FunctionInfo]) -> List[FunctionInfo]:
        """Transitive closure over call + reference edges, in a stable
        (qualname-sorted BFS) order."""
        seen: Dict[str, FunctionInfo] = {}
        frontier = sorted(
            {r.qualname: r for r in roots}.values(),
            key=lambda f: f.qualname,
        )
        for f in frontier:
            seen[f.qualname] = f
        while frontier:
            nxt: Dict[str, FunctionInfo] = {}
            for f in frontier:
                for callee in f.callees():
                    if callee.qualname not in seen:
                        seen[callee.qualname] = callee
                        nxt[callee.qualname] = callee
            frontier = [nxt[k] for k in sorted(nxt)]
        return [seen[k] for k in sorted(seen)]


# ----------------------------------------------------------------------
# building: per-module symbol tables, then a linking pass
# ----------------------------------------------------------------------
def _collect_imports(mod: ModuleGraph) -> None:
    for node in ast.walk(mod.info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mod.imports[alias.asname] = _Import("module", alias.name)
                else:
                    head = alias.name.split(".")[0]
                    mod.imports.setdefault(head, _Import("module", head))
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                parts = mod.name.split(".")
                if not mod.is_package:
                    parts = parts[:-1]
                parts = parts[: max(len(parts) - (node.level - 1), 0)]
                base = ".".join(parts + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue  # star imports resolve to nothing (precision)
                bound = alias.asname or alias.name
                mod.imports[bound] = _Import("symbol", base, alias.name)


def _collect_class(mod: ModuleGraph, node: ast.ClassDef) -> ClassInfo:
    cls = ClassInfo(name=node.name, module=mod, node=node)
    for base in node.bases:
        name = dotted_name(base)
        if name is not None:
            cls.bases.append(name)
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fi = FunctionInfo(
                name=stmt.name,
                qualname=f"{mod.name}.{node.name}.{stmt.name}",
                module=mod,
                node=stmt,
                cls=cls,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
            )
            cls.methods[stmt.name] = fi
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            for t in targets:
                if isinstance(t, ast.Name) and value is not None:
                    cls.class_attrs[t.id] = value
                    if _is_mutable_expr(value):
                        cls.class_mutables.add(t.id)
    # self.NAME = <expr> bindings, from every method
    for meth in cls.methods.values():
        for sub in ast.walk(meth.node):
            if not isinstance(sub, ast.Assign):
                continue
            for t in sub.targets:
                if (
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                ):
                    cls.self_bindings[t.attr] = sub.value
    return cls


def _collect_module(info: ModuleInfo) -> ModuleGraph:
    mod = ModuleGraph(
        name=module_dotted_name(info),
        info=info,
        is_package=info.path.name == "__init__.py",
    )
    _collect_imports(mod)
    for node in info.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            mod.functions[node.name] = FunctionInfo(
                name=node.name,
                qualname=f"{mod.name}.{node.name}",
                module=mod,
                node=node,
                is_async=isinstance(node, ast.AsyncFunctionDef),
            )
        elif isinstance(node, ast.ClassDef):
            mod.classes[node.name] = _collect_class(mod, node)
        elif isinstance(node, (ast.Assign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            value = node.value
            if value is None:
                continue
            for t in targets:
                if not isinstance(t, ast.Name):
                    continue
                if _is_mutable_expr(value):
                    mod.mutables[t.id] = value
                else:
                    mod.constants[t.id] = value
        elif isinstance(node, ast.If) and _is_main_guard(node):
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    mod.main_calls.append(sub)
    return mod


class _Linker(ast.NodeVisitor):
    """Resolve one function's call sites and argument references.

    Walks the function body in source order, tracking locally
    constructed instances (``x = SomeClass(...)``) so ``x.method()``
    resolves.  Nested ``def``s are walked as part of the parent.
    """

    def __init__(self, program: ProgramGraph, func: FunctionInfo) -> None:
        self.program = program
        self.func = func
        self.mod = func.module
        #: local name -> ClassInfo for locally constructed instances
        self.local_types: Dict[str, ClassInfo] = {}

    def run(self) -> None:
        node = self.func.node
        for stmt in node.body:
            self.visit(stmt)

    # -- resolution helpers --------------------------------------------
    def _resolve_callable(self, expr: ast.AST):
        """Resolve an expression to a FunctionInfo, or None."""
        cls = self.func.cls
        if isinstance(expr, ast.Attribute):
            base = expr.value
            if isinstance(base, ast.Name):
                if base.id in ("self", "cls") and cls is not None:
                    meth = self.program.class_method(cls, expr.attr)
                    if meth is not None:
                        return meth
                    # `self.x(...)` where __init__ bound x to a method:
                    bound = cls.self_bindings.get(expr.attr)
                    if bound is not None:
                        return self._resolve_callable(bound)
                    return None
                local = self.local_types.get(base.id)
                if local is not None:
                    return self.program.class_method(local, expr.attr)
        name = dotted_name(expr)
        if name is None:
            return None
        resolved = self.program.resolve(self.mod, name)
        if resolved is None:
            return None
        if resolved[0] == "func":
            return resolved[1]
        if resolved[0] == "class":
            return self.program.class_method(resolved[1], "__init__")
        return None

    def _resolve_class(self, expr: ast.AST) -> Optional[ClassInfo]:
        name = dotted_name(expr)
        if name is None:
            return None
        resolved = self.program.resolve(self.mod, name)
        if resolved is not None and resolved[0] == "class":
            return resolved[1]
        return None

    # -- visitors ------------------------------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        # track `x = SomeClass(...)` for later `x.method()` resolution
        if isinstance(node.value, ast.Call):
            built = self._resolve_class(node.value.func)
            if built is not None:
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        self.local_types[t.id] = built
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        target = self._resolve_callable(node.func)
        refs: List[FunctionInfo] = []
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                ref = self._resolve_callable(arg)
                if ref is not None:
                    refs.append(ref)
        if target is not None:
            self.func.call_targets[id(node)] = target
        if refs:
            self.func.ref_targets[id(node)] = refs
        if target is not None or refs:
            self.func.edges.append(
                CallEdge(node=node, target=target, arg_refs=refs)
            )
        self.generic_visit(node)


def build_program(modules: Iterable[ModuleInfo]) -> ProgramGraph:
    """Link parsed modules into a `ProgramGraph` (one pass to collect
    symbols, one to resolve call sites)."""
    graphs: List[ModuleGraph] = []
    names: Set[str] = set()
    for info in modules:
        mg = _collect_module(info)
        if mg.name in names:  # two ad-hoc files with one stem: keep first
            continue
        names.add(mg.name)
        graphs.append(mg)
    program = ProgramGraph(graphs)
    for func in program.iter_functions():
        _Linker(program, func).run()
    return program
