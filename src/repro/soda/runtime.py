"""The LYNX run-time package designed for SODA (paper §4.2).

"A link in SODA can be represented by a pair of unique names, one for
each end.  A process that owns an end of a link advertises the
associated name.  Every process knows the names of the link ends it
owns.  Every process keeps a hint as to the current location of the
far end of each of its links.  The hints can be wrong, but are
expected to work most of the time."

The machinery reproduced here, all from §4.2:

* **puts** carry LYNX requests and replies; the receiver's *accept* is
  the receipt, so screening is free: an unwanted request simply stays
  unaccepted inside the kernel — no retry/forbid/allow;
* **status signals** posted toward the far end detect destruction and
  crashes ("the purpose of the signal is to allow the aspiring
  receiver to tell if its link is destroyed or if its chosen sender
  dies");
* **moves** enclose end names in messages; the mover accepts any
  previously-posted request from the far end with zero-length buffers
  and "uses the out-of-band information to tell the other process
  where it moved its end";
* the **link cache**: a process remembers where ends it used to own
  went, "and keeps the names of those links advertised", so stale
  hints are repaired with one redirect;
* **discover** as the second line of repair, and the **freeze**
  absolute search (`repro.soda.freeze`) as the last resort;
* "A process that is unable to find the far end of a link must assume
  it has been destroyed."
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Generator, List, Optional

from repro.analysis.costmodel import RuntimeCosts
from repro.core.exceptions import ProtocolViolation
from repro.core.links import EndLifecycle, EndRef, EndState
from repro.core.runtime import LynxRuntimeBase
from repro.core.wire import MsgKind, WireMessage
from repro.sim.engine import Event
from repro.soda.freeze import FreezeManager
from repro.soda.kernel import (
    AcceptStatus,
    Interrupt,
    InterruptKind,
    SodaPort,
)


@dataclass
class _SodaEnd:
    """SODA-specific per-end state."""

    ref: EndRef
    my_name: int
    far_name: int
    #: believed owner of the far end — "can be wrong" (§4.2)
    hint: str
    #: rid of our outstanding status signal, if any
    signal_rid: Optional[int] = None
    #: REQUEST interrupts (kind 'req') awaiting acceptance
    pending_reqs: Deque[Interrupt] = field(default_factory=deque)
    #: every unaccepted incoming rid on this end (signals and puts) —
    #: the set we must zero-accept when moving or destroying (§4.2)
    incoming_rids: Dict[int, Interrupt] = field(default_factory=dict)


@dataclass
class _Send:
    """An outstanding outgoing request of ours."""

    ref: EndRef
    msg: Optional[WireMessage]  # None for signals
    kind: str  # 'req' | 'rep' | 'sig'
    timer: Optional[Event] = None
    probes: int = 0


class SodaRuntime(LynxRuntimeBase):
    RUNTIME_NAME = "soda"

    def __init__(self, handle, cluster) -> None:
        super().__init__(handle, cluster)
        self.port: SodaPort = cluster.kernel.register_process(
            self.name, handle.node
        )
        self.costs = cluster.soda_costs
        self.sends: Dict[int, _Send] = {}
        self.sref: Dict[EndRef, _SodaEnd] = {}
        self.name_to_ref: Dict[int, EndRef] = {}
        #: moved-away ends: name -> new owner; names stay advertised
        #: until evicted ("keeps the names of those links advertised")
        self.cache: "OrderedDict[int, str]" = OrderedDict()
        self.cache_size: int = getattr(cluster, "cache_size", 64)
        self._intr_q: Deque[Interrupt] = deque()
        #: rids whose hint-probe timer fired (probe to be started)
        self._repairs: Deque[int] = deque()
        #: (rid, discover result) pairs awaiting conclusion
        self._probe_results: Deque[tuple] = deque()
        self.freezer = FreezeManager(self)
        self.frozen_count = 0
        self.port.set_handler(self._on_interrupt)

    def runtime_costs(self) -> RuntimeCosts:
        return self.cluster.soda_costs.runtime

    def rt_runnable(self) -> bool:
        return self.frozen_count == 0

    # ------------------------------------------------------------------
    # interrupt plumbing
    # ------------------------------------------------------------------
    def _on_interrupt(self, intr: Interrupt) -> None:
        """The single SODA software-interrupt handler (§4.1): record
        and wake; real work happens at block points."""
        self._intr_q.append(intr)
        self._wake()

    def rt_block_wait(self):
        if not self._intr_q and not self._repairs and not self._probe_results:
            yield self.wakeup_future()
        while self._intr_q:
            intr = self._intr_q.popleft()
            yield from self._handle_interrupt(intr)
        while self._repairs:
            self._start_probe(self._repairs.popleft())
        while self._probe_results:
            rid, found = self._probe_results.popleft()
            yield from self._conclude_probe(rid, found)

    def _handle_interrupt(self, intr: Interrupt) -> Generator:
        if intr.kind is InterruptKind.REQUEST:
            yield from self._on_request_interrupt(intr)
        elif intr.kind is InterruptKind.COMPLETION:
            yield from self._on_completion(intr)
        elif intr.kind is InterruptKind.CRASH:
            yield from self._on_crash_interrupt(intr)

    # ------------------------------------------------------------------
    # incoming requests
    # ------------------------------------------------------------------
    def _on_request_interrupt(self, intr: Interrupt) -> Generator:
        kind = intr.oob.get("kind")
        if kind == "freeze":
            yield from self.freezer.on_freeze_request(intr)
            return
        if kind == "unfreeze":
            yield from self.freezer.on_unfreeze_request(intr)
            return
        ref = self.name_to_ref.get(intr.name)
        if ref is None:
            # not ours any more: the cache answers with a redirect
            new_owner = self.cache.get(intr.name)
            if new_owner is not None:
                yield self.port.accept(
                    intr.rid, oob={"kind": "moved", "to": new_owner}
                )
                self.metrics.count("soda.redirects_served")
            else:
                # truly unknown; leave it pending (its sender's probes
                # will eventually repair or give up)
                self.metrics.count("soda.unknown_name_requests")
            return
        se = self.sref.get(ref)
        if se is None:  # mid-teardown
            self.metrics.count("soda.unknown_name_requests")
            return
        se.incoming_rids[intr.rid] = intr
        if kind == "req":
            se.pending_reqs.append(intr)
            # availability may unblock a wait_request at this block point
        elif kind == "rep":
            yield from self._accept_reply(se, intr)
        elif kind == "sig":
            # a status signal parks here until destroy/move (§4.2)
            self.metrics.count("soda.signals_received")

    def _accept_reply(self, se: _SodaEnd, intr: Interrupt) -> Generator:
        es = self.ends.get(se.ref)
        if not self.reply_wanted(es, intr.oob.get("reply_to", -1)):
            # zero-length accept; the OOB tells the replier the request
            # was aborted — no acknowledgment traffic needed (§6)
            se.incoming_rids.pop(intr.rid, None)
            yield self.port.accept(intr.rid, oob={"kind": "aborted"}, nrecv=0)
            self.metrics.count("soda.aborted_reply_refusals")
            return
        se.incoming_rids.pop(intr.rid, None)
        status, data = yield self.port.accept(
            intr.rid, oob={}, nrecv=intr.nsend
        )
        if status is AcceptStatus.OK and data is not None:
            self.deliver_reply(se.ref, data)

    # ------------------------------------------------------------------
    # completions and crashes for our own requests
    # ------------------------------------------------------------------
    def _on_completion(self, intr: Interrupt) -> Generator:
        if self.freezer.on_completion_maybe(intr):
            return
        snd = self.sends.pop(intr.rid, None)
        if snd is None:
            return
        if snd.timer is not None:
            snd.timer.cancel()
        oob_kind = intr.oob.get("kind")
        if oob_kind == "moved":
            # §4.2: "uses the out-of-band information to tell the other
            # process where it moved its end" — follow the redirect
            new_owner = intr.oob.get("to", snd.ref and "")
            se = self.sref.get(snd.ref)
            if se is not None:
                se.hint = new_owner
                self.metrics.count("soda.redirects_followed")
                yield from self._repost(se, snd)
            return
        if oob_kind == "destroyed":
            self._drop_signal(snd)
            # a zero-length 'destroyed' accept transferred nothing: any
            # enclosures in the refused message are still ours (§6
            # item 3 — acceptance IS receipt, and this wasn't one)
            if snd.msg is not None:
                self._restore_enclosures(snd.msg)
            self.notify_destroyed(snd.ref, "link destroyed by peer")
            return
        if oob_kind == "aborted":
            if snd.msg is not None:
                self.notify_reply_aborted(snd.ref, snd.msg.seq)
            return
        if snd.kind in ("req", "rep") and snd.msg is not None:
            # acceptance IS receipt under SODA; the completion's sender
            # field is the accepter — the moved ends' new owner
            for enc in snd.msg.enclosures:
                yield from self._after_enclosure_moved(enc, intr.frm)
            self.notify_receipt(snd.ref, snd.msg.seq)

    def _drop_signal(self, snd: _Send) -> None:
        se = self.sref.get(snd.ref)
        if se is not None and se.signal_rid is not None:
            se.signal_rid = None

    def _on_crash_interrupt(self, intr: Interrupt) -> Generator:
        """The hinted process died.  Maybe the link died with it; maybe
        our hint was just stale (the end moved before the death).  Try
        to find the end before declaring destruction (§4.2)."""
        if self.freezer.on_completion_maybe(intr):
            return
        snd = self.sends.pop(intr.rid, None)
        if snd is None:
            return
        if snd.timer is not None:
            snd.timer.cancel()
        self._drop_signal(snd)
        yield from self._find_or_destroy(snd)

    # ------------------------------------------------------------------
    # hint repair: probe timers, discover, freeze
    # ------------------------------------------------------------------
    def _arm_timer(self, rid: int, snd: _Send) -> None:
        def fire() -> None:
            if rid in self.sends:
                self._repairs.append(rid)
                self._wake()

        snd.timer = self.engine.schedule(self.costs.hint_timeout_ms, fire)

    def _start_probe(self, rid: int) -> None:
        """A request has been outstanding suspiciously long: check the
        hint with a discover, asynchronously (the dispatcher keeps
        running; the result is handled at a later block point)."""
        snd = self.sends.get(rid)
        if snd is None:
            return
        se = self.sref.get(snd.ref)
        if se is None:
            return
        snd.probes += 1
        self.metrics.count("soda.hint_probes")
        fut = self.port.discover(se.far_name)

        def on_result(f) -> None:
            self._probe_results.append((rid, f.value))
            self._wake()

        fut.add_done_callback(on_result)

    def _conclude_probe(self, rid: int, found: Optional[str]) -> Generator:
        """Act on a probe's discover result.  A healthy-but-closed
        receiver is normal — the probe just confirms the hint and backs
        off."""
        snd = self.sends.get(rid)
        if snd is None:
            return
        se = self.sref.get(snd.ref)
        if se is None:
            return
        if found == se.hint:
            # hint fine; the far end is just not accepting (closed
            # queue).  Back off exponentially.
            backoff = self.costs.hint_timeout_ms * (2 ** min(snd.probes, 6))

            def refire() -> None:
                if rid in self.sends:
                    self._repairs.append(rid)
                    self._wake()

            snd.timer = self.engine.schedule(backoff, refire)
            return
        if found is not None:
            se.hint = found
            self.metrics.count("soda.hints_repaired_by_discover")
            self.sends.pop(rid, None)
            yield self.port.withdraw(rid)
            yield from self._repost(se, snd)
            return
        if snd.probes < self.costs.discover_attempts:
            self._repairs.append(rid)
            return
        # last resort: the freeze search (§4.2), then give up
        self.sends.pop(rid, None)
        yield self.port.withdraw(rid)
        yield from self._find_or_destroy(snd)

    def _find_or_destroy(self, snd: _Send) -> Generator:
        se = self.sref.get(snd.ref)
        if se is None:
            return
        for _ in range(self.costs.discover_attempts):
            found = yield self.port.discover(se.far_name)
            if found is not None and found != self.name:
                se.hint = found
                self.metrics.count("soda.hints_repaired_by_discover")
                yield from self._repost(se, snd)
                return
        hint = yield from self.freezer.search(se.far_name)
        if hint is not None and hint != self.name:
            se.hint = hint
            self.metrics.count("soda.hints_repaired_by_freeze")
            yield from self._repost(se, snd)
            return
        # "A process that is unable to find the far end of a link must
        # assume it has been destroyed." (§4.2)  Unaccepted messages
        # were never received: their enclosures are still ours.
        self.metrics.count("soda.links_presumed_destroyed")
        if snd.msg is not None:
            self._restore_enclosures(snd.msg)
        yield from self._withdraw_sends_on(snd.ref, restore=True)
        self.notify_destroyed(snd.ref, "crash: far end unreachable", crash=True)

    def _withdraw_sends_on(self, ref: EndRef, restore: bool = False) -> Generator:
        """Withdraw every outstanding send of ours on ``ref``; with
        ``restore`` the enclosures of unaccepted (never received)
        messages come back to us."""
        for rid, snd in list(self.sends.items()):
            if snd.ref == ref:
                if snd.timer is not None:
                    snd.timer.cancel()
                self.sends.pop(rid, None)
                yield self.port.withdraw(rid)
                if restore and snd.msg is not None:
                    self._restore_enclosures(snd.msg)

    def _repost(self, se: _SodaEnd, snd: _Send) -> Generator:
        if snd.kind == "sig":
            se.signal_rid = None
            yield from self._post_signal(se)
            return
        assert snd.msg is not None
        rid = yield self.port.request(
            se.hint,
            se.far_name,
            {"kind": snd.kind, "seq": snd.msg.seq, "reply_to": snd.msg.reply_to},
            nsend=snd.msg.wire_size,
            data=snd.msg,
        )
        new = _Send(se.ref, snd.msg, snd.kind)
        self.sends[rid] = new
        self._arm_timer(rid, new)
        self.metrics.count("soda.reposts")

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def rt_startup(self):
        yield from self.freezer.startup()

    def rt_new_link(self):
        link = self.registry.alloc_link(self.name, self.name)
        name_a = yield self.port.new_name()
        name_b = yield self.port.new_name()
        yield self.port.advertise(name_a)
        yield self.port.advertise(name_b)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        self.sref[ref_a] = _SodaEnd(ref_a, name_a, name_b, self.name)
        self.sref[ref_b] = _SodaEnd(ref_b, name_b, name_a, self.name)
        self.name_to_ref[name_a] = ref_a
        self.name_to_ref[name_b] = ref_b
        return ref_a, ref_b

    def preload_soda_end(self, ref: EndRef, my_name: int, far_name: int,
                         hint: str) -> None:
        """Cluster-side installation of an initial link end."""
        self.sref[ref] = _SodaEnd(ref, my_name, far_name, hint)
        self.name_to_ref[my_name] = ref
        self.cluster.kernel.advertise(self.name, my_name)

    def _se(self, ref: EndRef) -> _SodaEnd:
        se = self.sref.get(ref)
        if se is None:
            raise ProtocolViolation(f"{self.name} has no SODA state for {ref}")
        return se

    def rt_send_request(self, es: EndState, msg: WireMessage):
        yield from self._put(es, msg, "req")

    def rt_send_reply(self, es: EndState, msg: WireMessage):
        yield from self._put(es, msg, "rep")

    def _put(self, es: EndState, msg: WireMessage, kind: str):
        se = self._se(es.ref)
        rid = yield self.port.request(
            se.hint,
            se.far_name,
            {"kind": kind, "seq": msg.seq, "reply_to": msg.reply_to},
            nsend=msg.wire_size,
            data=msg,
        )
        snd = _Send(es.ref, msg, kind)
        self.sends[rid] = snd
        self._arm_timer(rid, snd)
        self.metrics.count(f"wire.messages.{msg.kind.value}")

    def rt_sync_interest(self, es: EndState):
        """Post a status signal toward the far end whenever we are
        interested in receiving on this link (§4.2)."""
        se = self.sref.get(es.ref)
        if se is None or es.lifecycle is not EndLifecycle.OWNED:
            return
        want = es.queue_open or es.reply_queue_open
        if want and se.signal_rid is None:
            yield from self._post_signal(se)
        elif not want and se.signal_rid is not None:
            # interest ended: withdraw the signal so the link goes
            # genuinely dormant (the §4.2 case where a later move costs
            # a hint repair rather than a free move-time redirect)
            rid, se.signal_rid = se.signal_rid, None
            self.sends.pop(rid, None)
            yield self.port.withdraw(rid)

    def _post_signal(self, se: _SodaEnd):
        rid = yield self.port.request(
            se.hint, se.far_name, {"kind": "sig"}, nsend=0, nrecv=0
        )
        se.signal_rid = rid
        # no probe timer: a status signal is SUPPOSED to stay pending
        # until the far end dies (CRASH interrupt), destroys the link,
        # or moves its end (zero-accept with OOB) — §4.2
        self.sends[rid] = _Send(se.ref, None, "sig")
        self.metrics.count("soda.signals_posted")

    def rt_request_available(self, es: EndState) -> bool:
        se = self.sref.get(es.ref)
        return bool(se and se.pending_reqs)

    def rt_take_request(self, es: EndState):
        se = self._se(es.ref)
        while se.pending_reqs:
            intr = se.pending_reqs.popleft()
            se.incoming_rids.pop(intr.rid, None)
            status, data = yield self.port.accept(
                intr.rid, oob={}, nrecv=intr.nsend
            )
            if status is AcceptStatus.OK and data is not None:
                return data
            # withdrawn (aborted before receipt): try the next one
            self.metrics.count("soda.accepts_of_withdrawn")
        return None

    def rt_destroy(self, es: EndState, reason: str):
        se = self.sref.pop(es.ref, None)
        if se is None:
            return
        # §4.2: accept every previously-posted request from the far end
        # with zero-length buffers, mentioning the destruction
        why = self.crash_tagged(reason)
        for rid in list(se.incoming_rids):
            yield self.port.accept(
                rid, oob={"kind": "destroyed", "why": why}, nrecv=0
            )
        se.incoming_rids.clear()
        # withdraw our own outstanding traffic on this end
        yield from self._withdraw_sends_on(es.ref)
        yield self.port.unadvertise(se.my_name)
        self.name_to_ref.pop(se.my_name, None)

    def rt_abort_connect(self, es: EndState, waiter):
        for rid, snd in list(self.sends.items()):
            if (
                snd.ref == es.ref
                and snd.msg is not None
                and snd.msg.seq == waiter.seq
                and snd.kind == "req"
            ):
                ok = yield self.port.withdraw(rid)
                if ok:
                    if snd.timer is not None:
                        snd.timer.cancel()
                    self.sends.pop(rid, None)
                    self.metrics.count("soda.aborts_withdrawn")
                    return True
                return False
        # already accepted (received): the abort will surface when the
        # reply put arrives and we zero-accept it with OOB 'aborted'
        return False

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def rt_export_end(self, es: EndState) -> dict:
        se = self._se(es.ref)
        return {
            "my_name": se.my_name,
            "far_name": se.far_name,
            "hint": se.hint,
        }

    def rt_adopt_end(self, ref: EndRef, meta: dict):
        se = _SodaEnd(ref, meta["my_name"], meta["far_name"], meta["hint"])
        self.sref[ref] = se
        self.name_to_ref[se.my_name] = ref
        yield self.port.advertise(se.my_name)

    def _after_enclosure_moved(self, enc: EndRef, new_owner: str) -> Generator:
        """Our message carrying ``enc`` was accepted: the end now lives
        with ``new_owner``.  §4.2: accept any previously-posted request
        from the far end, redirecting it; then cache the name (and keep
        it advertised) so stale hints repair cheaply."""
        se = self.sref.pop(enc, None)
        if se is None:
            return
        for rid in list(se.incoming_rids):
            yield self.port.accept(
                rid, oob={"kind": "moved", "to": new_owner}, nrecv=0
            )
            self.metrics.count("soda.move_redirect_accepts")
        se.incoming_rids.clear()
        # withdraw our own signal on the moved end
        if se.signal_rid is not None:
            snd = self.sends.pop(se.signal_rid, None)
            if snd is not None and snd.timer is not None:
                snd.timer.cancel()
            yield self.port.withdraw(se.signal_rid)
        self.name_to_ref.pop(se.my_name, None)
        self.cache[se.my_name] = new_owner
        self.cache.move_to_end(se.my_name)
        self.metrics.count("soda.cache_inserts")
        while len(self.cache) > self.cache_size:
            old_name, _ = self.cache.popitem(last=False)
            # forgetting: the name is unadvertised; later seekers must
            # fall back to discover (§4.2's "If A has forgotten")
            yield self.port.unadvertise(old_name)
            self.metrics.count("soda.cache_evictions")

