"""The SODA cluster: kernel processors on a CSMA bus."""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.links import EndRef
from repro.sim.failure import CrashMode
from repro.sim.network import CSMABus
from repro.soda.kernel import SodaKernel
from repro.soda.runtime import SodaRuntime


class SodaCluster(ClusterBase):
    """A SODA network (§4.1): many two-processor nodes on a 1 Mbit/s
    CSMA bus.

    Extra options
    -------------
    broadcast_loss : float
        Probability an unreliable-broadcast (discover) frame misses a
        given receiver — the E9 sweep parameter.  The paper: "without
        reasonable assumptions about the reliability of SODA
        broadcasts, it is impossible to predict the success rate of
        the heuristics."
    pair_request_limit : int
        §4.2.1's outstanding-request limit (E10 sweep parameter).
    cache_size : int
        Entries in each process's moved-link cache (§4.2).
    """

    KIND = "soda"

    def __init__(
        self,
        seed=0,
        costmodel=None,
        nodes: int = 64,
        broadcast_loss: float = 0.0,
        pair_request_limit: Optional[int] = None,
        cache_size: int = 64,
        profile: bool = False,
        **engine_kw,
    ) -> None:
        self.broadcast_loss = broadcast_loss
        self.pair_request_limit = pair_request_limit
        self.cache_size = cache_size
        super().__init__(seed=seed, costmodel=costmodel, nodes=nodes,
                         profile=profile, **engine_kw)

    def _setup_hardware(self) -> None:
        costs = self.costmodel.soda
        if self.pair_request_limit is not None:
            costs = replace(costs, pair_request_limit=self.pair_request_limit)
        #: the (possibly overridden) profile kernel and runtimes read
        self.soda_costs = costs
        self.bus = CSMABus(
            self.engine,
            metrics=self.metrics,
            rng=self.rng.child("bus"),
            rate_mbit=costs.bus_rate_mbit,
            base_access_ms=costs.bus_access_ms,
            max_backoff_ms=costs.bus_backoff_ms,
            broadcast_loss=self.broadcast_loss,
        )
        self.kernel = SodaKernel(
            self.engine, self.metrics, costs, self.bus, self.registry,
            spans=self.spans,
        )

    def make_runtime(self, handle: ProcessHandle) -> SodaRuntime:
        return SodaRuntime(handle, self)

    def runtime_exited(self, runtime) -> None:
        self.kernel.process_died(runtime.name)

    def create_link(self, a: ProcessHandle, b: ProcessHandle) -> None:
        link = self.registry.alloc_link(a.name, b.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        name_a = self.kernel.new_name()
        name_b = self.kernel.new_name()
        a.runtime.preload_end(ref_a)
        a.runtime.preload_soda_end(ref_a, name_a, name_b, b.name)
        b.runtime.preload_end(ref_b)
        b.runtime.preload_soda_end(ref_b, name_b, name_a, a.name)

    def on_crash(self, handle: ProcessHandle, mode: CrashMode) -> None:
        # the kernel processor outlives its client processor and
        # notifies requesters of the death (§4.1) in every crash mode
        if mode is CrashMode.PROCESSOR:
            self.kernel.process_died(handle.name)
        # TERMINATE/FAULT: the runtime clean-up destroys links itself
        # and then reports the death in rt_shutdown
