"""The freeze/unfreeze absolute search for lost links (paper §4.2).

When hints, the cache, and discover all fail, the paper sketches a
fall-back that is guaranteed to find a live link end:

  "• Every process advertises a freeze name.  When C discovers its
  hint for L is bad, it posts a SODA request on the freeze name of
  every process currently in existence (SODA makes it easy to guess
  their ids).  It includes the name of L in the request.
  • Each process accepts a freeze request immediately, ceases
  execution of everything but its own searches, increments a counter,
  and posts an unfreeze request with C.  If it has a hint for L, it
  includes that hint in the freeze accept or the unfreeze request.
  • When C obtains a new hint or has unsuccessfully queried everyone,
  it accepts the unfreeze requests.  When a frozen process feels an
  interrupt indicating that its unfreeze request has been accepted or
  that C has crashed, it decrements its counter.  If the counter hits
  zero, it continues execution.  The existence of the counter permits
  multiple concurrent searches."

"This algorithm has the considerable disadvantage of bringing every
LYNX process in existence to a temporary halt" — which experiment E9
quantifies (frozen process-milliseconds per search).

Idealisation (documented): freeze names are derived deterministically
from process ids (``("freeze", pid)``) rather than discovered; the
paper's "easy to guess" remark licenses this.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Optional, Set, TYPE_CHECKING

from repro.soda.kernel import AcceptStatus, Interrupt, InterruptKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.soda.runtime import SodaRuntime


def freeze_name_of(pid: str):
    return ("freeze", pid)


class _Search:
    """Bookkeeping for one search this process is running (as C)."""

    def __init__(self, target_name: int, peers: List[str]) -> None:
        self.target_name = target_name
        self.awaiting: Set[str] = set(peers)
        self.hint: Optional[str] = None
        #: unfreeze request rids received, to accept when concluding
        self.unfreeze_rids: List[int] = []
        self.done: bool = False


class FreezeManager:
    """Both sides of the protocol for one process: freezing when asked,
    and searching (freezing everyone else) when desperate."""

    def __init__(self, runtime: "SodaRuntime") -> None:
        self.runtime = runtime
        #: searches we are running, by target link-end name
        self.active: Dict[int, _Search] = {}
        #: our pending unfreeze request rid, by searcher — so stray
        #: accept-completions decrement the right counter
        self._unfreeze_out: Dict[str, int] = {}
        self._froze_at: Dict[str, float] = {}

    # ------------------------------------------------------------------
    def startup(self) -> Generator:
        yield self.runtime.port.advertise(freeze_name_of(self.runtime.name))

    # ------------------------------------------------------------------
    # the frozen side
    # ------------------------------------------------------------------
    def on_freeze_request(self, intr: Interrupt) -> Generator:
        """Accept immediately, halt, and post an unfreeze request back
        to the searcher."""
        rt = self.runtime
        searcher = intr.oob["searcher"]
        target = intr.oob["target"]
        hint = self._any_hint_for(target)
        yield rt.port.accept(
            intr.rid, oob={"kind": "freeze-ack", "hint": hint}
        )
        rt.frozen_count += 1
        self._froze_at[searcher] = rt.engine.now
        rt.metrics.count("soda.freeze.frozen")
        rid = yield rt.port.request(
            searcher,
            intr.oob["unfreeze_name"],
            {"kind": "unfreeze", "hint": hint, "frozen": rt.name},
        )
        self._unfreeze_out[searcher] = rid

    def on_completion_maybe(self, intr: Interrupt) -> bool:
        """Route a completion/crash for one of our unfreeze requests;
        returns True if it was one."""
        for searcher, rid in list(self._unfreeze_out.items()):
            if rid == intr.rid:
                self.on_unfreeze_accepted(searcher)
                return True
        return False

    def on_unfreeze_accepted(self, searcher: str) -> None:
        """Our unfreeze request was accepted (or the searcher crashed):
        decrement; at zero, run again."""
        rt = self.runtime
        if searcher in self._unfreeze_out:
            self._unfreeze_out.pop(searcher, None)
            rt.frozen_count = max(0, rt.frozen_count - 1)
            start = self._froze_at.pop(searcher, rt.engine.now)
            rt.metrics.count("soda.freeze.frozen_ms", rt.engine.now - start)
            if rt.frozen_count == 0:
                rt._wake()

    def _any_hint_for(self, target_name: int) -> Optional[str]:
        rt = self.runtime
        # do we own the end itself?
        if target_name in rt.name_to_ref:
            return rt.name
        # or remember where it went?  (the far name of an end we own
        # also locates it: its owner is our hint)
        cached = rt.cache.get(target_name)
        if cached is not None:
            return cached
        for se in rt.sref.values():
            if se.far_name == target_name:
                return se.hint
        return None

    # ------------------------------------------------------------------
    # the searching side (C)
    # ------------------------------------------------------------------
    def on_unfreeze_request(self, intr: Interrupt) -> Generator:
        """A frozen process posted its unfreeze request with us."""
        target = None
        for t, search in self.active.items():
            if not search.done:
                target = t
                break
        hint = intr.oob.get("hint")
        if target is not None:
            search = self.active[target]
            search.unfreeze_rids.append(intr.rid)
            search.awaiting.discard(intr.oob.get("frozen", ""))
            if hint and search.hint is None:
                search.hint = hint
        else:
            # no active search (stragglers after conclusion): release
            # the poor frozen process immediately
            yield self.runtime.port.accept(intr.rid, oob={})

    def search(self, target_name: int) -> Generator:
        """Freeze the world and ask everyone about ``target_name``.
        Returns a hint (process id) or None."""
        rt = self.runtime
        rt.metrics.count("soda.freeze.searches")
        unfreeze_name = yield rt.port.new_name()
        yield rt.port.advertise(unfreeze_name)
        peers = [p for p in rt.cluster.kernel.process_ids() if p != rt.name]
        search = _Search(target_name, peers)
        self.active[target_name] = search
        freeze_rids = []
        for pid in peers:
            rid = yield rt.port.request(
                pid,
                freeze_name_of(pid),
                {
                    "kind": "freeze",
                    "target": target_name,
                    "searcher": rt.name,
                    "unfreeze_name": unfreeze_name,
                },
            )
            freeze_rids.append(rid)
        # collect freeze-acks (completions carry hints) and unfreeze
        # requests, pumping our own interrupt queue while we wait
        deadline = rt.engine.now + 10_000.0
        while search.awaiting and rt.engine.now < deadline:
            if search.hint is not None:
                break  # "When C obtains a new hint ..."
            if rt._intr_q:
                intr = rt._intr_q.popleft()
                if (
                    intr.kind is InterruptKind.COMPLETION
                    and intr.rid in freeze_rids
                ):
                    hint = intr.oob.get("hint")
                    if hint and search.hint is None:
                        search.hint = hint
                    continue
                if intr.kind is InterruptKind.CRASH and intr.rid in freeze_rids:
                    search.awaiting.discard(intr.frm)
                    continue
                yield from rt._handle_interrupt(intr)
                continue
            yield rt.wakeup_future()
        # "... or has unsuccessfully queried everyone, it accepts the
        # unfreeze requests"
        search.done = True
        for rid in search.unfreeze_rids:
            yield rt.port.accept(rid, oob={})
        self.active.pop(target_name, None)
        yield rt.port.unadvertise(unfreeze_name)
        return search.hint
