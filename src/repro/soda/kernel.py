"""The SODA kernel (paper §4.1), simulated.

"Each node on a SODA network consists of two processors: a client
processor, and an associated kernel processor. ... Every SODA process
has a unique id.  It also advertises a collection of names to which it
is willing to respond.  There is a kernel call to generate new names,
unique over space and time.  The discover kernel call uses unreliable
broadcast in an attempt to find a process that has advertised a given
name.

Processes do not necessarily send messages, rather they request the
transfer of data. ... The four varieties of request are termed put,
get, signal, and exchange. ... A process feels a software interrupt
when its id and one of its advertised names are specified in a request
from some other process. ... At any time, a process can accept a
request that was made of it at some time in the past. ... data is
transferred in both directions simultaneously ... the requester feels
a software interrupt informing it of the completion. ... If a process
dies before accepting a request, the requester feels an interrupt that
informs it of the crash."

Two modelled limits from §4.2.1:

* out-of-band data is small (the real kernel gave fewer than the ~48
  bits LYNX wanted) — we carry a small dict and charge a fixed OOB
  size; DESIGN.md records the idealisation;
* the "permissible number of outstanding requests between a given pair
  of processes" — ``pair_request_limit`` — beyond which requests queue
  at the sending kernel, which is what makes E10's deadlock possible.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.analysis.costmodel import SodaCosts
from repro.sim.engine import Engine
from repro.sim.futures import Future
from repro.sim.metrics import MetricSet
from repro.sim.network import CSMABus

#: bytes charged for a request/interrupt control frame (id, name, oob,
#: sizes — the small-OOB regime of §4.2.1)
CONTROL_FRAME_BYTES = 24


class InterruptKind(enum.Enum):
    #: someone requested a transfer naming us
    REQUEST = "request"
    #: a request of ours was accepted; transfer done
    COMPLETION = "completion"
    #: the process our request targeted died first (§4.1)
    CRASH = "crash"


class AcceptStatus(enum.Enum):
    OK = "ok"
    #: the requester withdrew (or died) before the accept
    WITHDRAWN = "withdrawn"


class _ReqState(enum.Enum):
    #: waiting at the sending kernel for a pair-limit slot
    QUEUED = "queued"
    #: visible (or deliverable) at the target
    PENDING = "pending"
    ACCEPTED = "accepted"
    WITHDRAWN = "withdrawn"
    CRASHED = "crashed"


@dataclass
class _Request:
    rid: int
    frm: str
    to: str
    name: int
    oob: dict
    nsend: int
    nrecv: int
    data: Any
    state: _ReqState
    #: interrupt delivered to the target? (only if the name was
    #: advertised; otherwise it parks invisibly, §4.2's stale-hint case)
    delivered: bool = False


@dataclass
class _SodaProc:
    name: str
    node: int
    handler: Optional[Callable[["Interrupt"], None]] = None
    advertised: set = field(default_factory=set)
    dead: bool = False


@dataclass
class Interrupt:
    kind: InterruptKind
    rid: int
    frm: str = ""
    name: int = 0
    oob: dict = field(default_factory=dict)
    nsend: int = 0
    nrecv: int = 0
    #: COMPLETION: data sent back by the accepter
    data: Any = None


class SodaKernel:
    """All kernel processors of a SODA network (their cooperation is
    modelled centrally; inter-node frames ride the CSMA bus)."""

    def __init__(
        self,
        engine: Engine,
        metrics: MetricSet,
        costs: SodaCosts,
        bus: CSMABus,
        registry,
        spans=None,
    ) -> None:
        self.engine = engine
        self.metrics = metrics
        self.costs = costs
        self.bus = bus
        self.registry = registry
        #: causal SpanTracker of the owning cluster (None for bare
        #: kernel tests); span-carrying transfers open kernel/network
        #: child spans.  NOTE: ``bus.transit_time`` draws from the rng,
        #: so every instrumented site calls it exactly once and reuses
        #: the bound value for both the delay and the span boundaries.
        self.spans = spans
        self._procs: Dict[str, _SodaProc] = {}
        self._requests: Dict[int, _Request] = {}
        self._next_rid = 1
        self._next_name = 1
        #: per (frm, to): rids counting toward the pair limit
        self._pair_load: Dict[Tuple[str, str], int] = {}
        self._pair_queue: Dict[Tuple[str, str], Deque[int]] = {}

    # ------------------------------------------------------------------
    # processes
    # ------------------------------------------------------------------
    def register_process(self, name: str, node: int) -> "SodaPort":
        self._procs[name] = _SodaProc(name, node)
        return SodaPort(self, name)

    def process_ids(self) -> List[str]:
        """"SODA makes it easy to guess their ids" (§4.2) — the freeze
        algorithm enumerates every live process."""
        return [p.name for p in self._procs.values() if not p.dead]

    def process_died(self, name: str) -> None:
        proc = self._procs.get(name)
        if proc is None or proc.dead:
            return
        proc.dead = True
        proc.advertised.clear()
        proc.handler = None
        for req in list(self._requests.values()):
            if req.state in (_ReqState.PENDING, _ReqState.QUEUED):
                if req.to == name:
                    # "the requester feels an interrupt that informs it
                    # of the crash" (§4.1)
                    req.state = _ReqState.CRASHED
                    self._release_pair(req)
                    self._interrupt(
                        req.frm,
                        Interrupt(InterruptKind.CRASH, req.rid, frm=name,
                                  name=req.name, oob=req.oob),
                    )
                elif req.frm == name:
                    req.state = _ReqState.WITHDRAWN
                    self._release_pair(req)

    # ------------------------------------------------------------------
    # names
    # ------------------------------------------------------------------
    def new_name(self) -> int:
        n = self._next_name
        self._next_name += 1
        return n

    def advertise(self, caller: str, name: int) -> None:
        self._procs[caller].advertised.add(name)
        self.metrics.count("soda.advertise")
        # a parked request for this (proc, name) can now be delivered
        for req in self._requests.values():
            if (
                req.to == caller
                and req.name == name
                and req.state is _ReqState.PENDING
                and not req.delivered
            ):
                self._deliver(req)

    def unadvertise(self, caller: str, name: int) -> None:
        self._procs[caller].advertised.discard(name)

    def discover(self, caller: str, name: int) -> Future:
        """Unreliable broadcast query (§4.1): resolves with a process id
        advertising ``name``, or None after the timeout."""
        self.metrics.count("soda.discover")
        fut = Future(self.engine, f"{caller}.discover")
        responders: List[str] = []

        def hear(proc: _SodaProc) -> None:
            if not proc.dead and name in proc.advertised:
                responders.append(proc.name)

        others = [p for p in self._procs.values() if p.name != caller]
        self.bus.broadcast(
            CONTROL_FRAME_BYTES,
            [(lambda p=p: hear(p)) for p in others],
            kind="discover",
        )

        def conclude() -> None:
            if fut.is_settled():
                return
            if responders:
                # response unicast arrives within the window
                fut.resolve(responders[0])
            else:
                fut.resolve(None)

        self.engine.schedule(
            self.costs.discover_cost_ms + self.costs.discover_timeout_ms, conclude
        )
        return fut

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def request(
        self,
        caller: str,
        to: str,
        name: int,
        oob: dict,
        nsend: int,
        nrecv: int,
        data: Any,
    ) -> int:
        rid = self._next_rid
        self._next_rid += 1
        req = _Request(
            rid, caller, to, name, dict(oob), nsend, nrecv, data,
            _ReqState.QUEUED,
        )
        self._requests[rid] = req
        self.metrics.count("soda.requests")
        target = self._procs.get(to)
        if target is None or target.dead:
            # dead on arrival: immediate crash interrupt
            req.state = _ReqState.CRASHED
            self._interrupt(
                caller,
                Interrupt(InterruptKind.CRASH, rid, frm=to, name=name, oob=oob),
            )
            return rid
        pair = (caller, to)
        if self._pair_load.get(pair, 0) >= self.costs.pair_request_limit:
            # §4.2.1: over the outstanding-request limit the request
            # waits at the sending kernel — invisibly to everyone
            self._pair_queue.setdefault(pair, deque()).append(rid)
            self.metrics.count("soda.pair_limit_queued")
            return rid
        self._admit(req)
        return rid

    def _admit(self, req: _Request) -> None:
        pair = (req.frm, req.to)
        self._pair_load[pair] = self._pair_load.get(pair, 0) + 1
        req.state = _ReqState.PENDING
        target = self._procs.get(req.to)
        if target is not None and req.name in target.advertised:
            self._deliver(req)
        # else: parked until the name is advertised (stale-hint case)

    def _deliver(self, req: _Request) -> None:
        req.delivered = True
        intr = Interrupt(
            InterruptKind.REQUEST,
            req.rid,
            frm=req.frm,
            name=req.name,
            oob=req.oob,
            nsend=req.nsend,
            nrecv=req.nrecv,
        )
        net = self.bus.transit_time(CONTROL_FRAME_BYTES)
        delay = net + self.costs.interrupt_ms
        self.metrics.count("wire.frames.soda-request")
        self.metrics.count("wire.bytes", CONTROL_FRAME_BYTES)
        span = getattr(req.data, "span", None)
        if span is not None and self.spans is not None:
            now = self.engine.now
            self.spans.emit(span, "network", "bus:request", "bus",
                            now, now + net)
            self.spans.emit(span, "kernel", "interrupt", req.to,
                            now + net, now + delay)
        self.engine.schedule(delay, self._interrupt_now, req.to, intr)

    def _release_pair(self, req: _Request) -> None:
        pair = (req.frm, req.to)
        if req.state is not _ReqState.QUEUED:
            self._pair_load[pair] = max(0, self._pair_load.get(pair, 0) - 1)
        queue = self._pair_queue.get(pair)
        while queue:
            nxt = self._requests[queue.popleft()]
            if nxt.state is _ReqState.QUEUED:
                self._admit(nxt)
                break

    def accept(
        self,
        caller: str,
        rid: int,
        oob: dict,
        nsend: int,
        nrecv: int,
        data: Any,
    ) -> Future:
        """Complete a past request: "data is transferred in both
        directions simultaneously ... The amount of data transferred in
        each direction is the smaller of the specified amounts."

        Resolves with (status, data_from_requester).
        """
        fut = Future(self.engine, f"{caller}.accept")
        req = self._requests.get(rid)
        if req is None or req.to != caller or req.state in (
            _ReqState.WITHDRAWN,
            _ReqState.CRASHED,
        ):
            fut.resolve_later(
                self.costs.accept_syscall_ms, (AcceptStatus.WITHDRAWN, None)
            )
            return fut
        if req.state is not _ReqState.PENDING:
            fut.resolve_later(
                self.costs.accept_syscall_ms, (AcceptStatus.WITHDRAWN, None)
            )
            return fut
        req.state = _ReqState.ACCEPTED
        self._release_pair(req)
        to_accepter = req.data if min(req.nsend, nrecv) > 0 else None
        to_requester = data if min(nsend, req.nrecv) > 0 else None
        moved = min(req.nsend, nrecv) + min(nsend, req.nrecv)
        net = self.bus.transit_time(moved + CONTROL_FRAME_BYTES)
        delay = (
            self.costs.accept_syscall_ms
            + self.costs.transfer_fixed_ms
            + self.costs.transfer_per_byte_ms * moved
            + net
        )
        self.metrics.count("soda.accepts")
        self.metrics.count("wire.frames.soda-transfer")
        self.metrics.count("wire.bytes", moved + CONTROL_FRAME_BYTES)
        span = (getattr(req.data, "span", None)
                or getattr(data, "span", None))
        if span is not None and self.spans is not None:
            now = self.engine.now
            self.spans.emit(span, "kernel", "accept-transfer", caller,
                            now, now + delay - net)
            self.spans.emit(span, "network", "bus:transfer", "bus",
                            now + delay - net, now + delay)

        def finish() -> None:
            fut.resolve((AcceptStatus.OK, to_accepter))
            self._interrupt(
                req.frm,
                Interrupt(
                    InterruptKind.COMPLETION,
                    rid,
                    frm=caller,
                    name=req.name,
                    oob=dict(oob),
                    data=to_requester,
                ),
            )

        self.engine.schedule(delay, finish)
        return fut

    def withdraw(self, caller: str, rid: int) -> bool:
        """Documented extension (see package docstring): retract an
        unaccepted request."""
        req = self._requests.get(rid)
        if req is None or req.frm != caller:
            return False
        if req.state in (_ReqState.PENDING, _ReqState.QUEUED):
            was_queued = req.state is _ReqState.QUEUED
            req.state = _ReqState.WITHDRAWN
            if not was_queued:
                self._release_pair(req)
            self.metrics.count("soda.withdrawals")
            return True
        return False

    def request_state(self, rid: int) -> str:
        req = self._requests.get(rid)
        return "gone" if req is None else req.state.value

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------
    def _interrupt(self, to: str, intr: Interrupt) -> None:
        net = self.bus.transit_time(CONTROL_FRAME_BYTES)
        delay = net + self.costs.interrupt_ms
        self.metrics.count("wire.frames.soda-interrupt")
        self.metrics.count("wire.bytes", CONTROL_FRAME_BYTES)
        span = getattr(intr.data, "span", None)
        if span is not None and self.spans is not None:
            now = self.engine.now
            self.spans.emit(span, "network", "bus:interrupt", "bus",
                            now, now + net)
            self.spans.emit(span, "kernel", "interrupt", to,
                            now + net, now + delay)
        self.engine.schedule(delay, self._interrupt_now, to, intr)

    def _interrupt_now(self, to: str, intr: Interrupt) -> None:
        proc = self._procs.get(to)
        if proc is None or proc.dead or proc.handler is None:
            self.metrics.count("soda.interrupts_dropped")
            return
        self.metrics.count(f"soda.interrupts.{intr.kind.value}")
        proc.handler(intr)


class SodaPort:
    """Per-process kernel interface; bounded calls charge their cost."""

    def __init__(self, kernel: SodaKernel, name: str) -> None:
        self.kernel = kernel
        self.name = name

    def _charged(self, value: Any, cost: float) -> Future:
        fut = Future(self.kernel.engine, f"{self.name}.soda")
        fut.resolve_later(cost, value)
        return fut

    def set_handler(self, fn: Callable[[Interrupt], None]) -> None:
        """"Each process establishes a single handler" (§4.1)."""
        self.kernel._procs[self.name].handler = fn

    def new_name(self) -> Future:
        return self._charged(self.kernel.new_name(), self.kernel.costs.new_name_ms)

    def advertise(self, name: int) -> Future:
        self.kernel.advertise(self.name, name)
        return self._charged(None, self.kernel.costs.advertise_ms)

    def unadvertise(self, name: int) -> Future:
        self.kernel.unadvertise(self.name, name)
        return self._charged(None, self.kernel.costs.advertise_ms)

    def discover(self, name: int) -> Future:
        return self.kernel.discover(self.name, name)

    def request(
        self,
        to: str,
        name: int,
        oob: dict,
        nsend: int = 0,
        nrecv: int = 0,
        data: Any = None,
    ) -> Future:
        rid = self.kernel.request(self.name, to, name, oob, nsend, nrecv, data)
        return self._charged(rid, self.kernel.costs.request_syscall_ms)

    def accept(
        self,
        rid: int,
        oob: Optional[dict] = None,
        nsend: int = 0,
        nrecv: int = 0,
        data: Any = None,
    ) -> Future:
        return self.kernel.accept(self.name, rid, oob or {}, nsend, nrecv, data)

    def withdraw(self, rid: int) -> Future:
        ok = self.kernel.withdraw(self.name, rid)
        return self._charged(ok, self.kernel.costs.request_syscall_ms)
