"""SODA: Kepecs's "Simplified Operating system for Distributed
Applications" (paper §4), and the LYNX design for it.

SODA is the *minimal* kernel of the paper's comparison — "might better
be described as a communications protocol": processes advertise names,
request data transfers toward (process id, name) pairs, feel software
interrupts, and accept past requests whenever they please.  Screening
is therefore entirely receiver-side — an unaccepted request simply
waits — which is exactly why the LYNX runtime for SODA needs none of
Charlotte's retry/forbid/allow machinery (§6).

The paper's SODA implementation of LYNX "was designed on paper only"
(§4.2); this package builds that design: links as name pairs, location
*hints*, the link cache, discover-based hint repair, and the
freeze/unfreeze absolute search (`repro.soda.freeze`).

One liberty, documented in DESIGN.md: the kernel here offers
``withdraw`` so a requester can retract an unaccepted request (needed
when a connect is aborted before receipt).  The paper's kernel has no
such call but already handles requester disappearance (crashes), of
which withdrawal is the scoped version.

Failure semantics (§4.1, docs/FAULTS.md): SODA guarantees almost
nothing — its profile declares ``recovery_placement="runtime"``, so
under an installed `FaultPlan` a dropped message is simply lost and
the runtime's `RecoveryPolicy` (timeout, bounded retry, typed
`RecoveryExhausted`) owns the damage.  E14 shows this hints stance
riding out a partition that stalls Charlotte's absolutes.
"""

from repro.soda.kernel import (
    SodaKernel,
    SodaPort,
    Interrupt,
    InterruptKind,
    AcceptStatus,
)
from repro.soda.runtime import SodaRuntime
from repro.soda.cluster import SodaCluster

__all__ = [
    "SodaKernel",
    "SodaPort",
    "Interrupt",
    "InterruptKind",
    "AcceptStatus",
    "SodaRuntime",
    "SodaCluster",
]
