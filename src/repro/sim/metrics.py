"""Counters and latency statistics.

Every cluster owns one `MetricSet`; kernels count syscalls, wire
messages and bytes into it, runtimes count protocol messages
(request / reply / retry / forbid / allow / goahead / enc — the §3.2.1
vocabulary), and benchmarks read it back to print the paper's tables.

Counter names are plain dotted strings, e.g.::

    kernel.calls.Send          Charlotte syscall count
    wire.messages.request      LYNX-level requests put on the wire
    wire.bytes                 total payload+header bytes transmitted
    runtime.unwanted           messages received and bounced (§3.2.1)
    charlotte.move_msgs        inter-kernel messages for link moves

The full vocabulary and the export formats (JSONL traces, Prometheus
text) are documented in docs/OBSERVABILITY.md; `repro.obs` holds the
exporters.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Iterable, List, Optional, Tuple


class LatencyRecorder:
    """Accumulates individual latency samples (ms) and summarises them.

    Keeps raw samples: the benchmark tables need means, and the fairness
    experiment (E12) needs maxima over service gaps, so summary-only
    accumulation would not do.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return sum(self.samples)

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples) if self.samples else math.nan

    @property
    def minimum(self) -> float:
        return min(self.samples) if self.samples else math.nan

    @property
    def maximum(self) -> float:
        return max(self.samples) if self.samples else math.nan

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self.samples:
            return math.nan
        xs = sorted(self.samples)
        if len(xs) == 1:
            return xs[0]
        rank = (p / 100.0) * (len(xs) - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo == hi:
            return xs[lo]
        frac = rank - lo
        return xs[lo] * (1 - frac) + xs[hi] * frac

    @property
    def stddev(self) -> float:
        n = len(self.samples)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((x - mu) ** 2 for x in self.samples) / (n - 1))

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LatencyRecorder {self.name!r} n={self.count} mean={self.mean:.3f}>"


class MetricSet:
    """A namespace of counters and latency recorders."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._latencies: Dict[str, LatencyRecorder] = {}

    # counters ----------------------------------------------------------
    def count(self, name: str, n: float = 1.0) -> None:
        self._counters[name] += n

    def get(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """All counters whose names start with ``prefix``."""
        return {
            k: v for k, v in sorted(self._counters.items()) if k.startswith(prefix)
        }

    def total(self, prefix: str) -> float:
        """Sum of all counters under ``prefix``."""
        return sum(v for k, v in self._counters.items() if k.startswith(prefix))

    # latency recorders ---------------------------------------------------
    def latency(self, name: str) -> LatencyRecorder:
        rec = self._latencies.get(name)
        if rec is None:
            rec = self._latencies[name] = LatencyRecorder(name)
        return rec

    def latencies(self) -> Dict[str, LatencyRecorder]:
        return dict(self._latencies)

    # utilities -----------------------------------------------------------
    def reset(self) -> None:
        self._counters.clear()
        self._latencies.clear()

    def snapshot(self) -> Dict[str, object]:
        """A nested point-in-time view of the whole set::

            {"counters":  {dotted-name: value, ...},        # sorted
             "latencies": {name: {count, mean, min,
                                  p50, p99, max}, ...}}     # sorted

        The shape is stable (it is what `repro.obs` serialises) and
        equality-comparable across same-seed runs.
        """
        return {
            "counters": dict(sorted(self._counters.items())),
            "latencies": {
                name: rec.summary()
                for name, rec in sorted(self._latencies.items())
            },
        }

    def tree(self) -> Dict[str, object]:
        """Counters expanded along their dots into a nested dict::

            kernel.calls.Send = 5  ->  {"kernel": {"calls": {"Send": 5}}}

        When a name is both a leaf and a prefix (``a`` and ``a.b``),
        the leaf value moves under the empty key: ``{"a": {"": v, "b": w}}``.
        """
        root: Dict[str, object] = {}
        for name, value in sorted(self._counters.items()):
            parts = name.split(".")
            node = root
            for part in parts[:-1]:
                child = node.get(part)
                if not isinstance(child, dict):
                    child = {} if child is None else {"": child}
                    node[part] = child
                node = child
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict):
                node[leaf][""] = value
            else:
                node[leaf] = value
        return root

    def diff(self, before: Dict[str, object]) -> Dict[str, float]:
        """Counter deltas relative to an earlier `snapshot` (either the
        nested form or a bare ``{name: value}`` counter dict)."""
        base = before.get("counters", before)
        out = {}
        for k, v in self._counters.items():
            d = v - base.get(k, 0.0)
            if d:
                out[k] = d
        return out
