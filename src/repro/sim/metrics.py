"""Counters and latency statistics.

Every cluster owns one `MetricSet`; kernels count syscalls, wire
messages and bytes into it, runtimes count protocol messages
(request / reply / retry / forbid / allow / goahead / enc — the §3.2.1
vocabulary), and benchmarks read it back to print the paper's tables.

Counter names are plain dotted strings, e.g.::

    kernel.calls.Send          Charlotte syscall count
    wire.messages.request      LYNX-level requests put on the wire
    wire.bytes                 total payload+header bytes transmitted
    runtime.unwanted           messages received and bounced (§3.2.1)
    charlotte.move_msgs        inter-kernel messages for link moves

Latency recorders are constant-memory: exact running count / total /
min / max (so benchmark means are exact) plus a log-bucketed
`repro.obs.hist.StreamingHistogram` for percentiles (≤1% relative
error, O(occupied buckets) memory, mergeable across shards).  Raw
samples are never retained — the OBS001 lint rule guards against the
pattern reappearing.

The full vocabulary and the export formats (JSONL traces, Prometheus
text) are documented in docs/OBSERVABILITY.md; `repro.obs` holds the
exporters.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.obs.hist import StreamingHistogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.timeseries import TimeSeries


class LatencyRecorder:
    """Accumulates latency samples (ms) into streaming statistics.

    Means, minima and maxima are exact (running scalars accumulated in
    recording order, so values are bit-identical to summing a raw list);
    percentiles come from the embedded `StreamingHistogram` and carry
    its ≤1% quantisation bound; the spread comes from Welford's online
    variance.  `merge` folds another recorder in for cross-shard
    aggregation.
    """

    __slots__ = ("name", "hist", "_mean", "_m2", "sink")

    def __init__(self, name: str = "",
                 sink: Optional[Callable[[str, float], None]] = None) -> None:
        self.name = name
        self.hist = StreamingHistogram()
        self._mean = 0.0  # Welford running mean (stddev only; see mean)
        self._m2 = 0.0
        #: optional per-sample forward (the windowed TimeSeries hook)
        self.sink = sink

    def record(self, value: float) -> None:
        self.hist.record(value)
        delta = value - self._mean
        self._mean += delta / self.hist.count
        self._m2 += delta * (value - self._mean)
        if self.sink is not None:
            self.sink(self.name, value)

    def __len__(self) -> int:
        return self.hist.count

    @property
    def count(self) -> int:
        return self.hist.count

    @property
    def total(self) -> float:
        return self.hist.total

    @property
    def mean(self) -> float:
        """Exact ``total / count`` (not the Welford estimate), so bench
        tables match raw-sample summation bit-for-bit."""
        n = self.hist.count
        return self.hist.total / n if n else math.nan

    @property
    def minimum(self) -> float:
        return self.hist.minimum

    @property
    def maximum(self) -> float:
        return self.hist.maximum

    def percentile(self, p: float) -> float:
        """Interpolated percentile, p in [0, 100]; ≤1% relative error."""
        return self.hist.percentile(p)

    @property
    def stddev(self) -> float:
        n = self.hist.count
        if n < 2:
            return 0.0
        return math.sqrt(self._m2 / (n - 1))

    def merge(self, other: "LatencyRecorder") -> "LatencyRecorder":
        """Fold ``other`` in (Chan's parallel variance + bucket sums)."""
        na, nb = self.hist.count, other.hist.count
        if nb:
            if na:
                delta = other._mean - self._mean
                n = na + nb
                self._mean += delta * nb / n
                self._m2 += other._m2 + delta * delta * na * nb / n
            else:
                self._mean = other._mean
                self._m2 = other._m2
            self.hist.merge(other.hist)
        return self

    def summary(self) -> Dict[str, float]:
        return {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.minimum,
            "p50": self.percentile(50),
            "p99": self.percentile(99),
            "max": self.maximum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LatencyRecorder {self.name!r} n={self.count} mean={self.mean:.3f}>"


class MetricSet:
    """A namespace of counters and latency recorders."""

    def __init__(self) -> None:
        self._counters: Dict[str, float] = defaultdict(float)
        self._latencies: Dict[str, LatencyRecorder] = {}
        self._ts: Optional["TimeSeries"] = None

    # counters ----------------------------------------------------------
    def count(self, name: str, n: float = 1.0) -> None:
        self._counters[name] += n
        if self._ts is not None:
            self._ts.record_count(name, n)

    def get(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self, prefix: str = "") -> Dict[str, float]:
        """All counters whose names start with ``prefix``."""
        return {
            k: v for k, v in sorted(self._counters.items()) if k.startswith(prefix)
        }

    def total(self, prefix: str) -> float:
        """Sum of all counters under ``prefix``."""
        return sum(v for k, v in self._counters.items() if k.startswith(prefix))

    # latency recorders ---------------------------------------------------
    def latency(self, name: str) -> LatencyRecorder:
        rec = self._latencies.get(name)
        if rec is None:
            sink = self._ts.record_latency if self._ts is not None else None
            rec = self._latencies[name] = LatencyRecorder(name, sink=sink)
        return rec

    def latencies(self) -> Dict[str, LatencyRecorder]:
        return dict(self._latencies)

    # windowed time-series ------------------------------------------------
    def bind_timeseries(self, ts: Optional["TimeSeries"]) -> None:
        """Forward every counter increment and latency sample to ``ts``
        (windowed on simulated time) from now on; ``None`` detaches."""
        self._ts = ts
        sink = ts.record_latency if ts is not None else None
        for rec in self._latencies.values():
            rec.sink = sink

    # utilities -----------------------------------------------------------
    def reset(self) -> None:
        self._counters.clear()
        self._latencies.clear()

    def merge(self, other: "MetricSet") -> "MetricSet":
        """Fold another set in: counters sum, recorders `merge` — the
        cross-shard aggregation path for the sharded-engine roadmap."""
        for name, value in other._counters.items():
            self._counters[name] += value
        for name, rec in other._latencies.items():
            self.latency(name).merge(rec)
        return self

    def snapshot(self) -> Dict[str, object]:
        """A nested point-in-time view of the whole set::

            {"counters":  {dotted-name: value, ...},        # sorted
             "latencies": {name: {count, mean, min,
                                  p50, p99, max}, ...}}     # sorted

        The shape is stable (it is what `repro.obs` serialises) and
        equality-comparable across same-seed runs.
        """
        return {
            "counters": dict(sorted(self._counters.items())),
            "latencies": {
                name: rec.summary()
                for name, rec in sorted(self._latencies.items())
            },
        }

    def tree(self) -> Dict[str, object]:
        """Counters expanded along their dots into a nested dict::

            kernel.calls.Send = 5  ->  {"kernel": {"calls": {"Send": 5}}}

        When a name is both a leaf and a prefix (``a`` and ``a.b``),
        the leaf value moves under the empty key: ``{"a": {"": v, "b": w}}``.
        """
        root: Dict[str, object] = {}
        for name, value in sorted(self._counters.items()):
            parts = name.split(".")
            node = root
            for part in parts[:-1]:
                child = node.get(part)
                if not isinstance(child, dict):
                    child = {} if child is None else {"": child}
                    node[part] = child
                node = child
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict):
                node[leaf][""] = value
            else:
                node[leaf] = value
        return root

    def diff(self, before: Dict[str, object]) -> Dict[str, float]:
        """Counter deltas relative to an earlier `snapshot` (either the
        nested form or a bare ``{name: value}`` counter dict)."""
        base = before.get("counters", before)
        out = {}
        for k, v in self._counters.items():
            d = v - base.get(k, 0.0)
            if d:
                out[k] = d
        return out
