"""Failure injection.

The paper's semantic findings all involve failures:

* Charlotte: process termination destroys all the process's links, and
  peers must see send/receive failures (§2.2); a crash *during* the
  multi-packet enclosure protocol loses enclosed links (§3.2.2 a–d).
* SODA: "If a process dies before accepting a request, the requester
  feels an interrupt that informs it of the crash" (§4.1); node crashes
  strain ``discover`` (§4.2).
* Chrysalis: clean termination destroys links even for erroneous
  processes (the runtime catches faults), but "processor failures are
  currently not detected" (§5.2) — a hard kill leaves peers hanging.

`CrashInjector` schedules kills against cluster processes; a
`FailurePlan` is a declarative list of (time, target, mode) used by
tests and benches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.sim.engine import Engine


class CrashMode(enum.Enum):
    #: orderly termination: runtime clean-up runs (finally blocks)
    TERMINATE = "terminate"
    #: software fault inside the process: runtime fault handlers run
    #: (Chrysalis can still clean up; models "even erroneous processes
    #: can clean up their links", §5.2)
    FAULT = "fault"
    #: hard processor failure: nothing runs; peers are only informed if
    #: the kernel itself detects node death (Charlotte/SODA yes,
    #: Chrysalis no)
    PROCESSOR = "processor"


@dataclass
class FailureEvent:
    time: float
    target: str
    mode: CrashMode = CrashMode.TERMINATE


@dataclass
class FailurePlan:
    """A declarative crash schedule, applied by `CrashInjector.apply`."""

    events: List[FailureEvent] = field(default_factory=list)

    def kill(self, time: float, target: str, mode: CrashMode = CrashMode.TERMINATE):
        self.events.append(FailureEvent(time, target, mode))
        return self


class CrashInjector:
    """Binds a `FailurePlan` to a cluster.

    The cluster must expose ``crash_process(name, mode)``; all three
    cluster classes do (see `repro.core.cluster.ClusterBase`).
    """

    def __init__(self, engine: Engine, crash_fn: Callable[[str, CrashMode], None]):
        self.engine = engine
        self.crash_fn = crash_fn
        self.injected: List[FailureEvent] = []

    def apply(self, plan: FailurePlan) -> None:
        for ev in plan.events:
            self.engine.schedule_at(ev.time, self._fire, ev)

    def _fire(self, ev: FailureEvent) -> None:
        self.injected.append(ev)
        self.crash_fn(ev.target, ev.mode)
