"""Per-shard event queues: the serial oracle and the parallel windows.

Both engines here hold one binary heap **per shard** whose entries are
plain tuples ``(time, seq, fn, args, handle)`` — comparison is decided
entirely by ``(time, seq)`` (sequence numbers are unique per heap), so
heap pushes and pops compare C-level floats and ints instead of calling
``Event.__lt__``.  ``handle`` is an `Event` when the caller needs a
cancellation handle and ``None`` on the fire-and-forget paths
(``defer`` / ``defer_on`` / ``post``), which skip the allocation
altogether.

`ShardedSerialEngine` — the determinism oracle.  One global sequence
counter, one clock; every step scans the k heap heads and fires the
globally minimal ``(time, seq)`` entry.  That is *exactly* the global
engine's order for every workload, so digests must match bit for bit —
and the tuple-keyed heaps make it faster than the single global heap
despite the head scan.

`ShardedParallelEngine` — conservative synchronization
(Chandy–Misra–Bryant lookahead).  Per-shard clocks and sequence
counters.  Each round computes ``horizon = min(head times) +
lookahead_ms`` and lets every shard drain its own heap, in exact local
``(time, seq)`` order, up to (but excluding) the horizon.  Safety: a
cross-shard `post` sent at time *t* arrives no earlier than ``t +
lookahead_ms >= horizon``, i.e. always outside the current window, so
no shard ever receives work in its past.  Cross-shard posts buffer in
an outbox flushed at the window barrier, keeping sequence assignment
identical whether shards run in-process or in forked workers.

With ``workers > 1`` the shards are partitioned round-robin over
forked OS processes (`multiprocessing`, fork start method).  The
parent coordinates windows over pipes: each round it sends every
worker the horizon plus its inbox of routed posts, and receives the
fired count, the new head times, and the outbox.  Workers harvest
per-shard results (`Engine.bind_harvest`) before exiting — the only
state that returns to the parent.  The window sequence, post routing
order and per-shard sequence numbers are identical to the in-process
loop, so same-seed digests are bit-identical across ``workers``
settings (test-pinned).
"""

from __future__ import annotations

import heapq
import math
# dispatch profiling prices callbacks in real host time on purpose;
# it never feeds back into simulated state (see DispatchProfile)
from time import perf_counter  # repro: allow[DET001]
from typing import Any, Callable, List, Optional, Tuple

from repro.sim.backends import DEFAULT_LOOKAHEAD_MS
from repro.sim.engine import Engine, EngineError, Event, _callback_key


def _skip_cancelled(h: list, pop=heapq.heappop) -> None:
    while h and h[0][4] is not None and h[0][4].cancelled:
        pop(h)


class ShardedSerialEngine(Engine):
    """Per-shard heaps, one thread, exact global ``(time, seq)`` order.

    Bit-identical to the ``global`` backend for every workload (the
    registry marks it ``oracle=True``); used to validate the parallel
    backend and as a faster drop-in for single-host runs.
    """

    def __init__(
        self,
        shards: int = 1,
        lookahead_ms: Optional[float] = None,
        profile: bool = False,
    ) -> None:
        if shards < 1:
            raise EngineError(f"shard count must be >= 1, got {shards}")
        super().__init__(profile=profile)
        self.shards = shards
        self._heaps: List[list] = [[] for _ in range(shards)]
        #: shard receiving untagged `schedule` calls: the shard whose
        #: event is currently dispatching (0 outside dispatch), so
        #: callback chains stay on their shard
        self._cur = 0
        self._lookahead_auto = lookahead_ms is None
        self.lookahead_ms = (
            DEFAULT_LOOKAHEAD_MS if lookahead_ms is None else lookahead_ms
        )

    # -- scheduling ----------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        t = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = Event(t, seq, fn, args)
        heapq.heappush(self._heaps[self._cur], (t, seq, fn, args, ev))
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        if time < self.now:
            raise EngineError(
                f"cannot schedule at t={time} before current t={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, fn, args)
        heapq.heappush(self._heaps[self._cur], (time, seq, fn, args, ev))
        return ev

    def defer(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heaps[self._cur], (self.now + delay, seq, fn, args, None)
        )

    def schedule_on(
        self, shard: int, delay: float, fn: Callable[..., Any], *args: Any
    ) -> Event:
        self._check_shard(shard)
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        t = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        ev = Event(t, seq, fn, args)
        heapq.heappush(self._heaps[shard], (t, seq, fn, args, ev))
        return ev

    def defer_on(
        self, shard: int, delay: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        self._check_shard(shard)
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heaps[shard], (self.now + delay, seq, fn, args, None)
        )

    def post(self, shard: int, delay: float, key: str, *args: Any) -> None:
        self._check_shard(shard)
        if delay < self.lookahead_ms:
            raise EngineError(
                f"cross-shard post delay {delay} ms is below the "
                f"lookahead bound {self.lookahead_ms} ms"
            )
        fn = self._receivers.get(shard)
        if fn is None:
            raise EngineError(f"no receiver bound on shard {shard}")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._heaps[shard],
            (self.now + delay, seq, fn, (key, *args), None),
        )

    # -- execution -----------------------------------------------------
    def step(self) -> bool:
        heaps = self._heaps
        best = None
        bi = -1
        for i, h in enumerate(heaps):
            _skip_cancelled(h)
            if h and (best is None or h[0] < best):
                best = h[0]
                bi = i
        if best is None:
            return False
        heapq.heappop(heaps[bi])
        t, seq, fn, args, ev = best
        self.now = t
        self._cur = bi
        if self.trace_hook is not None:
            self.trace_hook(self, ev if ev is not None else Event(t, seq, fn, args))
        self._events_fired += 1
        if self.profile is None:
            fn(*args)
        else:
            t0 = perf_counter()
            fn(*args)
            self.profile.record(_callback_key(fn), perf_counter() - t0)
        return True

    def _run_fast(self) -> int:
        heaps = self._heaps
        pop = heapq.heappop
        fired = 0
        self._running = True
        try:
            if len(heaps) == 1:
                h = heaps[0]
                while h:
                    entry = pop(h)
                    ev = entry[4]
                    if ev is not None and ev.cancelled:
                        continue
                    self.now = entry[0]
                    fired += 1
                    entry[2](*entry[3])
            else:
                while True:
                    best = None
                    bi = -1
                    for i, h in enumerate(heaps):
                        _skip_cancelled(h)
                        if h and (best is None or h[0] < best):
                            best = h[0]
                            bi = i
                    if best is None:
                        break
                    pop(heaps[bi])
                    self.now = best[0]
                    self._cur = bi
                    fired += 1
                    best[2](*best[3])
        finally:
            self._running = False
            self._events_fired += fired
        return fired

    def _peek_time(self) -> Optional[float]:
        nxt = None
        for h in self._heaps:
            _skip_cancelled(h)
            if h and (nxt is None or h[0][0] < nxt):
                nxt = h[0][0]
        return nxt

    @property
    def pending(self) -> int:
        return sum(
            1
            for h in self._heaps
            for entry in h
            if entry[4] is None or not entry[4].cancelled
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedSerialEngine t={self.now:.6f} shards={self.shards} "
            f"pending={self.pending}>"
        )


class ShardedParallelEngine(Engine):
    """Per-shard heaps and clocks, conservative lookahead windows.

    Untagged `schedule` calls land on the shard whose event is
    currently dispatching (shard 0 outside dispatch), so legacy
    workloads — which never tag shards — run entirely on shard 0 in
    exact global order and stay bit-identical to the ``global``
    backend.  Sharded workloads place work with ``schedule_on`` /
    ``defer_on`` during setup and communicate across shards with
    `post` while running.
    """

    def __init__(
        self,
        shards: int = 1,
        lookahead_ms: Optional[float] = None,
        profile: bool = False,
        workers: Optional[int] = None,
    ) -> None:
        if shards < 1:
            raise EngineError(f"shard count must be >= 1, got {shards}")
        if workers is not None and workers < 1:
            raise EngineError(f"worker count must be >= 1, got {workers}")
        # per-shard clocks must exist before Engine.__init__ assigns
        # self.now through the property setter below
        self._nows: List[float] = [0.0] * shards
        self._cur = 0
        super().__init__(profile=profile)
        self.shards = shards
        self._heaps: List[list] = [[] for _ in range(shards)]
        self._seqs: List[int] = [0] * shards
        self._lookahead_auto = lookahead_ms is None
        self.lookahead_ms = (
            DEFAULT_LOOKAHEAD_MS if lookahead_ms is None else lookahead_ms
        )
        self.workers = workers
        #: cross-shard posts buffered during a window, flushed at the
        #: barrier: (origin_shard, target_shard, time, key, args)
        self._outbox: List[Tuple[int, int, float, str, tuple]] = []
        #: harvest payloads returned by forked workers, by shard
        self._worker_payloads: Optional[dict] = None

    # the "current" clock: reads/writes go to the dispatching shard's
    # clock, which is what callbacks mean by "now"
    @property
    def now(self) -> float:
        return self._nows[self._cur]

    @now.setter
    def now(self, value: float) -> None:
        self._nows[self._cur] = value

    # -- scheduling ----------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        si = self._cur
        t = self._nows[si] + delay
        seq = self._seqs[si]
        self._seqs[si] = seq + 1
        ev = Event(t, seq, fn, args)
        heapq.heappush(self._heaps[si], (t, seq, fn, args, ev))
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        si = self._cur
        if time < self._nows[si]:
            raise EngineError(
                f"cannot schedule at t={time} before current t={self._nows[si]}"
            )
        seq = self._seqs[si]
        self._seqs[si] = seq + 1
        ev = Event(time, seq, fn, args)
        heapq.heappush(self._heaps[si], (time, seq, fn, args, ev))
        return ev

    def defer(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        si = self._cur
        seq = self._seqs[si]
        self._seqs[si] = seq + 1
        heapq.heappush(
            self._heaps[si], (self._nows[si] + delay, seq, fn, args, None)
        )

    def _guard_cross_shard(self, shard: int) -> None:
        if self._running and shard != self._cur:
            raise EngineError(
                "cross-shard scheduling during a run must use post() "
                "(lookahead-bounded); schedule_on/defer_on may only "
                "target other shards before the run starts"
            )

    def schedule_on(
        self, shard: int, delay: float, fn: Callable[..., Any], *args: Any
    ) -> Event:
        self._check_shard(shard)
        self._guard_cross_shard(shard)
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        t = self._nows[shard] + delay
        seq = self._seqs[shard]
        self._seqs[shard] = seq + 1
        ev = Event(t, seq, fn, args)
        heapq.heappush(self._heaps[shard], (t, seq, fn, args, ev))
        return ev

    def defer_on(
        self, shard: int, delay: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        self._check_shard(shard)
        self._guard_cross_shard(shard)
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        seq = self._seqs[shard]
        self._seqs[shard] = seq + 1
        heapq.heappush(
            self._heaps[shard],
            (self._nows[shard] + delay, seq, fn, args, None),
        )

    def shard_now(self, shard: int) -> float:
        self._check_shard(shard)
        return self._nows[shard]

    def post(self, shard: int, delay: float, key: str, *args: Any) -> None:
        self._check_shard(shard)
        if delay < self.lookahead_ms:
            raise EngineError(
                f"cross-shard post delay {delay} ms is below the "
                f"lookahead bound {self.lookahead_ms} ms"
            )
        si = self._cur
        t = self._nows[si] + delay
        if self._running and shard != si:
            # buffered to the window barrier so sequence assignment is
            # identical in-process and across forked workers
            self._outbox.append((si, shard, t, key, args))
        else:
            self._deliver_post(shard, t, key, args)

    def _deliver_post(self, shard: int, t: float, key: str, args: tuple) -> None:
        fn = self._receivers.get(shard)
        if fn is None:
            raise EngineError(f"no receiver bound on shard {shard}")
        seq = self._seqs[shard]
        self._seqs[shard] = seq + 1
        heapq.heappush(self._heaps[shard], (t, seq, fn, (key, *args), None))

    def _flush_outbox(self) -> None:
        out = self._outbox
        self._outbox = []
        for _origin, shard, t, key, args in out:
            self._deliver_post(shard, t, key, args)

    # -- execution -----------------------------------------------------
    def step(self) -> bool:
        raise EngineError(
            "sharded-parallel advances in lookahead windows; use run() "
            "(or the sharded-serial oracle for single-step debugging)"
        )

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        if self.shards > 1 and self.lookahead_ms <= 0.0:
            raise EngineError(
                "sharded-parallel with more than one shard needs a "
                "positive lookahead_ms (no network model registered a "
                "latency floor?)"
            )
        if self.workers is not None and self.workers > 1 and self.shards > 1:
            return self._run_forked(until, max_events)
        if (
            until is None
            and max_events is None
            and self.trace_hook is None
            and self.profile is None
        ):
            return self._run_fast()
        return self._run_general(until, max_events)

    def _run_fast(self) -> int:
        heaps = self._heaps
        k = len(heaps)
        nows = self._nows
        pop = heapq.heappop
        fired = 0
        self._running = True
        try:
            if k == 1:
                # one shard has no barriers: exact global order
                h = heaps[0]
                self._cur = 0
                while h:
                    entry = pop(h)
                    ev = entry[4]
                    if ev is not None and ev.cancelled:
                        continue
                    nows[0] = entry[0]
                    fired += 1
                    entry[2](*entry[3])
                return fired
            la = self.lookahead_ms
            while True:
                if self._outbox:
                    self._flush_outbox()
                nxt = None
                for h in heaps:
                    _skip_cancelled(h)
                    if h and (nxt is None or h[0][0] < nxt):
                        nxt = h[0][0]
                if nxt is None:
                    break
                horizon = nxt + la
                for si in range(k):
                    h = heaps[si]
                    if not h or h[0][0] >= horizon:
                        continue
                    self._cur = si
                    while h:
                        head = h[0]
                        t = head[0]
                        if t >= horizon:
                            break
                        pop(h)
                        ev = head[4]
                        if ev is not None and ev.cancelled:
                            continue
                        nows[si] = t
                        fired += 1
                        head[2](*head[3])
            return fired
        finally:
            self._running = False
            self._events_fired += fired
            if self._outbox:
                self._flush_outbox()

    def _run_general(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        heaps = self._heaps
        k = len(heaps)
        nows = self._nows
        pop = heapq.heappop
        la = self.lookahead_ms if k > 1 else math.inf
        fired = 0
        stop = False
        self._running = True
        try:
            while not stop:
                if self._outbox:
                    self._flush_outbox()
                nxt = None
                for h in heaps:
                    _skip_cancelled(h)
                    if h and (nxt is None or h[0][0] < nxt):
                        nxt = h[0][0]
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    for i in range(k):
                        if nows[i] < until:
                            nows[i] = until
                    break
                horizon = nxt + la
                for si in range(k):
                    h = heaps[si]
                    if not h or h[0][0] >= horizon:
                        continue
                    self._cur = si
                    while h:
                        head = h[0]
                        t = head[0]
                        if t >= horizon or (until is not None and t > until):
                            break
                        pop(h)
                        ev = head[4]
                        if ev is not None and ev.cancelled:
                            continue
                        nows[si] = t
                        if self.trace_hook is not None:
                            self.trace_hook(
                                self,
                                ev if ev is not None
                                else Event(t, head[1], head[2], head[3]),
                            )
                        fired += 1
                        self._events_fired += 1
                        if self.profile is None:
                            head[2](*head[3])
                        else:
                            t0 = perf_counter()
                            head[2](*head[3])
                            self.profile.record(
                                _callback_key(head[2]), perf_counter() - t0
                            )
                        if max_events is not None and fired >= max_events:
                            stop = True
                            break
                    if stop:
                        break
        finally:
            self._running = False
            if self._outbox:
                self._flush_outbox()
        return fired

    # -- forked workers ------------------------------------------------
    def _run_forked(
        self, until: Optional[float], max_events: Optional[int]
    ) -> int:
        if max_events is not None:
            raise EngineError("max_events is not supported with forked workers")
        if self.trace_hook is not None or self.profile is not None:
            raise EngineError(
                "tracing/profiling are in-process features; run with "
                "workers=None"
            )
        import multiprocessing as multiproc

        if "fork" not in multiproc.get_all_start_methods():
            # no fork on this platform: the in-process loop computes
            # the identical window sequence (digest parity is pinned)
            return self._run_general(until, None)
        ctx = multiproc.get_context("fork")
        k = self.shards
        w_count = min(self.workers, k)
        owner = [s % w_count for s in range(k)]
        conns = []
        procs = []
        try:
            for w in range(w_count):
                parent_conn, child_conn = ctx.Pipe()
                owned = [s for s in range(k) if owner[s] == w]
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, self, owned, until),
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)
            heads: List[List[float]] = []
            for conn in conns:
                msg = conn.recv()
                if msg[0] != "hello":
                    raise EngineError(f"worker failed at startup: {msg[1]}")
                heads.append(msg[1])
            fired_total = 0
            pending: List[Tuple[int, int, float, str, tuple]] = []
            la = self.lookahead_ms
            while True:
                nxt = None
                for worker_heads in heads:
                    for t in worker_heads:
                        if nxt is None or t < nxt:
                            nxt = t
                for entry in pending:
                    if nxt is None or entry[2] < nxt:
                        nxt = entry[2]
                if nxt is None or (until is not None and nxt > until):
                    break
                horizon = nxt + la
                # route pending posts: global order is (origin shard,
                # send order) — identical to the in-process flush
                pending.sort(key=lambda entry: entry[0])
                inboxes: List[list] = [[] for _ in range(w_count)]
                for _origin, shard, t, key, args in pending:
                    inboxes[owner[shard]].append((shard, t, key, args))
                pending = []
                for w, conn in enumerate(conns):
                    conn.send(("win", horizon, inboxes[w]))
                for w, conn in enumerate(conns):
                    msg = conn.recv()
                    if msg[0] != "ok":
                        raise EngineError(f"worker {w} failed: {msg[1]}")
                    _tag, fired, worker_heads, out = msg
                    fired_total += fired
                    heads[w] = worker_heads
                    pending.extend(out)
            payloads: dict = {}
            for w, conn in enumerate(conns):
                conn.send(("fin",))
                msg = conn.recv()
                if msg[0] != "res":
                    raise EngineError(f"worker {w} failed at harvest: {msg[1]}")
                _tag, worker_payloads, worker_nows = msg
                for shard, payload in worker_payloads:
                    payloads[shard] = payload
                for shard, t in worker_nows:
                    self._nows[shard] = t
            self._worker_payloads = payloads
            # the parent's heaps are stale copies of work the workers
            # consumed; drop them so the engine reads as quiescent
            self._heaps = [[] for _ in range(k)]
            self._events_fired += fired_total
            return fired_total
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=30)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()

    def harvest(self) -> List[Any]:
        if self._worker_payloads is not None:
            return [
                self._worker_payloads[s]
                for s in sorted(self._worker_payloads)
            ]
        return super().harvest()

    def _peek_time(self) -> Optional[float]:
        nxt = None
        for h in self._heaps:
            _skip_cancelled(h)
            if h and (nxt is None or h[0][0] < nxt):
                nxt = h[0][0]
        return nxt

    @property
    def pending(self) -> int:
        return sum(
            1
            for h in self._heaps
            for entry in h
            if entry[4] is None or not entry[4].cancelled
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ShardedParallelEngine shards={self.shards} "
            f"lookahead={self.lookahead_ms} pending={self.pending}>"
        )


def _worker_main(conn, engine: ShardedParallelEngine, owned: List[int],
                 until: Optional[float]) -> None:
    """A forked shard worker: drain owned shards window by window.

    Runs in the child process on a fork-inherited copy of the engine
    and all workload state; only pipe messages and harvest payloads
    cross the process boundary.
    """
    try:
        heaps = engine._heaps
        nows = engine._nows
        pop = heapq.heappop

        def _heads() -> List[float]:
            out = []
            for si in owned:
                h = heaps[si]
                _skip_cancelled(h)
                if h:
                    out.append(h[0][0])
            return out

        conn.send(("hello", _heads()))
        while True:
            msg = conn.recv()
            if msg[0] == "fin":
                if until is not None:
                    for si in owned:
                        if nows[si] < until:
                            nows[si] = until
                payloads = []
                for si in sorted(engine._harvest):
                    if si in owned:
                        payloads.append((si, engine._harvest[si]()))
                conn.send(
                    ("res", payloads, [(si, nows[si]) for si in owned])
                )
                return
            _tag, horizon, inbox = msg
            for shard, t, key, args in inbox:
                engine._deliver_post(shard, t, key, args)
            fired = 0
            engine._running = True
            try:
                for si in owned:
                    h = heaps[si]
                    if not h or h[0][0] >= horizon:
                        continue
                    engine._cur = si
                    while h:
                        head = h[0]
                        t = head[0]
                        if t >= horizon or (until is not None and t > until):
                            break
                        pop(h)
                        ev = head[4]
                        if ev is not None and ev.cancelled:
                            continue
                        nows[si] = t
                        fired += 1
                        head[2](*head[3])
            finally:
                engine._running = False
            out = engine._outbox
            engine._outbox = []
            conn.send(("ok", fired, _heads(), out))
    except BaseException:  # pragma: no cover - transported to parent
        import traceback

        try:
            conn.send(("err", traceback.format_exc()))
        except Exception:
            pass
