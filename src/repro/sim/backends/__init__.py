"""The `SimBackend` port: engines behind a registry.

PR 3 reified the kernel/runtime interface behind `repro.core.ports`;
this package does the same for the simulation core.  A *backend* is a
way of executing one logical discrete-event simulation:

* ``global`` — the original single event heap (`repro.sim.engine.Engine`).
  The reference semantics; everything else is measured against it.
* ``sharded-serial`` — per-shard event queues advanced by one thread
  that always fires the globally minimal ``(time, seq)`` event.  By
  construction this is **bit-identical to `global` for every
  workload** — it is the determinism oracle the parallel backend is
  checked against — while already paying per-shard data structures.
* ``sharded-parallel`` — per-shard queues advanced under conservative
  synchronization: all shards whose next event lies inside the window
  ``[min_head, min_head + lookahead)`` drain it independently, then a
  barrier re-computes the window.  Cross-shard messages (`Engine.post`)
  must travel at least ``lookahead_ms`` — the per-link latency lower
  bound exposed by `repro.sim.network` models as ``min_latency_ms`` —
  which is exactly what makes the windows safe (Chandy–Misra–Bryant
  conservative lookahead).  With ``workers > 1`` the shards execute in
  forked OS processes exchanging messages at the window barriers.

Workloads never construct engines; they call `make_engine` (or pass
``sim_backend=`` to `repro.core.api.make_cluster`) and speak the
shard-tagged `Engine` surface (``schedule_on`` / ``defer_on`` /
``post`` / ``bind_receiver`` / ``bind_harvest``).  The SIM002 lint
rule rejects direct ``Engine(...)`` construction outside this package
so that every workload stays runnable on every backend.

Determinism contract (machine-checked by `tests/sim/test_backends.py`
and the E16 bench):

* ``sharded-serial`` is bit-identical to ``global`` at any shard count;
* ``sharded-parallel`` is bit-identical to ``global`` at ``shards=1``,
  and bit-identical across repeats (and across ``workers`` values) at
  any shard count;
* at ``shards > 1`` the parallel backend preserves exact ``(time,
  seq)`` order *within* each shard, and cross-shard arrivals are
  totally ordered by ``(arrival time, origin shard, send order)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

__all__ = [
    "SimBackendProfile",
    "register_sim_backend",
    "registered_sim_backends",
    "sim_backend_profile",
    "sim_backend_profiles",
    "make_engine",
    "DEFAULT_LOOKAHEAD_MS",
]

#: lookahead used when no `repro.sim.network` model has registered its
#: latency floor yet (the token-ring access delay, the tightest bound
#: among the paper's three interconnects)
DEFAULT_LOOKAHEAD_MS = 0.05


@dataclass(frozen=True)
class SimBackendProfile:
    """A registered way of executing the simulation.

    ``factory(shards, lookahead_ms, profile, workers)`` returns an
    engine implementing the full `repro.sim.engine.Engine` surface.
    ``parallel`` declares whether shards advance concurrently (windowed
    execution); ``oracle`` declares the bit-identical-to-``global``
    guarantee at any shard count.
    """

    name: str
    title: str
    parallel: bool
    oracle: bool
    factory: Callable[..., Any] = field(repr=False)
    summary: str = ""


_REGISTRY: dict[str, SimBackendProfile] = {}


def register_sim_backend(profile: SimBackendProfile) -> SimBackendProfile:
    """Register a backend; duplicate names are a programming error."""
    if profile.name in _REGISTRY:
        raise ValueError(f"sim backend {profile.name!r} already registered")
    _REGISTRY[profile.name] = profile
    return profile


def registered_sim_backends() -> Tuple[str, ...]:
    """Backend names, in registration order."""
    return tuple(_REGISTRY)


def sim_backend_profile(name: str) -> SimBackendProfile:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown sim backend {name!r}; registered backends: "
            f"{', '.join(registered_sim_backends())}"
        ) from None


def sim_backend_profiles() -> Tuple[SimBackendProfile, ...]:
    return tuple(_REGISTRY.values())


def make_engine(
    backend: str = "global",
    *,
    shards: int = 1,
    lookahead_ms: Optional[float] = None,
    profile: bool = False,
    workers: Optional[int] = None,
):
    """Build an engine through the registry.

    ``lookahead_ms=None`` means *auto*: start from
    `DEFAULT_LOOKAHEAD_MS` and adopt the smallest latency floor any
    `repro.sim.network` model subsequently registers via
    ``note_link_floor``.  ``workers`` only matters to parallel
    backends (``None`` → in-process execution).
    """
    return sim_backend_profile(backend).factory(
        shards=shards, lookahead_ms=lookahead_ms, profile=profile,
        workers=workers,
    )


# ----------------------------------------------------------------------
# the three shipped backends
# ----------------------------------------------------------------------
def _global_factory(shards=1, lookahead_ms=None, profile=False, workers=None):
    from repro.sim.engine import Engine, EngineError

    if shards < 1:
        raise EngineError(f"shard count must be >= 1, got {shards}")
    eng = Engine(profile=profile)
    # logical shards on one heap: shard-tagged calls are accepted and
    # executed in exact global (time, seq) order — the reference
    # semantics the sharded backends are digest-checked against
    eng.shards = shards
    if lookahead_ms is not None:
        eng.lookahead_ms = lookahead_ms
        eng._lookahead_auto = False
    else:
        # same starting lookahead as the sharded backends, so a post()
        # that passes here cannot fail there
        eng.lookahead_ms = DEFAULT_LOOKAHEAD_MS
    return eng


def _serial_factory(shards=1, lookahead_ms=None, profile=False, workers=None):
    from repro.sim.backends.sharded import ShardedSerialEngine

    return ShardedSerialEngine(
        shards=shards, lookahead_ms=lookahead_ms, profile=profile
    )


def _parallel_factory(shards=1, lookahead_ms=None, profile=False, workers=None):
    from repro.sim.backends.sharded import ShardedParallelEngine

    return ShardedParallelEngine(
        shards=shards, lookahead_ms=lookahead_ms, profile=profile,
        workers=workers,
    )


register_sim_backend(SimBackendProfile(
    name="global",
    title="single global event heap",
    parallel=False,
    oracle=True,
    factory=_global_factory,
    summary="the reference engine: one heap, exact (time, seq) order",
))

register_sim_backend(SimBackendProfile(
    name="sharded-serial",
    title="per-shard queues, serial global-order merge",
    parallel=False,
    oracle=True,
    factory=_serial_factory,
    summary="k-way min-head merge over per-shard queues; the "
            "determinism oracle, bit-identical to global",
))

register_sim_backend(SimBackendProfile(
    name="sharded-parallel",
    title="per-shard queues, conservative lookahead windows",
    parallel=True,
    oracle=False,
    factory=_parallel_factory,
    summary="shards drain lookahead windows independently; optional "
            "forked workers exchange cross-shard posts at barriers",
))
