"""Event tracing: message-sequence records and ASCII sequence charts.

The paper explains its protocols with message-sequence diagrams
(figures 1 and 2).  `TraceLog` records runtime-level events as they
happen so any run can be rendered the same way — the E3 bench and the
`examples/figure2.py` script regenerate figure 2 from a live run
rather than from the model.

Tracing is always on (appending a tuple is cheap at simulation scale)
but bounded; the log keeps the most recent ``capacity`` events.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Sequence

from repro.sim.engine import Engine


@dataclass(frozen=True)
class TraceEvent:
    time: float
    actor: str
    event: str
    #: free-form details (message kind, link, seq, peer, ...)
    detail: Dict[str, object]

    def describe(self) -> str:
        bits = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.3f}] {self.actor:<12} {self.event:<16} {bits}"


class TraceLog:
    """A bounded, append-only log of simulation events."""

    def __init__(self, engine: Engine, capacity: int = 100_000) -> None:
        self.engine = engine
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.enabled = True

    def emit(self, actor: str, event: str, **detail: object) -> None:
        if not self.enabled:
            return
        self.events.append(
            TraceEvent(self.engine.now, actor, event, detail)
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def select(
        self,
        actor: Optional[str] = None,
        event: Optional[str] = None,
        link: Optional[int] = None,
    ) -> List[TraceEvent]:
        out = []
        for ev in self.events:
            if actor is not None and ev.actor != actor:
                continue
            if event is not None and ev.event != event:
                continue
            if link is not None and ev.detail.get("link") != link:
                continue
            out.append(ev)
        return out

    def dump(self, limit: int = 200) -> str:
        lines = [ev.describe() for ev in list(self.events)[-limit:]]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # sequence chart (figures 1/2 style)
    # ------------------------------------------------------------------
    def sequence_chart(
        self,
        actors: Sequence[str],
        events: Optional[Iterable[str]] = None,
        link: Optional[int] = None,
        width: int = 24,
    ) -> str:
        """Render send events between ``actors`` as an ASCII sequence
        chart.  Events must carry ``peer`` (destination actor) and
        ``kind`` details to be drawn; others are listed inline.
        """
        wanted = set(events) if events is not None else None
        cols = {a: i for i, a in enumerate(actors)}
        total = width * len(actors)

        def lifelines() -> List[str]:
            row = [" "] * total
            for i in range(len(actors)):
                row[i * width] = "|"
            return row

        lines = ["".join(a.ljust(width) for a in actors),
                 "".join(lifelines())]
        for ev in self.events:
            if wanted is not None and ev.event not in wanted:
                continue
            if link is not None and ev.detail.get("link") != link:
                continue
            src = ev.actor
            dst = ev.detail.get("peer")
            label = str(ev.detail.get("kind", ev.event))
            row = lifelines()
            if src in cols and isinstance(dst, str) and dst in cols \
                    and cols[src] != cols[dst]:
                i, j = cols[src], cols[dst]
                lo, hi = min(i, j), max(i, j)
                start, end = lo * width + 1, hi * width - 1
                body = label.center(end - start - 1, "-")
                if j > i:
                    segment = body + ">"
                else:
                    segment = "<" + body
                row[start:end] = list(segment[: end - start])
            elif src in cols:
                i = cols[src]
                note = f" {label}"
                pos = i * width + 1
                row[pos : pos + len(note)] = list(note[: total - pos])
            else:
                continue
            lines.append("".join(row).rstrip())
        return "\n".join(lines)
