"""Event tracing: message-sequence records and ASCII sequence charts.

The paper explains its protocols with message-sequence diagrams
(figures 1 and 2).  `TraceLog` records runtime-level events as they
happen so any run can be rendered the same way — the E3 bench and the
`examples/figure2.py` script regenerate figure 2 from a live run
rather than from the model.

Tracing is always on (appending a tuple is cheap at simulation scale)
but bounded; the log keeps the most recent ``capacity`` events.

For offline analysis the log exports to JSON Lines (`to_jsonl`) and
reloads (`from_jsonl`) into a detached log that renders the same
charts; `repro.obs.JsonlTraceWriter` streams events to disk as they
are emitted, escaping the capacity bound.  The record schema is
documented in docs/OBSERVABILITY.md and versioned by
`TRACE_SCHEMA_VERSION`.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable, Deque, Dict, Iterable, List, Optional, Sequence, Union,
)

from repro.sim.engine import Engine

#: bumped whenever the exported JSONL record shape changes
TRACE_SCHEMA_VERSION = 2
#: schema versions `from_jsonl` still understands (v1 records are v2
#: records without the optional ``span`` field)
SUPPORTED_TRACE_SCHEMA_VERSIONS = (1, 2)


@dataclass(frozen=True, slots=True)
class TraceEvent:
    time: float
    actor: str
    event: str
    #: free-form details (message kind, link, seq, peer, ...)
    detail: Dict[str, object]
    #: optional causal-span payload (schema v2; see repro.obs.causal)
    span: Optional[Dict[str, object]] = None

    def describe(
        self,
        time_width: int = 10,
        actor_width: int = 12,
        event_width: int = 16,
    ) -> str:
        bits = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        stamp = f"{self.time:.3f}"
        return (
            f"[{stamp:>{max(time_width, len(stamp))}}] "
            f"{self.actor:<{max(actor_width, len(self.actor))}} "
            f"{self.event:<{max(event_width, len(self.event))}} {bits}"
        )

    # JSONL record conversion ------------------------------------------
    def to_record(self) -> Dict[str, object]:
        """The stable export shape: ``{"t", "actor", "event", "detail"}``
        plus ``"span"`` when (and only when) the event carries one."""
        rec: Dict[str, object] = {
            "t": self.time,
            "actor": self.actor,
            "event": self.event,
            "detail": dict(self.detail),
        }
        if self.span is not None:
            rec["span"] = dict(self.span)
        return rec

    def to_json(self) -> str:
        # non-JSON detail values (enums, objects) degrade to repr so an
        # export never fails mid-run
        return json.dumps(self.to_record(), sort_keys=True, default=repr)

    @classmethod
    def from_record(cls, rec: Dict[str, object]) -> "TraceEvent":
        span = rec.get("span")
        return cls(
            time=float(rec["t"]),
            actor=str(rec["actor"]),
            event=str(rec["event"]),
            detail=dict(rec.get("detail", {})),
            span=dict(span) if span is not None else None,
        )


def trace_header(capacity: Optional[int] = None) -> Dict[str, object]:
    """The JSONL stream header record (first line of every export)."""
    head: Dict[str, object] = {
        "schema": "repro.trace",
        "version": TRACE_SCHEMA_VERSION,
    }
    if capacity is not None:
        head["capacity"] = capacity
    return head


class TraceLog:
    """A bounded, append-only log of simulation events.

    ``engine`` may be None for a *detached* log (one rebuilt by
    `from_jsonl`): it can be queried and rendered but not emitted to.
    """

    def __init__(self, engine: Optional[Engine], capacity: int = 100_000) -> None:
        self.engine = engine
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.enabled = True
        #: streaming subscribers, called with each TraceEvent as it is
        #: recorded (see `repro.obs.JsonlTraceWriter`)
        self._sinks: List[Callable[[TraceEvent], None]] = []

    def emit(
        self,
        actor: str,
        event: str,
        span: Optional[Dict[str, object]] = None,
        **detail: object,
    ) -> None:
        if not self.enabled:
            return
        if self.engine is None:
            raise ValueError("cannot emit into a detached (replayed) TraceLog")
        ev = TraceEvent(self.engine.now, actor, event, detail, span=span)
        self.events.append(ev)
        if self._sinks:
            for sink in self._sinks:
                sink(ev)

    # ------------------------------------------------------------------
    # streaming subscription
    # ------------------------------------------------------------------
    def attach(self, sink: Callable[[TraceEvent], None]) -> None:
        """Subscribe ``sink`` to every future event."""
        self._sinks.append(sink)

    def detach(self, sink: Callable[[TraceEvent], None]) -> None:
        self._sinks.remove(sink)

    # ------------------------------------------------------------------
    # JSONL export / import
    # ------------------------------------------------------------------
    def to_jsonl(self, header: bool = True) -> str:
        """The whole log as JSON Lines, one event per line, newest last.

        The first line (when ``header`` is true) is a stream header
        carrying the schema version; every other line is an event
        record (`TraceEvent.to_record`).
        """
        lines = []
        if header:
            lines.append(json.dumps(trace_header(self.capacity),
                                    sort_keys=True))
        lines.extend(ev.to_json() for ev in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(
        cls,
        source: Union[str, Iterable[str]],
        capacity: int = 100_000,
    ) -> "TraceLog":
        """Rebuild a detached log from `to_jsonl` output (a string or an
        iterable of lines).  Header lines are recognised and skipped;
        a header with an unknown schema version raises ValueError."""
        if isinstance(source, str):
            source = source.splitlines()
        log = cls(engine=None, capacity=capacity)
        for line in source:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if "schema" in rec:
                if rec.get("version") not in SUPPORTED_TRACE_SCHEMA_VERSIONS:
                    raise ValueError(
                        f"unsupported trace schema {rec.get('schema')!r} "
                        f"v{rec.get('version')!r}"
                    )
                continue
            log.events.append(TraceEvent.from_record(rec))
        return log

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def select(
        self,
        actor: Optional[str] = None,
        event: Optional[str] = None,
        link: Optional[int] = None,
    ) -> List[TraceEvent]:
        out = []
        for ev in self.events:
            if actor is not None and ev.actor != actor:
                continue
            if event is not None and ev.event != event:
                continue
            if link is not None and ev.detail.get("link") != link:
                continue
            out.append(ev)
        return out

    def dump(self, limit: int = 200) -> str:
        events = list(self.events)[-limit:]
        if not events:
            return ""
        # columns grow with the data so long actor names or 6+ digit
        # timestamps never shear the layout
        time_width = max(10, *(len(f"{ev.time:.3f}") for ev in events))
        actor_width = max(12, *(len(ev.actor) for ev in events))
        event_width = max(16, *(len(ev.event) for ev in events))
        lines = [
            ev.describe(time_width, actor_width, event_width)
            for ev in events
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # sequence chart (figures 1/2 style)
    # ------------------------------------------------------------------
    def sequence_chart(
        self,
        actors: Sequence[str],
        events: Optional[Iterable[str]] = None,
        link: Optional[int] = None,
        width: int = 24,
    ) -> str:
        """Render send events between ``actors`` as an ASCII sequence
        chart.  Events must carry ``peer`` (destination actor) and
        ``kind`` details to be drawn; others are listed inline.
        """
        wanted = set(events) if events is not None else None
        cols = {a: i for i, a in enumerate(actors)}
        total = width * len(actors)

        def lifelines() -> List[str]:
            row = [" "] * total
            for i in range(len(actors)):
                row[i * width] = "|"
            return row

        lines = ["".join(a.ljust(width) for a in actors),
                 "".join(lifelines())]
        for ev in self.events:
            if wanted is not None and ev.event not in wanted:
                continue
            if link is not None and ev.detail.get("link") != link:
                continue
            src = ev.actor
            dst = ev.detail.get("peer")
            label = str(ev.detail.get("kind", ev.event))
            row = lifelines()
            if src in cols and isinstance(dst, str) and dst in cols \
                    and cols[src] != cols[dst]:
                i, j = cols[src], cols[dst]
                lo, hi = min(i, j), max(i, j)
                start, end = lo * width + 1, hi * width - 1
                body = label.center(end - start - 1, "-")
                if j > i:
                    segment = body + ">"
                else:
                    segment = "<" + body
                row[start:end] = list(segment[: end - start])
            elif src in cols:
                i = cols[src]
                note = f" {label}"
                pos = i * width + 1
                row[pos : pos + len(note)] = list(note[: total - pos])
            else:
                continue
            lines.append("".join(row).rstrip())
        return "\n".join(lines)
