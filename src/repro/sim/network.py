"""Interconnect models for the three testbeds.

The paper's three systems ran on very different interconnects, and those
differences drive its performance story (§4.3 footnote 2: "SODA's slow
network exacted a heavy toll"):

* **Crystal / Charlotte** — 10 Mbit/s Proteon token ring joining 20
  VAX 11/750s.  Modelled by `TokenRing`: a fixed media-access delay
  (average half-rotation token wait) plus serialisation at 10 Mbit/s.
* **SODA** — 1 Mbit/s CSMA bus over PDP-11/23s.  Modelled by `CSMABus`:
  serialisation at 1 Mbit/s, random backoff on collision-prone load, and
  optional Bernoulli loss **for broadcasts only** (SODA's ``discover``
  uses *unreliable* broadcast; point-to-point requests are
  kernel-retried, which we model at the kernel layer).
* **Butterfly / Chrysalis** — shared memory through the Butterfly
  switch; there are no messages at all, only memory copies, so
  `SharedMemoryInterconnect` charges a per-byte copy cost and a small
  switch-contention term.

A network model answers one question: *how long after the send
instant does a frame of n bytes arrive?* Kernels add their own CPU
costs on top (see `repro.analysis.costmodel`).

Each model also exposes `min_latency_ms`, a guaranteed lower bound on
any frame's transit time (the zero-byte, zero-backoff case).  Models
report it to the engine (`Engine.note_link_floor`), where it becomes
the conservative-synchronization lookahead for the sharded backends
(`repro.sim.backends`): no message can cross shards faster than that
bound, so event windows of that width are safe.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet
from repro.sim.rng import SimRandom

#: bits per byte, for converting link rates
_BITS = 8.0


class NetworkModel:
    """Base class: latency model plus delivery scheduling and accounting.

    Subclasses implement `transit_time`.  `deliver` schedules a callback
    after the computed transit time and counts the frame into metrics
    under ``wire.frames`` / ``wire.bytes``.
    """

    #: human-readable name used in reports
    name = "abstract"

    def __init__(
        self,
        engine: Engine,
        metrics: Optional[MetricSet] = None,
        rng: Optional[SimRandom] = None,
    ) -> None:
        self.engine = engine
        self.metrics = metrics if metrics is not None else MetricSet()
        self.rng = rng if rng is not None else SimRandom(0, f"net/{self.name}")
        self._inflight = 0

    # ------------------------------------------------------------------
    def transit_time(self, nbytes: int) -> float:
        """Milliseconds from send to delivery for an ``nbytes`` frame."""
        raise NotImplementedError

    @property
    def min_latency_ms(self) -> float:
        """Guaranteed lower bound on `transit_time` for any frame —
        the lookahead for conservative sharded execution."""
        raise NotImplementedError

    def _register_floor(self) -> None:
        """Report the latency floor to the engine (subclasses call this
        once their rate parameters are set)."""
        self.engine.note_link_floor(self.min_latency_ms)

    def deliver(
        self,
        nbytes: int,
        callback: Callable[[], None],
        kind: str = "frame",
    ) -> float:
        """Schedule ``callback`` after the frame's transit time.

        Returns the transit time charged (useful to kernels composing
        totals).  ``kind`` tags the frame in metrics
        (``wire.frames.<kind>``).
        """
        dt = self.transit_time(nbytes)
        self.metrics.count(f"wire.frames.{kind}")
        self.metrics.count("wire.bytes", nbytes)
        self._inflight += 1

        def arrive() -> None:
            self._inflight -= 1
            callback()

        self.engine.schedule(dt, arrive)
        return dt

    @property
    def inflight(self) -> int:
        return self._inflight


class TokenRing(NetworkModel):
    """10 Mbit/s token ring (Crystal's Proteon ring).

    ``access_delay`` models the mean token-rotation wait before a node
    may transmit; ``per_byte`` is serialisation time at the ring rate.
    Defaults follow the hardware in the paper (§3.1).
    """

    name = "token-ring"

    def __init__(
        self,
        engine: Engine,
        metrics: Optional[MetricSet] = None,
        rng: Optional[SimRandom] = None,
        rate_mbit: float = 10.0,
        access_delay_ms: float = 0.05,
        stations: int = 20,
    ) -> None:
        super().__init__(engine, metrics, rng)
        self.rate_mbit = rate_mbit
        self.access_delay_ms = access_delay_ms
        self.stations = stations
        #: ms per byte at the ring rate
        self.per_byte_ms = _BITS / (rate_mbit * 1e3)
        self._register_floor()

    def transit_time(self, nbytes: int) -> float:
        # token wait + serialisation; ring propagation is negligible at
        # building scale and folded into access_delay.
        return self.access_delay_ms + nbytes * self.per_byte_ms

    @property
    def min_latency_ms(self) -> float:
        # every frame waits at least the token-access delay
        return self.access_delay_ms


class CSMABus(NetworkModel):
    """1 Mbit/s CSMA bus (SODA's network, §4.1/§4.3).

    ``broadcast_loss`` is the probability an *unreliable broadcast*
    frame is lost; SODA's ``discover`` is the only user of broadcast.
    Point-to-point frames are never dropped here (the SODA kernel's
    periodic retry handles flow control above us); they do pay a random
    contention backoff.
    """

    name = "csma-bus"

    def __init__(
        self,
        engine: Engine,
        metrics: Optional[MetricSet] = None,
        rng: Optional[SimRandom] = None,
        rate_mbit: float = 1.0,
        base_access_ms: float = 0.2,
        max_backoff_ms: float = 0.4,
        broadcast_loss: float = 0.0,
    ) -> None:
        super().__init__(engine, metrics, rng)
        self.rate_mbit = rate_mbit
        self.base_access_ms = base_access_ms
        self.max_backoff_ms = max_backoff_ms
        self.broadcast_loss = broadcast_loss
        self.per_byte_ms = _BITS / (rate_mbit * 1e3)
        self._register_floor()

    def transit_time(self, nbytes: int) -> float:
        backoff = self.rng.uniform(0.0, self.max_backoff_ms)
        return self.base_access_ms + backoff + nbytes * self.per_byte_ms

    @property
    def min_latency_ms(self) -> float:
        # the zero-backoff case still pays the base bus-access time
        return self.base_access_ms

    def broadcast(
        self,
        nbytes: int,
        callbacks: list[Callable[[], None]],
        kind: str = "broadcast",
    ) -> int:
        """Unreliable broadcast: each receiver independently hears the
        frame with probability ``1 - broadcast_loss``.  Returns how many
        receivers the frame reached (for test observability; simulated
        senders must not look at it)."""
        self.metrics.count(f"wire.frames.{kind}")
        self.metrics.count("wire.bytes", nbytes)
        reached = 0
        dt = self.transit_time(nbytes)
        for cb in callbacks:
            if self.rng.bernoulli(self.broadcast_loss):
                self.metrics.count("wire.broadcast_lost")
                continue
            reached += 1
            self.engine.schedule(dt, cb)
        return reached


class SharedMemoryInterconnect(NetworkModel):
    """The Butterfly switch: remote memory access, not messaging.

    "Transit" for a notice or a buffer copy is a per-byte copy charge
    plus a tiny fixed switch hop.  Used by the Chrysalis kernel to price
    block copies into link memory objects; control operations (event
    post, dual-queue ops, atomic flags) are priced by the cost model,
    not the network.
    """

    name = "shared-memory"

    def __init__(
        self,
        engine: Engine,
        metrics: Optional[MetricSet] = None,
        rng: Optional[SimRandom] = None,
        per_byte_us: float = 0.55,
        hop_us: float = 4.0,
    ) -> None:
        super().__init__(engine, metrics, rng)
        #: microsecond inputs are converted to ms, the project-wide unit
        self.per_byte_ms = per_byte_us / 1e3
        self.hop_ms = hop_us / 1e3
        self._register_floor()

    def transit_time(self, nbytes: int) -> float:
        return self.hop_ms + nbytes * self.per_byte_ms

    @property
    def min_latency_ms(self) -> float:
        # a zero-byte control hop still crosses the switch once
        return self.hop_ms
