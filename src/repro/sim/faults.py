"""Deterministic network-fault injection (the other half of failure).

`repro.sim.failure` kills *processes*; this module degrades the
*network* between them: per-link message drop, duplication, extra
delay (reordering), and timed partition windows.  Together they let
the simulator pose the question the paper's three lessons turn on —
what happens to the language's remote-operation semantics when the
transport misbehaves (§2.2, §4.1, §5.2)?

Everything is seeded through `repro.sim.rng.SimRandom`, so a fault
schedule replays exactly from ``(seed, plan)``.  Draws come from per
``(link, kind)`` child streams, so adding traffic on one link does not
perturb the verdicts seen on another.

The injection point is deliberately the *runtime* message layer
(`repro.core.runtime.LynxRuntimeBase` consults the cluster's installed
`FaultInjector` around its ``rt_send_request`` / ``rt_send_reply``
downcalls — see docs/FAULTS.md): a dropped message is simply never
handed to the kernel glue, so no kernel bookkeeping leaks.  Kernel
*internal* protocol frames (Charlotte retry/forbid/allow, SODA
discover, Chrysalis notices) and link destruction notices stay
reliable — the fault plane models lossy data transport, not a
corrupted control plane.

What a verdict *means* depends on where the backend places recovery
(`KernelCapabilities.recovery_placement`):

``"runtime"`` (SODA, Chrysalis, ideal — hints)
    a dropped message is lost; the runtime's `RecoveryPolicy`
    (timeouts, bounded retry) is responsible for masking or surfacing
    the loss.
``"kernel"`` (Charlotte — absolutes)
    the kernel hides the loss: it silently retransmits every
    ``plan.kernel_retransmit_ms`` until a verdict lets the message
    through, however long that takes.  Nothing is ever surfaced to
    the runtime — which is exactly the absolute the paper says a
    kernel cannot usefully promise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet
from repro.sim.rng import SimRandom


@dataclass(frozen=True)
class FaultSpec:
    """Per-link stochastic fault rates (all default to "healthy")."""

    #: probability a message is silently lost
    drop: float = 0.0
    #: probability a message is delivered twice
    dup: float = 0.0
    #: maximum extra delivery delay in ms, drawn uniformly from
    #: ``[0, delay_ms]`` — enough to reorder back-to-back messages
    delay_ms: float = 0.0

    @property
    def healthy(self) -> bool:
        return self.drop <= 0.0 and self.dup <= 0.0 and self.delay_ms <= 0.0


@dataclass(frozen=True)
class PartitionWindow:
    """The network between two process groups is severed on
    ``[t0, t1)``; ``a``/``b`` of ``None`` mean "every process"."""

    t0: float
    t1: float
    a: Optional[FrozenSet[str]] = None
    b: Optional[FrozenSet[str]] = None

    def severs(self, src: str, dst: Optional[str], now: float) -> bool:
        if not (self.t0 <= now < self.t1):
            return False
        if self.a is None or self.b is None:
            return True
        if dst is None:
            return False
        return (src in self.a and dst in self.b) or (
            src in self.b and dst in self.a
        )


@dataclass
class Verdict:
    """What the fault plane decided for one message."""

    drop: bool = False
    dup: bool = False
    delay_ms: float = 0.0
    #: the drop came from an active partition window (vs random loss)
    partitioned: bool = False


@dataclass
class FaultPlan:
    """A declarative, seed-replayable fault schedule.

    Built fluently::

        plan = (FaultPlan()
                .drop(0.05)                      # every link
                .drop(0.5, link=3)               # override one link
                .partition(200.0, 900.0,
                           a=("client",), b=("server",)))
    """

    default: FaultSpec = field(default_factory=FaultSpec)
    per_link: Dict[int, FaultSpec] = field(default_factory=dict)
    partitions: List[PartitionWindow] = field(default_factory=list)
    #: retransmit period of kernel-placement ("absolutes") backends
    kernel_retransmit_ms: float = 25.0

    # fluent builders ---------------------------------------------------
    def _update(self, link: Optional[int], **kw) -> "FaultPlan":
        if link is None:
            self.default = replace(self.default, **kw)
        else:
            self.per_link[link] = replace(
                self.per_link.get(link, self.default), **kw
            )
        return self

    def drop(self, p: float, link: Optional[int] = None) -> "FaultPlan":
        return self._update(link, drop=p)

    def duplicate(self, p: float, link: Optional[int] = None) -> "FaultPlan":
        return self._update(link, dup=p)

    def delay(self, ms: float, link: Optional[int] = None) -> "FaultPlan":
        return self._update(link, delay_ms=ms)

    def partition(
        self,
        t0: float,
        t1: float,
        a: Optional[Tuple[str, ...]] = None,
        b: Optional[Tuple[str, ...]] = None,
    ) -> "FaultPlan":
        self.partitions.append(PartitionWindow(
            t0, t1,
            None if a is None else frozenset(a),
            None if b is None else frozenset(b),
        ))
        return self

    def spec_for(self, link: int) -> FaultSpec:
        return self.per_link.get(link, self.default)

    @property
    def empty(self) -> bool:
        return (
            self.default.healthy
            and all(s.healthy for s in self.per_link.values())
            and not self.partitions
        )


class FaultInjector:
    """A `FaultPlan` bound to one cluster's engine, rng and metrics.

    ``judge`` is consulted by the runtime once per runtime-level
    message transmission and returns a `Verdict`.  Counters land under
    ``faults.*``; partition healings are announced on the trace log
    (and counted) when their window closes, so a sequence chart shows
    when the network came back.
    """

    def __init__(
        self,
        engine: Engine,
        plan: FaultPlan,
        rng: SimRandom,
        metrics: MetricSet,
        trace=None,
    ) -> None:
        self.engine = engine
        self.plan = plan
        self.rng = rng
        self.metrics = metrics
        self.trace = trace
        self._streams: Dict[Tuple[int, str], SimRandom] = {}
        for i, win in enumerate(plan.partitions):
            engine.schedule_at(max(win.t0, engine.now), self._entered, i, win)
            engine.schedule_at(max(win.t1, engine.now), self._healed, i, win)

    def _entered(self, idx: int, win: PartitionWindow) -> None:
        self.metrics.count("faults.partitions_entered")
        if self.trace is not None:
            # a flight-recorder trigger (repro.obs.flight): the black
            # box snapshots the healthy lead-up as the window opens
            self.trace.emit(
                "faults", "partition-entered", window=idx,
                t0=win.t0, t1=win.t1,
            )

    def _healed(self, idx: int, win: PartitionWindow) -> None:
        self.metrics.count("faults.partitions_healed")
        if self.trace is not None:
            self.trace.emit(
                "faults", "partition-healed", window=idx,
                t0=win.t0, t1=win.t1,
            )

    def _stream(self, link: int, kind: str) -> SimRandom:
        key = (link, kind)
        s = self._streams.get(key)
        if s is None:
            s = self._streams[key] = self.rng.child(f"L{link}/{kind}")
        return s

    def partitioned(self, src: str, dst: Optional[str]) -> bool:
        if dst == src:
            # a process always reaches itself: same-process links never
            # cross the network, so no partition can sever them
            return False
        now = self.engine.now
        return any(w.severs(src, dst, now) for w in self.plan.partitions)

    def judge(
        self, src: str, dst: Optional[str], link: int, kind: str
    ) -> Verdict:
        """Decide the fate of one message from ``src`` to ``dst`` on
        ``link`` (``kind`` is the wire kind, e.g. ``"request"``)."""
        if self.partitioned(src, dst):
            self.metrics.count("faults.partition_dropped")
            return Verdict(drop=True, partitioned=True)
        spec = self.plan.spec_for(link)
        if spec.healthy:
            return Verdict()
        stream = self._stream(link, kind)
        if stream.bernoulli(spec.drop):
            self.metrics.count("faults.dropped")
            return Verdict(drop=True)
        v = Verdict()
        if stream.bernoulli(spec.dup):
            self.metrics.count("faults.duplicated")
            v.dup = True
        if spec.delay_ms > 0.0:
            v.delay_ms = stream.uniform(0.0, spec.delay_ms)
            if v.delay_ms > 0.0:
                self.metrics.count("faults.delayed")
        return v
