"""Deterministic discrete-event simulation substrate.

This package is the "hardware" of the reproduction: everything the paper
ran on physical machines (VAX nodes on a token ring, PDP-11s on a CSMA
bus, a shared-memory Butterfly) runs here on a single-threaded,
deterministic event engine with simulated time.

Modules
-------
engine   : the event loop (`Engine`) and simulated clock.
futures  : `Future`, the completion primitive kernels hand to tasks.
tasks    : `Task`, which drives generator coroutines over futures.
network  : latency/bandwidth models for the three interconnects.
metrics  : counters and latency recorders shared by kernels and benches.
failure  : crash / message-loss injection.
rng      : seeded randomness helpers (all randomness flows through here).
"""

from repro.sim.engine import Engine, Event
from repro.sim.futures import Future, FutureState, gather, first_of
from repro.sim.tasks import Task, TaskKilled, sleep
from repro.sim.metrics import MetricSet, LatencyRecorder
from repro.sim.network import (
    NetworkModel,
    TokenRing,
    CSMABus,
    SharedMemoryInterconnect,
)
from repro.sim.failure import FailurePlan, CrashInjector
from repro.sim.rng import SimRandom
from repro.sim.trace import TraceLog, TraceEvent

__all__ = [
    "Engine",
    "Event",
    "Future",
    "FutureState",
    "gather",
    "first_of",
    "Task",
    "TaskKilled",
    "sleep",
    "MetricSet",
    "LatencyRecorder",
    "NetworkModel",
    "TokenRing",
    "CSMABus",
    "SharedMemoryInterconnect",
    "FailurePlan",
    "CrashInjector",
    "SimRandom",
    "TraceLog",
    "TraceEvent",
]
