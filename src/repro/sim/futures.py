"""Futures: the completion primitive connecting kernels to tasks.

A `Future` is resolved (or failed) exactly once, at some simulated time;
callbacks registered on it run at the instant of resolution.  Tasks
(`repro.sim.tasks.Task`) suspend by yielding a Future and resume when it
settles.

Futures are the only suspension mechanism in the whole reproduction:
kernel calls, network deliveries, dual-queue waits and software
interrupts all surface as futures.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, List, Optional, Sequence

from repro.sim.engine import Engine


class FutureState(enum.Enum):
    PENDING = "pending"
    DONE = "done"
    FAILED = "failed"


class InvalidFutureTransition(RuntimeError):
    """A future was resolved or failed more than once."""


class Future:
    """A single-assignment cell that settles at a simulated instant.

    Callbacks run synchronously inside ``resolve``/``fail`` — callers that
    need "run later this instant" ordering should resolve via
    ``engine.call_soon``.
    """

    __slots__ = ("engine", "state", "value", "error", "_callbacks", "label")

    def __init__(self, engine: Engine, label: str = "") -> None:
        self.engine = engine
        self.state = FutureState.PENDING
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self._callbacks: List[Callable[["Future"], None]] = []
        #: free-form tag for tracing and error messages
        self.label = label

    # ------------------------------------------------------------------
    def is_settled(self) -> bool:
        return self.state is not FutureState.PENDING

    def resolve(self, value: Any = None) -> None:
        """Settle successfully with ``value``."""
        if self.state is not FutureState.PENDING:
            raise InvalidFutureTransition(
                f"future {self.label!r} already {self.state.value}"
            )
        self.state = FutureState.DONE
        self.value = value
        self._fire()

    def fail(self, error: BaseException) -> None:
        """Settle with an exception; the waiting task will see it raised."""
        if self.state is not FutureState.PENDING:
            raise InvalidFutureTransition(
                f"future {self.label!r} already {self.state.value}"
            )
        self.state = FutureState.FAILED
        self.error = error
        self._fire()

    def resolve_later(self, delay: float, value: Any = None):
        """Schedule resolution ``delay`` ms from now; returns the Event."""
        return self.engine.schedule(delay, self._safe_resolve, value)

    def fail_later(self, delay: float, error: BaseException):
        return self.engine.schedule(delay, self._safe_fail, error)

    def _safe_resolve(self, value: Any) -> None:
        if self.state is FutureState.PENDING:
            self.resolve(value)

    def _safe_fail(self, error: BaseException) -> None:
        if self.state is FutureState.PENDING:
            self.fail(error)

    # ------------------------------------------------------------------
    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Register ``fn(self)`` to run when the future settles (or
        immediately if it already has)."""
        if self.is_settled():
            fn(self)
        else:
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def result(self) -> Any:
        """The settled value; raises if pending or failed."""
        if self.state is FutureState.DONE:
            return self.value
        if self.state is FutureState.FAILED:
            assert self.error is not None
            raise self.error
        raise InvalidFutureTransition(f"future {self.label!r} still pending")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Future {self.label!r} {self.state.value}>"


def gather(engine: Engine, futures: Sequence[Future], label: str = "gather") -> Future:
    """A future that resolves to the list of values once *all* inputs have
    resolved; it fails with the first failure observed."""
    out = Future(engine, label)
    remaining = len(futures)
    if remaining == 0:
        out.resolve([])
        return out
    results: List[Any] = [None] * remaining

    def make_cb(index: int):
        def cb(f: Future) -> None:
            nonlocal remaining
            if out.is_settled():
                return
            if f.state is FutureState.FAILED:
                assert f.error is not None
                out.fail(f.error)
                return
            results[index] = f.value
            remaining -= 1
            if remaining == 0:
                out.resolve(list(results))

        return cb

    for i, f in enumerate(futures):
        f.add_done_callback(make_cb(i))
    return out


def first_of(engine: Engine, futures: Sequence[Future], label: str = "first") -> Future:
    """A future that settles with the (index, value) of the first input to
    resolve, or fails with the first failure."""
    out = Future(engine, label)

    def make_cb(index: int):
        def cb(f: Future) -> None:
            if out.is_settled():
                return
            if f.state is FutureState.FAILED:
                assert f.error is not None
                out.fail(f.error)
            else:
                out.resolve((index, f.value))

        return cb

    for i, f in enumerate(futures):
        f.add_done_callback(make_cb(i))
    return out
