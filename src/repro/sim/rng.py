"""Seeded randomness for the simulation.

All nondeterminism in the reproduction — CSMA backoff, SODA broadcast
loss, workload arrival jitter, crash times — flows through a `SimRandom`
so that a run is exactly reproducible from its seed.  Components take a
`SimRandom` (or fork one with `child`) rather than touching the `random`
module directly.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")


class SimRandom:
    """A named, seeded random stream.

    ``child(name)`` derives an independent stream deterministically from
    the parent seed and the name, so adding a new consumer of randomness
    does not perturb the draws seen by existing consumers — important
    when comparing benchmark runs across code versions.
    """

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self.seed = seed
        self.name = name
        self._rng = random.Random(f"{seed}\x00{name}")
        # `random` and `uniform` are pure delegation on simulator hot
        # paths (every event draws jitter); bind the underlying stream's
        # methods directly so each draw costs one call, not two
        self.random = self._rng.random
        self.uniform = self._rng.uniform

    def child(self, name: str) -> "SimRandom":
        """Derive an independent stream tied to ``name``."""
        return SimRandom(self.seed, f"{self.name}/{name}")

    # thin wrappers -----------------------------------------------------
    def random(self) -> float:
        return self._rng.random()

    def uniform(self, lo: float, hi: float) -> float:
        return self._rng.uniform(lo, hi)

    def expovariate(self, rate: float) -> float:
        return self._rng.expovariate(rate)

    def randint(self, lo: int, hi: int) -> int:
        return self._rng.randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: list) -> None:
        self._rng.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def jitter(self, base: float, fraction: float = 0.1) -> float:
        """``base`` perturbed uniformly by ±``fraction``; never negative."""
        return max(0.0, base * self._rng.uniform(1.0 - fraction, 1.0 + fraction))
