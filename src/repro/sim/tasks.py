"""Tasks: generator coroutines driven over the event engine.

A simulated *process* (a Charlotte process, a SODA client processor, a
Chrysalis process) is a Python generator that yields `Future` objects
when it must wait for simulated time to pass or for a kernel completion.
`Task` drives one such generator.

The yield protocol
------------------
A task generator may yield:

* a ``Future`` — the task suspends until the future settles; a resolved
  future resumes the generator with its value, a failed one raises the
  failure *inside* the generator (so simulated code can catch simulated
  exceptions);
* ``None`` — the task is rescheduled at the current instant, after other
  pending same-instant events (a cooperative yield).

The generator's ``return`` value becomes the result of ``task.done``
(itself a Future), so whole processes compose as futures.

Note the two-level coroutine structure of the reproduction: LYNX
*threads inside a process* are scheduled by the language run-time
package (in mutual exclusion, per paper §2), and are **not** Tasks; only
whole processes are.  This mirrors the paper, where coroutines "may be
managed by the language run-time package, much like the coroutines of
Modula-2".
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.engine import Engine
from repro.sim.futures import Future, FutureState


class TaskKilled(BaseException):
    """Thrown into a task generator when the task is killed (crash
    injection, process termination).  Derives from BaseException so that
    simulated code's ``except Exception`` clean-up blocks do not swallow
    a kill — but ``finally`` blocks still run, which is exactly what the
    Chrysalis runtime relies on to destroy its links on the way out
    (paper §5.2)."""


class Task:
    """Drives a generator coroutine over an `Engine`.

    Parameters
    ----------
    engine : Engine
    gen : generator yielding futures (see module docstring)
    name : diagnostic label
    """

    def __init__(self, engine: Engine, gen: Generator, name: str = "task") -> None:
        self.engine = engine
        self.gen = gen
        self.name = name
        #: settles with the generator's return value (or its exception)
        self.done: Future = Future(engine, f"{name}.done")
        self._waiting_on: Optional[Future] = None
        self._kill_pending: Optional[TaskKilled] = None
        # start on the next tick so construction order does not matter
        engine.call_soon(self._step, None, None)

    # ------------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self.done.is_settled()

    def kill(self, reason: str = "killed") -> None:
        """Deliver `TaskKilled` at the task's current (or next) yield
        point.  The generator may catch it and continue — that is how
        runtimes perform orderly crash clean-up — or let it propagate,
        failing ``done``.  Idempotent; a finished task ignores kills."""
        if self.finished or self._kill_pending is not None:
            return
        self._kill_pending = TaskKilled(reason)
        # Detach from whatever it was waiting on and resume with the kill.
        self._waiting_on = None
        self.engine.call_soon(self._step, None, None)

    # ------------------------------------------------------------------
    def _step(self, value: Any, error: Optional[BaseException]) -> None:
        if self.finished:
            return
        if self._kill_pending is not None and error is None:
            error, self._kill_pending = self._kill_pending, None
        self._waiting_on = None
        try:
            if error is not None:
                yielded = self.gen.throw(error)
            else:
                yielded = self.gen.send(value)
        except StopIteration as stop:
            self.done.resolve(stop.value)
            return
        except TaskKilled as kill:
            self.done.fail(kill)
            return
        except BaseException as exc:
            self.done.fail(exc)
            return

        if yielded is None:
            self.engine.call_soon(self._step, None, None)
        elif isinstance(yielded, Future):
            self._wait_on(yielded)
        else:
            err = TypeError(
                f"task {self.name!r} yielded {type(yielded).__name__}; "
                "only Future or None may be yielded"
            )
            self.engine.call_soon(self._step, None, err)

    def _wait_on(self, fut: Future) -> None:
        self._waiting_on = fut

        def on_settle(f: Future) -> None:
            if self._waiting_on is not f:
                return  # task was killed or redirected meanwhile
            if f.state is FutureState.DONE:
                self.engine.call_soon(self._step, f.value, None)
            else:
                self.engine.call_soon(self._step, None, f.error)

        fut.add_done_callback(on_settle)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Task {self.name!r} {state}>"


def sleep(engine: Engine, delay: float, label: str = "sleep") -> Future:
    """A future that resolves ``delay`` ms from now — the idiom simulated
    code uses to burn simulated CPU time: ``yield sleep(eng, 0.5)``."""
    fut = Future(engine, label)
    fut.resolve_later(delay, None)
    return fut
