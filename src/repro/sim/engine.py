"""The discrete-event engine: a deterministic clock and event heap.

Every component of the reproduction — kernels, runtimes, networks,
failure injectors — schedules work through one `Engine`.  Determinism is
a hard requirement (the conformance suite and the benchmark tables must
be exactly reproducible), so:

* events fire in (time, sequence-number) order: ties are broken by
  insertion order, never by identity hash;
* there is no wall-clock anywhere; `Engine.now` is the only clock;
* all randomness used by simulated hardware flows through
  `repro.sim.rng.SimRandom`, seeded per run.

Time is a float in **milliseconds** throughout the project, matching the
units of the paper's tables (57 ms, 2.4 ms, ...).
"""

from __future__ import annotations

import heapq
# dispatch profiling prices callbacks in real host time on purpose;
# it never feeds back into simulated state (see DispatchProfile)
from time import perf_counter  # repro: allow[DET001]
from typing import Any, Callable, Dict, List, Optional, Tuple


class EngineError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


def _callback_key(fn: Callable[..., Any]) -> str:
    """A stable aggregation key for an event callback: the qualified
    name for functions and bound methods, the type name otherwise
    (partials, callables)."""
    key = getattr(fn, "__qualname__", None)
    if key is None:
        key = type(fn).__name__
    return key


class DispatchProfile:
    """Per-callback dispatch counts and wall-clock cost.

    Populated by `Engine.step` only when the engine was built with
    ``profile=True`` — the default hot path never touches it.  Keys are
    callback qualified names (``CharlotteKernel._deliver``, ...); wall
    time is real seconds spent *inside* the callback, which for a
    simulator measures the cost of simulating, not simulated time.
    """

    __slots__ = ("counts", "wall_s")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.wall_s: Dict[str, float] = {}

    def record(self, key: str, seconds: float) -> None:
        self.counts[key] = self.counts.get(key, 0) + 1
        self.wall_s[key] = self.wall_s.get(key, 0.0) + seconds

    def rows(self) -> List[Tuple[str, int, float]]:
        """``(key, count, wall_ms)`` rows, most expensive first."""
        return sorted(
            ((k, self.counts[k], self.wall_s[k] * 1e3) for k in self.counts),
            key=lambda row: row[2],
            reverse=True,
        )

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            k: {"count": self.counts[k], "wall_ms": self.wall_s[k] * 1e3}
            for k in sorted(self.counts)
        }

    def render(self, limit: int = 20) -> str:
        lines = [f"{'callback':<44} {'count':>8} {'wall ms':>10}"]
        for key, count, wall_ms in self.rows()[:limit]:
            lines.append(f"{key:<44} {count:>8} {wall_ms:>10.3f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DispatchProfile kinds={len(self.counts)}>"


class Event:
    """A scheduled callback; returned by `Engine.schedule` so it can be
    cancelled before it fires.

    Cancellation is O(1): the heap entry is tombstoned rather than
    removed, and skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} {self.fn!r}>"


class Engine:
    """A deterministic discrete-event scheduler.

    Usage::

        eng = Engine()
        eng.schedule(5.0, callback, arg1)
        eng.run()            # runs until the heap is empty
        eng.run(until=100.0) # or until simulated time passes 100 ms

    The engine deliberately has no notion of processes; see
    `repro.sim.tasks.Task` for coroutine driving.

    Construction note: layers above ``repro.sim`` obtain engines through
    the `repro.sim.backends` registry (``make_engine``), never by
    calling ``Engine(...)`` directly — the SIM002 lint rule enforces
    this so every workload can run on the sharded backends unchanged.
    """

    #: shard count — the global engine is always a single shard; the
    #: sharded backends (`repro.sim.backends`) override this
    shards: int = 1
    #: conservative-synchronization lookahead (ms); adopted from the
    #: interconnect's latency floor (`note_link_floor`) unless set
    #: explicitly via the backend registry
    lookahead_ms: float = 0.0
    #: smallest guaranteed per-link transit time any network model has
    #: registered; 0.0 until a model reports one
    link_floor_ms: float = 0.0
    #: whether `lookahead_ms` tracks `link_floor_ms` automatically
    _lookahead_auto: bool = True

    def __init__(self, profile: bool = False) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._running: bool = False
        #: per-shard cross-shard message receivers (`bind_receiver`)
        self._receivers: Dict[int, Callable[..., Any]] = {}
        #: per-shard result extractors (`bind_harvest`)
        self._harvest: Dict[int, Callable[[], Any]] = {}
        #: optional hook called as trace(engine, event) before each event
        self.trace_hook: Optional[Callable[["Engine", Event], None]] = None
        #: per-callback dispatch statistics; None unless ``profile=True``
        self.profile: Optional[DispatchProfile] = (
            DispatchProfile() if profile else None
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now.

        ``delay`` must be >= 0; a zero delay runs after all events already
        scheduled for the current instant (FIFO at equal timestamps).
        """
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        # Inlined schedule_at: delay >= 0 already guarantees the
        # absolute-time bound, and this is the hottest call in the
        # simulator (every message hop schedules at least one event).
        ev = Event(self.now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise EngineError(
                f"cannot schedule at t={time} before current t={self.now}"
            )
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current instant (after pending
        same-instant events)."""
        return self.schedule(0.0, fn, *args)

    def defer(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget `schedule`: no cancellation handle is
        returned.  The sharded backends skip allocating one entirely;
        here it only drops the return value, but workloads that use
        ``defer`` run unchanged — and faster — on every backend."""
        self.schedule(delay, fn, *args)

    # ------------------------------------------------------------------
    # shard-tagged scheduling
    #
    # The global engine is a single shard, so these are degenerate
    # forms of the API the sharded backends (`repro.sim.backends`)
    # implement with real per-shard queues.  Workloads written against
    # this surface run bit-identically on every registered backend.
    # ------------------------------------------------------------------
    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self.shards:
            raise EngineError(
                f"shard {shard} out of range for {self.shards}-shard engine"
            )

    def schedule_on(
        self, shard: int, delay: float, fn: Callable[..., Any], *args: Any
    ) -> Event:
        """`schedule` onto an explicit shard's queue (here: the only
        queue)."""
        self._check_shard(shard)
        return self.schedule(delay, fn, *args)

    def defer_on(
        self, shard: int, delay: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        """`defer` onto an explicit shard's queue."""
        self._check_shard(shard)
        self.schedule(delay, fn, *args)

    def shard_now(self, shard: int) -> float:
        """The shard-local clock — on the global engine, `now`."""
        self._check_shard(shard)
        return self.now

    def bind_receiver(self, shard: int, fn: Callable[..., Any]) -> None:
        """Register ``fn`` as the cross-shard message receiver for
        ``shard``: `post` targets it by shard id, so messages stay
        addressable when shards live in other worker processes."""
        self._check_shard(shard)
        self._receivers[shard] = fn

    def post(self, shard: int, delay: float, key: str, *args: Any) -> None:
        """Deliver a cross-shard message: ``receiver(key, *args)`` on
        ``shard``, ``delay`` ms from now.

        ``delay`` must be at least `lookahead_ms` — on the sharded
        backends that bound is what makes conservative windows safe;
        the global engine enforces the same contract (trivially, at
        0.0) so a workload cannot pass here and fail there.
        """
        self._check_shard(shard)
        if delay < self.lookahead_ms:
            raise EngineError(
                f"cross-shard post delay {delay} ms is below the "
                f"lookahead bound {self.lookahead_ms} ms"
            )
        fn = self._receivers.get(shard)
        if fn is None:
            raise EngineError(f"no receiver bound on shard {shard}")
        self.schedule(delay, fn, key, *args)

    def note_link_floor(self, floor_ms: float) -> None:
        """A `repro.sim.network` model reports its guaranteed minimum
        transit time.  The smallest reported floor becomes the
        conservative-synchronization lookahead (unless one was pinned
        explicitly through the backend registry): no frame can arrive
        sooner, so windows of that width are safe on every backend."""
        if floor_ms <= 0.0:
            return
        if self.link_floor_ms <= 0.0 or floor_ms < self.link_floor_ms:
            self.link_floor_ms = floor_ms
            if self._lookahead_auto:
                self.lookahead_ms = floor_ms

    def bind_harvest(self, shard: int, fn: Callable[[], Any]) -> None:
        """Register the callable that extracts ``shard``'s final
        results.  `harvest` runs them after the simulation; on the
        multiprocess backend they run *inside* the worker owning the
        shard, so this is the only way to get per-shard state back."""
        self._check_shard(shard)
        self._harvest[shard] = fn

    def harvest(self) -> List[Any]:
        """Collect per-shard results, in shard order."""
        return [self._harvest[s]() for s in sorted(self._harvest)]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next non-cancelled event.

        Returns False when the heap is exhausted.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time < self.now:  # pragma: no cover - defensive
                raise EngineError("event heap corrupted: time went backwards")
            self.now = ev.time
            if self.trace_hook is not None:
                self.trace_hook(self, ev)
            self._events_fired += 1
            if self.profile is None:
                ev.fn(*ev.args)
            else:
                t0 = perf_counter()
                ev.fn(*ev.args)
                self.profile.record(_callback_key(ev.fn), perf_counter() - t0)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the heap empties, ``until`` is passed, or
        ``max_events`` have fired.  Returns the number of events fired by
        this call.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the run stops because a *pending* event lies beyond
        ``until``, the clock advances to ``until``; when the heap simply
        empties, the clock stays at the last event fired (so it reads as
        the workload's true duration).
        """
        if (
            until is None
            and max_events is None
            and self.trace_hook is None
            and self.profile is None
        ):
            return self._run_fast()
        fired = 0
        self._running = True
        try:
            # driven through `_peek_time`/`step` (not `self._heap`
            # directly) so backends with their own queue layout — the
            # sharded-serial oracle — inherit this loop unchanged
            while True:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._peek_time()
                if nxt is None:
                    break
                if until is not None and nxt > until:
                    self.now = max(self.now, until)
                    break
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        return fired

    def _run_fast(self) -> int:
        """Drain the heap with no stop condition, tracing or profiling.

        This is `run()` with the per-event bookkeeping hoisted out of
        the loop: no `_peek_time`, no per-event `until`/`max_events`
        tests, locals for the heap and `heappop`.  Benchmarked in S1
        (docs/PERFORMANCE.md); semantics are identical to the general
        loop for this argument combination.
        """
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        self._running = True
        try:
            while heap:
                ev = pop(heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                # count first: `step` counts an event even when its
                # callback raises, and the finally below flushes
                fired += 1
                ev.fn(*ev.args)
        finally:
            self._running = False
            self._events_fired += fired
        return fired

    def _peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of non-cancelled events still scheduled."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self.now:.6f} pending={self.pending}>"
