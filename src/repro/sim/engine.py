"""The discrete-event engine: a deterministic clock and event heap.

Every component of the reproduction — kernels, runtimes, networks,
failure injectors — schedules work through one `Engine`.  Determinism is
a hard requirement (the conformance suite and the benchmark tables must
be exactly reproducible), so:

* events fire in (time, sequence-number) order: ties are broken by
  insertion order, never by identity hash;
* there is no wall-clock anywhere; `Engine.now` is the only clock;
* all randomness used by simulated hardware flows through
  `repro.sim.rng.SimRandom`, seeded per run.

Time is a float in **milliseconds** throughout the project, matching the
units of the paper's tables (57 ms, 2.4 ms, ...).
"""

from __future__ import annotations

import heapq
# dispatch profiling prices callbacks in real host time on purpose;
# it never feeds back into simulated state (see DispatchProfile)
from time import perf_counter  # repro: allow[DET001]
from typing import Any, Callable, Dict, List, Optional, Tuple


class EngineError(RuntimeError):
    """Raised for misuse of the engine (e.g. scheduling in the past)."""


def _callback_key(fn: Callable[..., Any]) -> str:
    """A stable aggregation key for an event callback: the qualified
    name for functions and bound methods, the type name otherwise
    (partials, callables)."""
    key = getattr(fn, "__qualname__", None)
    if key is None:
        key = type(fn).__name__
    return key


class DispatchProfile:
    """Per-callback dispatch counts and wall-clock cost.

    Populated by `Engine.step` only when the engine was built with
    ``profile=True`` — the default hot path never touches it.  Keys are
    callback qualified names (``CharlotteKernel._deliver``, ...); wall
    time is real seconds spent *inside* the callback, which for a
    simulator measures the cost of simulating, not simulated time.
    """

    __slots__ = ("counts", "wall_s")

    def __init__(self) -> None:
        self.counts: Dict[str, int] = {}
        self.wall_s: Dict[str, float] = {}

    def record(self, key: str, seconds: float) -> None:
        self.counts[key] = self.counts.get(key, 0) + 1
        self.wall_s[key] = self.wall_s.get(key, 0.0) + seconds

    def rows(self) -> List[Tuple[str, int, float]]:
        """``(key, count, wall_ms)`` rows, most expensive first."""
        return sorted(
            ((k, self.counts[k], self.wall_s[k] * 1e3) for k in self.counts),
            key=lambda row: row[2],
            reverse=True,
        )

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            k: {"count": self.counts[k], "wall_ms": self.wall_s[k] * 1e3}
            for k in sorted(self.counts)
        }

    def render(self, limit: int = 20) -> str:
        lines = [f"{'callback':<44} {'count':>8} {'wall ms':>10}"]
        for key, count, wall_ms in self.rows()[:limit]:
            lines.append(f"{key:<44} {count:>8} {wall_ms:>10.3f}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DispatchProfile kinds={len(self.counts)}>"


class Event:
    """A scheduled callback; returned by `Engine.schedule` so it can be
    cancelled before it fires.

    Cancellation is O(1): the heap entry is tombstoned rather than
    removed, and skipped when popped.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state} {self.fn!r}>"


class Engine:
    """A deterministic discrete-event scheduler.

    Usage::

        eng = Engine()
        eng.schedule(5.0, callback, arg1)
        eng.run()            # runs until the heap is empty
        eng.run(until=100.0) # or until simulated time passes 100 ms

    The engine deliberately has no notion of processes; see
    `repro.sim.tasks.Task` for coroutine driving.
    """

    def __init__(self, profile: bool = False) -> None:
        self.now: float = 0.0
        self._heap: list[Event] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._running: bool = False
        #: optional hook called as trace(engine, event) before each event
        self.trace_hook: Optional[Callable[["Engine", Event], None]] = None
        #: per-callback dispatch statistics; None unless ``profile=True``
        self.profile: Optional[DispatchProfile] = (
            DispatchProfile() if profile else None
        )

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` ms from now.

        ``delay`` must be >= 0; a zero delay runs after all events already
        scheduled for the current instant (FIFO at equal timestamps).
        """
        if delay < 0:
            raise EngineError(f"cannot schedule {delay} ms in the past")
        # Inlined schedule_at: delay >= 0 already guarantees the
        # absolute-time bound, and this is the hottest call in the
        # simulator (every message hop schedules at least one event).
        ev = Event(self.now + delay, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self.now:
            raise EngineError(
                f"cannot schedule at t={time} before current t={self.now}"
            )
        ev = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current instant (after pending
        same-instant events)."""
        return self.schedule(0.0, fn, *args)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Fire the single next non-cancelled event.

        Returns False when the heap is exhausted.
        """
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            if ev.time < self.now:  # pragma: no cover - defensive
                raise EngineError("event heap corrupted: time went backwards")
            self.now = ev.time
            if self.trace_hook is not None:
                self.trace_hook(self, ev)
            self._events_fired += 1
            if self.profile is None:
                ev.fn(*ev.args)
            else:
                t0 = perf_counter()
                ev.fn(*ev.args)
                self.profile.record(_callback_key(ev.fn), perf_counter() - t0)
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the heap empties, ``until`` is passed, or
        ``max_events`` have fired.  Returns the number of events fired by
        this call.

        ``until`` is inclusive: events scheduled exactly at ``until`` run.
        When the run stops because a *pending* event lies beyond
        ``until``, the clock advances to ``until``; when the heap simply
        empties, the clock stays at the last event fired (so it reads as
        the workload's true duration).
        """
        if (
            until is None
            and max_events is None
            and self.trace_hook is None
            and self.profile is None
        ):
            return self._run_fast()
        fired = 0
        self._running = True
        try:
            while self._heap:
                if max_events is not None and fired >= max_events:
                    break
                nxt = self._peek_time()
                if until is not None and nxt is not None and nxt > until:
                    self.now = max(self.now, until)
                    break
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False
        return fired

    def _run_fast(self) -> int:
        """Drain the heap with no stop condition, tracing or profiling.

        This is `run()` with the per-event bookkeeping hoisted out of
        the loop: no `_peek_time`, no per-event `until`/`max_events`
        tests, locals for the heap and `heappop`.  Benchmarked in S1
        (docs/PERFORMANCE.md); semantics are identical to the general
        loop for this argument combination.
        """
        heap = self._heap
        pop = heapq.heappop
        fired = 0
        self._running = True
        try:
            while heap:
                ev = pop(heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                # count first: `step` counts an event even when its
                # callback raises, and the finally below flushes
                fired += 1
                ev.fn(*ev.args)
        finally:
            self._running = False
            self._events_fired += fired
        return fired

    def _peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of non-cancelled events still scheduled."""
        return sum(1 for ev in self._heap if not ev.cancelled)

    @property
    def events_fired(self) -> int:
        return self._events_fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Engine t={self.now:.6f} pending={self.pending}>"
