"""The LYNX run-time package for Charlotte (paper §3.2).

This is — deliberately — the most complicated of the three runtime
packages, because the paper's central finding is that Charlotte's
high-level primitives forced exactly this complexity:

* **Activity management**: the kernel allows one outstanding send and
  one outstanding receive per link end, so logical messages queue in
  the runtime and a per-end pump feeds them to the kernel one at a
  time.

* **Screening / unwanted messages (§3.2.1)**: the kernel's Receive
  cannot distinguish requests from replies on the same link, so a
  process waiting only for a reply may receive a request it cannot
  serve.  Unwanted requests are bounced with ``retry`` (no negative
  side state; the resent message is delayed by the kernel because no
  Receive is posted) or ``forbid``/``allow`` (when we must keep a
  Receive posted for an expected reply, a bare retry would bounce
  forever).

* **Multi-enclosure messages (§3.2.2, figure 2)**: the kernel carries
  at most one enclosure per message, so the runtime splits logical
  messages into a first packet plus ``enc`` packets, with a
  ``goahead`` handshake for requests so the sender knows the request
  is wanted before committing the remaining enclosures.

* **Semantic deviations**: receipt is approximated by kernel
  send-completion, so (a) an aborted request whose receiver crashes
  loses its enclosures (§3.2.2 a–d, asserted by the conformance
  suite), and (b) a server never feels `RequestAborted` on a
  no-longer-wanted reply — unless the optional reply-acknowledgment
  ablation (``reply_acks=True``; +50 % traffic, §3.3/E7) is enabled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, List, Optional

from repro.analysis.costmodel import RuntimeCosts
from repro.charlotte.kernel import (
    CallStatus,
    Completion,
    CompletionKind,
    Direction,
    KernelPort,
)
from repro.core.exceptions import ProtocolViolation
from repro.core.links import EndLifecycle, EndRef, EndState
from repro.core.runtime import LynxRuntimeBase
from repro.core.wire import ExceptionCode, MsgKind, WireMessage


@dataclass
class _OutTransfer:
    """One logical message being sent as one or more kernel packets."""

    logical: WireMessage
    packets: List[WireMessage]
    needs_goahead: bool
    awaiting_goahead: bool = False

    @property
    def done(self) -> bool:
        return not self.packets and not self.awaiting_goahead


@dataclass
class _PartialIn:
    """A multi-packet logical message being reassembled (fig. 2)."""

    first: WireMessage
    expected: int
    enclosures: List[EndRef] = field(default_factory=list)
    metas: List[dict] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        # ``enclosures`` already includes the first packet's enclosure
        return len(self.enclosures) >= self.expected


@dataclass
class _CharEnd:
    """Charlotte-specific per-end state, parallel to `EndState`."""

    ref: EndRef
    recv_posted: bool = False
    kernel_send_busy: bool = False
    outq: Deque[_OutTransfer] = field(default_factory=deque)
    current: Optional[_OutTransfer] = None
    #: peer sent us FORBID: our requests are stashed until ALLOW
    forbidden: bool = False
    forbid_blocked: Deque[WireMessage] = field(default_factory=deque)
    #: we sent FORBID and owe an ALLOW (§3.2.1)
    forbid_sent: bool = False
    partial_in: Dict[int, _PartialIn] = field(default_factory=dict)
    #: wanted, kernel-received requests staged for consumption
    held: Deque[WireMessage] = field(default_factory=deque)
    #: logical sends remembered for bounce handling, by seq
    sent_log: Dict[int, WireMessage] = field(default_factory=dict)


class CharlotteRuntime(LynxRuntimeBase):
    RUNTIME_NAME = "charlotte"

    def __init__(self, handle, cluster) -> None:
        super().__init__(handle, cluster)
        self.kport: KernelPort = cluster.kernel.register_process(
            self.name, handle.node
        )
        self.cends: Dict[EndRef, _CharEnd] = {}
        #: E7 ablation: top-level acknowledgments for replies
        self.reply_acks: bool = getattr(cluster, "reply_acks", False)
        #: A1 ablation: bounce every unwanted request with RETRY, even
        #: when a Receive must stay posted — §3.2.1 explains why this
        #: invites "an arbitrary number of retransmissions"
        self.no_forbid: bool = getattr(cluster, "no_forbid", False)
        #: outstanding kernel Wait (kept across internal wakeups so a
        #: single completion is never lost)
        self._kwait = None

    def runtime_costs(self) -> RuntimeCosts:
        return self.cluster.costmodel.charlotte.runtime

    # ------------------------------------------------------------------
    # small helpers
    # ------------------------------------------------------------------
    def _ce(self, ref: EndRef) -> _CharEnd:
        ce = self.cends.get(ref)
        if ce is None:
            ce = self.cends[ref] = _CharEnd(ref)
        return ce

    def _control(self, es: EndState, kind: MsgKind, reply_to: int,
                 enclosures: Optional[List[EndRef]] = None,
                 metas: Optional[List[dict]] = None,
                 error: Optional[ExceptionCode] = None,
                 span=None) -> WireMessage:
        return WireMessage(
            kind=kind,
            seq=es.alloc_seq(),
            reply_to=reply_to,
            enclosures=list(enclosures or []),
            enclosure_meta=list(metas or [{}] * len(enclosures or [])),
            enc_total=len(enclosures or []),
            error=error,
            sent_at=self.engine.now,
            span=span,
        )

    def _packetise(self, logical: WireMessage) -> _OutTransfer:
        """Split a logical message into kernel packets: at most one
        enclosure each (§3.2.2)."""
        first = logical.clone_for_resend()
        first.enclosures = logical.enclosures[:1]
        first.enclosure_meta = logical.enclosure_meta[:1]
        first.enc_total = len(logical.enclosures)
        packets = [first]
        for i, enc in enumerate(logical.enclosures[1:], start=1):
            meta = (
                logical.enclosure_meta[i]
                if i < len(logical.enclosure_meta)
                else {}
            )
            packets.append(
                WireMessage(
                    kind=MsgKind.ENC,
                    seq=logical.seq,
                    enclosures=[enc],
                    enclosure_meta=[meta],
                    enc_total=len(logical.enclosures),
                    sent_at=self.engine.now,
                    span=logical.span,
                )
            )
        needs_goahead = (
            logical.kind is MsgKind.REQUEST and len(logical.enclosures) >= 2
        )
        return _OutTransfer(logical, packets, needs_goahead)

    def _enqueue(self, es: EndState, logical: WireMessage, control: bool = False):
        ce = self._ce(es.ref)
        tr = self._packetise(logical)
        if control:
            ce.outq.appendleft(tr)
        else:
            ce.outq.append(tr)
        if logical.kind in (MsgKind.REQUEST, MsgKind.REPLY, MsgKind.EXCEPTION):
            ce.sent_log[logical.seq] = logical
        return tr

    # ------------------------------------------------------------------
    # the send pump: one kernel send outstanding per end
    # ------------------------------------------------------------------
    def _pump(self, es: EndState) -> Generator:
        ce = self._ce(es.ref)
        while not ce.kernel_send_busy:
            if ce.current is None or ce.current.done:
                ce.current = None
                # skip requests while forbidden ("still free to send
                # replies", §3.2.1)
                picked = None
                for tr in list(ce.outq):
                    if ce.forbidden and tr.logical.kind is MsgKind.REQUEST:
                        continue
                    picked = tr
                    break
                if picked is None:
                    return
                ce.outq.remove(picked)
                ce.current = picked
            tr = ce.current
            if tr.awaiting_goahead or not tr.packets:
                return
            pkt = tr.packets[0]
            enclosure = pkt.enclosures[0] if pkt.enclosures else None
            status = yield self.kport.send(es.ref, pkt, enclosure)
            if status is CallStatus.SUCCESS:
                ce.kernel_send_busy = True
                self.cluster.trace_msg(self.name, "packet", es.ref, pkt)
                return
            if status is CallStatus.DESTROYED:
                ce.current = None
                self.notify_destroyed(es.ref, "link destroyed at send")
                return
            raise ProtocolViolation(
                f"unexpected Send status {status} on {es.ref}"
            )

    def _on_send_done(self, es: EndState) -> Generator:
        ce = self._ce(es.ref)
        ce.kernel_send_busy = False
        tr = ce.current
        if tr is not None and tr.packets:
            pkt = tr.packets.pop(0)
            if not tr.packets and tr.needs_goahead is False:
                pass
            if tr.needs_goahead and pkt.kind is not MsgKind.ENC:
                # first packet of a multi-enclosure request: hold the
                # enc packets until the GOAHEAD arrives (fig. 2)
                tr.awaiting_goahead = True
            if not tr.packets and not tr.awaiting_goahead:
                ce.current = None
                yield from self._on_transfer_sent(es, tr)
        yield from self._pump(es)
        yield from self.rt_sync_interest(es)

    def _on_transfer_sent(self, es: EndState, tr: _OutTransfer) -> Generator:
        """All packets of a logical message completed at the kernel:
        Charlotte's best approximation of "received" (§3.2 — the root
        of the unwanted-message problem)."""
        logical = tr.logical
        kind = logical.kind
        if kind is MsgKind.REQUEST:
            self.notify_receipt(es.ref, logical.seq)
        elif kind is MsgKind.REPLY:
            if not self.reply_acks:
                self.notify_receipt(es.ref, logical.seq)
            # with reply_acks on, receipt is signalled by the ACK
        elif kind is MsgKind.EXCEPTION:
            self.notify_receipt(es.ref, logical.seq)
        # control messages need no bookkeeping
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def rt_new_link(self):
        status, ref_a, ref_b = yield self.kport.make_link()
        if status is not CallStatus.SUCCESS:  # pragma: no cover
            raise ProtocolViolation(f"MakeLink failed: {status}")
        self._ce(ref_a)
        self._ce(ref_b)
        return ref_a, ref_b

    def rt_send_request(self, es: EndState, msg: WireMessage):
        self._enqueue(es, msg)
        yield from self._pump(es)

    def rt_send_reply(self, es: EndState, msg: WireMessage):
        self._enqueue(es, msg)
        yield from self._pump(es)

    def rt_sync_interest(self, es: EndState):
        ce = self._ce(es.ref)
        if es.lifecycle is not EndLifecycle.OWNED:
            return
        want = (
            es.queue_open
            or es.reply_queue_open
            or ce.forbidden
            or bool(ce.partial_in)
            or (ce.current is not None and ce.current.awaiting_goahead)
        )
        if want and not ce.recv_posted:
            status = yield self.kport.receive(es.ref)
            if status is CallStatus.SUCCESS:
                ce.recv_posted = True
            elif status is CallStatus.BUSY:
                ce.recv_posted = True  # resync after confusion
            elif status is CallStatus.DESTROYED:
                self.notify_destroyed(es.ref, "link destroyed")
                return
        elif not want and ce.recv_posted:
            status = yield self.kport.cancel(es.ref, Direction.RECEIVE)
            if status is CallStatus.SUCCESS:
                ce.recv_posted = False
            # TOO_LATE: "If B has requested an operation in the
            # meantime, the Cancel will fail" — the message will arrive
            # and take the unwanted path (§3.2.1)
        # "sends an allow message as soon as it is either willing to
        # receive requests ... or has no Receive outstanding" (§3.2.1)
        if ce.forbid_sent and (es.queue_open or not ce.recv_posted):
            ce.forbid_sent = False
            self._enqueue(es, self._control(es, MsgKind.ALLOW, 0), control=True)
            self.metrics.count("charlotte.allow_sent")
            yield from self._pump(es)

    def rt_block_wait(self):
        # wait for a kernel completion OR an internal wakeup (a timer
        # resumed a coroutine, a hook ran).  The kernel Wait persists
        # across internal wakeups.
        from repro.sim.futures import first_of

        if self._kwait is not None and self._kwait.is_settled():
            desc, self._kwait = self._kwait.result(), None
            yield from self._handle_completion(desc)
            return
        if self._kwait is None:
            self._kwait = self.kport.wait()
        idx, value = yield first_of(
            self.engine, [self._kwait, self.wakeup_future()], "block-wait"
        )
        if idx == 0:
            self._kwait = None
            yield from self._handle_completion(value)

    def rt_request_available(self, es: EndState) -> bool:
        ce = self.cends.get(es.ref)
        return bool(ce and ce.held)

    def rt_take_request(self, es: EndState):
        ce = self._ce(es.ref)
        if not ce.held:
            return None
        return ce.held.popleft()
        yield  # pragma: no cover

    def rt_destroy(self, es: EndState, reason: str):
        yield self.kport.destroy(es.ref)
        self.cends.pop(es.ref, None)

    def rt_abort_connect(self, es: EndState, waiter):
        ce = self._ce(es.ref)
        # still queued and unsent?
        for tr in list(ce.outq):
            if tr.logical.seq == waiter.seq:
                ce.outq.remove(tr)
                ce.sent_log.pop(waiter.seq, None)
                return True
        # stashed by a forbid (bounced: provably unreceived)?
        for m in list(ce.forbid_blocked):
            if m.seq == waiter.seq:
                ce.forbid_blocked.remove(m)
                ce.sent_log.pop(waiter.seq, None)
                return True
        # currently at the kernel: Cancel races the match (§3.2.1)
        if (
            ce.current is not None
            and ce.current.logical.seq == waiter.seq
            and ce.kernel_send_busy
        ):
            status = yield self.kport.cancel(es.ref, Direction.SEND)
            if status is CallStatus.SUCCESS:
                ce.kernel_send_busy = False
                ce.current = None
                ce.sent_log.pop(waiter.seq, None)
                self.metrics.count("charlotte.aborts_cancelled")
                yield from self._pump(es)
                return True
        # too late: kernel already matched it — the §3.2.2 limbo
        self.metrics.count("charlotte.aborts_too_late")
        return False

    def rt_adopt_end(self, ref: EndRef, meta: dict):
        self._ce(ref)
        return
        yield  # pragma: no cover

    # base hook override: forget bounce state when a reply lands
    def deliver_reply(self, ref: EndRef, msg: WireMessage) -> None:
        ce = self.cends.get(ref)
        if ce is not None:
            ce.sent_log.pop(msg.reply_to, None)
        super().deliver_reply(ref, msg)

    # ------------------------------------------------------------------
    # completion handling (the Wait loop)
    # ------------------------------------------------------------------
    def _handle_completion(self, desc: Completion) -> Generator:
        if desc.kind is CompletionKind.SEND_DONE:
            es = self.ends.get(desc.ref)
            if es is not None:
                yield from self._on_send_done(es)
        elif desc.kind is CompletionKind.RECV_DONE:
            yield from self._on_recv_done(desc.ref, desc.msg)
        elif desc.kind is CompletionKind.LINK_DESTROYED:
            self._drop_char_state(desc.ref)
            self.notify_destroyed(desc.ref, desc.reason, crash="died" in desc.reason)
        elif desc.kind in (CompletionKind.SEND_FAILED, CompletionKind.RECV_FAILED):
            if desc.status is CallStatus.MOVING:
                # kernel cancelled our Receive because the end moved
                ce = self.cends.get(desc.ref)
                if ce is not None:
                    ce.recv_posted = False
            else:
                if (
                    desc.kind is CompletionKind.SEND_FAILED
                    and desc.reason.startswith("unsent")
                ):
                    # the kernel never transferred our message: its
                    # enclosures (and those of anything still queued)
                    # are provably ours again
                    ce = self.cends.get(desc.ref)
                    if ce is not None:
                        if ce.current is not None:
                            self._restore_enclosures(ce.current.logical)
                        for tr in ce.outq:
                            self._restore_enclosures(tr.logical)
                self._drop_char_state(desc.ref)
                self.notify_destroyed(
                    desc.ref, desc.reason or "activity failed",
                    crash="died" in desc.reason,
                )

    def _drop_char_state(self, ref: EndRef) -> None:
        self.cends.pop(ref, None)

    def _on_recv_done(self, ref: EndRef, msg: WireMessage) -> Generator:
        es = self.ends.get(ref)
        ce = self._ce(ref)
        ce.recv_posted = False
        if es is None or es.lifecycle is not EndLifecycle.OWNED:
            self.metrics.count("charlotte.stray_recv")
            return
        kind = msg.kind
        if kind is MsgKind.REQUEST:
            yield from self._recv_request(es, ce, msg)
        elif kind in (MsgKind.REPLY, MsgKind.EXCEPTION):
            yield from self._recv_reply(es, ce, msg)
        elif kind is MsgKind.ENC:
            yield from self._recv_enc(es, ce, msg)
        elif kind is MsgKind.GOAHEAD:
            self._recv_goahead(ce, msg)
            yield from self._pump(es)
        elif kind is MsgKind.RETRY:
            yield from self._recv_bounce(es, ce, msg, is_retry=True)
        elif kind is MsgKind.FORBID:
            yield from self._recv_bounce(es, ce, msg, is_retry=False)
        elif kind is MsgKind.ALLOW:
            yield from self._recv_allow(es, ce)
        elif kind is MsgKind.ACK:
            self._recv_ack(es, msg)
        yield from self.rt_sync_interest(es)

    # -- inbound requests ---------------------------------------------------
    def _recv_request(self, es: EndState, ce: _CharEnd, msg: WireMessage):
        if not es.queue_open:
            yield from self._bounce_unwanted(es, ce, msg)
            return
        if msg.enc_total >= 2:
            # multi-enclosure request: acknowledge with GOAHEAD, then
            # collect the enc packets (fig. 2)
            ce.partial_in[msg.seq] = _PartialIn(
                msg,
                msg.enc_total,
                list(msg.enclosures),
                list(msg.enclosure_meta),
            )
            self._enqueue(
                es,
                self._control(es, MsgKind.GOAHEAD, msg.seq, span=msg.span),
                control=True,
            )
            self.metrics.count("charlotte.goahead_sent")
            yield from self._pump(es)
            return
        ce.held.append(msg)

    def _bounce_unwanted(self, es: EndState, ce: _CharEnd, msg: WireMessage):
        """§3.2.1: return an unwanted request to its sender."""
        self.metrics.count("runtime.unwanted")
        returned = list(msg.enclosures)
        metas = list(msg.enclosure_meta)
        if es.reply_queue_open and not self.no_forbid:
            # we must keep a Receive posted for the reply we expect, so
            # a plain retry would bounce forever: forbid instead
            ce.forbid_sent = True
            ctl = self._control(
                es, MsgKind.FORBID, msg.seq, returned, metas, span=msg.span
            )
            self.metrics.count("charlotte.forbid_sent")
        else:
            ctl = self._control(es, MsgKind.RETRY, msg.seq, returned, metas,
                                span=msg.span)
            self.metrics.count("charlotte.retry_sent")
        self._enqueue(es, ctl, control=True)
        yield from self._pump(es)

    # -- inbound replies ------------------------------------------------------
    def _recv_reply(self, es: EndState, ce: _CharEnd, msg: WireMessage):
        if msg.enc_total >= 2:
            ce.partial_in[msg.seq] = _PartialIn(
                msg,
                msg.enc_total,
                list(msg.enclosures),
                list(msg.enclosure_meta),
            )
            return
        yield from self._accept_reply(es, ce, msg)

    def _accept_reply(self, es: EndState, ce: _CharEnd, msg: WireMessage):
        if self.reply_acks and msg.kind is MsgKind.REPLY:
            err = (
                None
                if self.reply_wanted(es, msg.reply_to)
                else ExceptionCode.REQUEST_ABORTED
            )
            ack = self._control(es, MsgKind.ACK, msg.seq, error=err,
                                span=msg.span)
            self._enqueue(es, ack, control=True)
            self.metrics.count("charlotte.ack_sent")
            yield from self._pump(es)
        self.deliver_reply(es.ref, msg)

    def _recv_ack(self, es: EndState, msg: WireMessage) -> None:
        if msg.error is ExceptionCode.REQUEST_ABORTED:
            self.notify_reply_aborted(es.ref, msg.reply_to)
        else:
            self.notify_receipt(es.ref, msg.reply_to)

    # -- enc assembly ---------------------------------------------------------
    def _recv_enc(self, es: EndState, ce: _CharEnd, msg: WireMessage):
        part = ce.partial_in.get(msg.seq)
        if part is None:
            # enc for a request we bounced; return its enclosure too
            self.metrics.count("charlotte.stray_enc")
            ctl = self._control(
                es,
                MsgKind.RETRY,
                msg.seq,
                list(msg.enclosures),
                list(msg.enclosure_meta),
                span=msg.span,
            )
            self._enqueue(es, ctl, control=True)
            yield from self._pump(es)
            return
        part.enclosures.extend(msg.enclosures)
        part.metas.extend(msg.enclosure_meta)
        if not part.complete:
            return
        ce.partial_in.pop(msg.seq)
        full = part.first.clone_for_resend()
        full.enclosures = part.enclosures
        full.enclosure_meta = part.metas
        if full.kind is MsgKind.REQUEST:
            ce.held.append(full)
        else:
            yield from self._accept_reply(es, ce, full)

    # -- goahead / bounce / allow ----------------------------------------------
    def _recv_goahead(self, ce: _CharEnd, msg: WireMessage) -> None:
        tr = ce.current
        if (
            tr is not None
            and tr.awaiting_goahead
            and tr.logical.seq == msg.reply_to
        ):
            tr.awaiting_goahead = False

    def _recv_bounce(
        self, es: EndState, ce: _CharEnd, msg: WireMessage, is_retry: bool
    ):
        """Our request came back: retry (resend now; the kernel delays
        it) or forbid (stash until allow)."""
        bounced_seq = msg.reply_to
        logical = ce.sent_log.get(bounced_seq)
        self.metrics.count(
            "charlotte.retry_received" if is_retry else "charlotte.forbid_received"
        )
        if logical is None:
            return  # stale (e.g. the connect was since aborted)
        # if the transfer is mid-flight (multi-enc awaiting goahead),
        # drop it; its unsent enclosures never left
        if ce.current is not None and ce.current.logical.seq == bounced_seq:
            ce.current = None
        # the receipt bookkeeping may already have run (send-complete):
        # reverse it
        if bounced_seq not in es.outgoing:
            es.outgoing[bounced_seq] = logical
            es.unreceived_sent += 1
        # re-own every enclosure of the logical message (returned ones
        # came back in the bounce; unsent ones never left)
        for ref in logical.enclosures:
            existing = self.ends.get(ref)
            if existing is None:
                self.ends[ref] = self._new_end_state(ref)
                self.cends.setdefault(ref, _CharEnd(ref))
                self.registry.record_bounced(ref, self.name)
            elif existing.lifecycle is EndLifecycle.IN_TRANSIT:
                existing.lifecycle = EndLifecycle.OWNED
                self.registry.record_bounced(ref, self.name)
        if is_retry:
            yield from self._resend(es, logical)
        else:
            ce.forbidden = True
            ce.forbid_blocked.append(logical)
        yield from self._pump(es)

    def _resend(self, es: EndState, logical: WireMessage):
        # re-stage enclosures and queue the message again; the waiter
        # (blocked coroutine) is still in place and the seq is reused,
        # so the eventual reply matches
        for ref in logical.enclosures:
            end = self.ends.get(ref)
            if end is not None and end.lifecycle is EndLifecycle.OWNED:
                end.lifecycle = EndLifecycle.IN_TRANSIT
                self.registry.record_in_transit(ref, self.name)
        self.metrics.count("charlotte.resends")
        self._enqueue(es, logical)
        yield from self._pump(es)

    def _recv_allow(self, es: EndState, ce: _CharEnd):
        self.metrics.count("charlotte.allow_received")
        ce.forbidden = False
        while ce.forbid_blocked:
            logical = ce.forbid_blocked.popleft()
            yield from self._resend(es, logical)
        # requests enqueued while we were forbidden were skipped by the
        # pump; release them too
        yield from self._pump(es)
