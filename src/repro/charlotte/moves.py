"""Charlotte's three-party link-move agreement protocol.

Paper §6, lesson one: "The Charlotte kernel admits that a link end has
been moved only when all three parties agree.  The protocol for
obtaining such agreement was a major source of problems in the kernel,
particularly in the presence of failures and simultaneously-moving
ends [3]."

The three parties for a move of end E (of link M), enclosed in a
message from process S to process R, are the kernels of S, R, and F —
the process holding M's *other* end.  The protocol here:

1. S's kernel acquires M's move lock.  A concurrent move of M's other
   end holds the same lock; the loser retries after a backoff (each
   retry costs a NACK round trip — counted under
   ``charlotte.move_retries``).
2. S's kernel sends FREEZE to F's kernel and waits for the ACK — two
   inter-kernel messages on the critical path of the carrying
   message's delivery.
3. After the carrying message is delivered, R's kernel sends COMMIT to
   F's kernel (off the critical path) and the lock is released.

This yields **3 inter-kernel messages per moved end** (plus 2 per lock
retry), versus zero extra kernel messages for SODA/Chrysalis hints —
experiment E11's comparison.

Simultaneously-moving ends (paper figure 1) are exercised by the
conformance suite: the per-link lock serialises the two moves and both
far ends remain oblivious.
"""

from __future__ import annotations

from typing import Callable, TYPE_CHECKING

from repro.core.links import EndRef

if TYPE_CHECKING:  # pragma: no cover
    from repro.charlotte.kernel import CharlotteKernel

#: backoff before retrying a contended move lock, ms
MOVE_RETRY_BACKOFF_MS = 5.0
#: bytes of an inter-kernel control frame
CONTROL_FRAME_BYTES = 32


class MoveCoordinator:
    """Runs the agreement protocol for one kernel instance."""

    def __init__(self, kernel: "CharlotteKernel") -> None:
        self.kernel = kernel

    # ------------------------------------------------------------------
    def _msg_cost(self) -> float:
        """One inter-kernel protocol message: kernel processing plus a
        control frame on the ring."""
        k = self.kernel
        k.metrics.count("charlotte.move_msgs")
        return k.costs.move_protocol_msg_ms + k.ring.transit_time(
            CONTROL_FRAME_BYTES
        )

    def move(
        self,
        enc: EndRef,
        from_proc: str,
        to_proc: str,
        base_delay: float,
        on_ready: Callable[[float], None],
    ) -> None:
        """Begin the agreement for moving ``enc`` from ``from_proc`` to
        ``to_proc``.  Calls ``on_ready(extra_ms)`` once the freeze
        handshake is done; ``extra_ms`` is protocol time added to the
        carrying message's delivery.  The caller must later invoke
        `commit` when the carrying message is delivered."""
        k = self.kernel
        klink = k.links.get(enc.link)
        if klink is None or klink.destroyed:
            on_ready(0.0)
            return
        extra_acc = 0.0

        def attempt() -> None:
            nonlocal extra_acc
            if klink.destroyed:
                on_ready(extra_acc)
                return
            if klink.move_locked:
                # lost the race with a move of the other end: NACK round
                # trip plus backoff, then try again (fig. 1 serialiser)
                k.metrics.count("charlotte.move_retries")
                extra_acc += self._msg_cost() + self._msg_cost()
                k.engine.schedule(MOVE_RETRY_BACKOFF_MS, attempt)
                return
            klink.move_locked = True
            # FREEZE to F's kernel and its ACK, on the critical path
            freeze = self._msg_cost() + self._msg_cost()
            extra_acc += freeze
            on_ready(extra_acc)

        attempt()

    def commit(self, enc: EndRef, to_proc: str) -> None:
        """All three parties agree; ownership changes and the lock
        drops.  The COMMIT message to F's kernel is off the critical
        path (charged to metrics, not to the delivery latency)."""
        k = self.kernel
        klink = k.links.get(enc.link)
        if klink is None:
            return
        kend = klink.ends[enc.side]
        kend.owner = to_proc
        kend.node = k.node_of(to_proc)
        kend.moving = False
        klink.move_locked = False
        self._msg_cost()  # COMMIT
        k.metrics.count("charlotte.moves_committed")
        if not klink.destroyed:
            # a sender parked on the far end may now be matchable again
            k._try_match(klink)
