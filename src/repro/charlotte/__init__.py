"""Charlotte: a high-level distributed kernel, and LYNX on top of it.

Charlotte (paper §3) ran on the Crystal multicomputer — 20 VAX 11/750s
on a 10 Mbit/s Proteon token ring — with the kernel replicated per
node.  It is the *high-level* kernel of the paper's comparison: links
are a kernel abstraction, the kernel matches send and receive
activities, moves link ends with a three-party agreement protocol, and
guarantees that process termination destroys the process's links.

The irony the paper documents — and this package reproduces — is that
Charlotte's link abstraction, which directly inspired LYNX links, made
the LYNX runtime *harder* to build: the runtime package here carries
the full §3.2.1 unwanted-message machinery (retry / forbid / allow) and
the §3.2.2 multi-enclosure protocol (goahead / enc), none of which the
SODA or Chrysalis runtimes need.

Failure semantics (§2.2, docs/FAULTS.md): Charlotte promises delivery
as an *absolute* — its profile declares ``recovery_placement="kernel"``,
so under an installed `FaultPlan` the simulated kernel retransmits
lost messages invisibly and forever (``faults.kernel_retransmits``).
The runtime never learns of loss, which is exactly why a connect
issued into a partition blocks until the window heals (E14).
"""

from repro.charlotte.kernel import (
    CharlotteKernel,
    KernelPort,
    CallStatus,
    Direction,
    Completion,
    CompletionKind,
)
from repro.charlotte.runtime import CharlotteRuntime
from repro.charlotte.cluster import CharlotteCluster

__all__ = [
    "CharlotteKernel",
    "KernelPort",
    "CallStatus",
    "Direction",
    "Completion",
    "CompletionKind",
    "CharlotteRuntime",
    "CharlotteCluster",
]
