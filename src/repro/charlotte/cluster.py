"""The Charlotte/Crystal cluster: kernel + token ring + LYNX runtimes."""

from __future__ import annotations

from repro.charlotte.kernel import CharlotteKernel
from repro.charlotte.runtime import CharlotteRuntime
from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.links import EndRef
from repro.sim.failure import CrashMode
from repro.sim.network import TokenRing


class CharlotteCluster(ClusterBase):
    """Crystal: 20 VAX nodes on a 10 Mbit/s token ring (§3.1).

    Extra options
    -------------
    reply_acks : bool
        Enable the hypothetical top-level reply acknowledgments the
        paper rejected for their 50 % message-traffic cost (E7).
    no_forbid : bool
        A1 ablation: disable the forbid/allow mechanism, bouncing every
        unwanted request with a bare retry — §3.2.1 explains this risks
        "an arbitrary number of retransmissions" whenever the bouncer
        must keep a Receive posted.
    """

    KIND = "charlotte"

    def __init__(self, seed=0, costmodel=None, nodes: int = 20,
                 reply_acks: bool = False, no_forbid: bool = False,
                 profile: bool = False, **engine_kw) -> None:
        self.reply_acks = reply_acks
        self.no_forbid = no_forbid
        super().__init__(seed=seed, costmodel=costmodel, nodes=nodes,
                         profile=profile, **engine_kw)

    def _setup_hardware(self) -> None:
        costs = self.costmodel.charlotte
        self.ring = TokenRing(
            self.engine,
            metrics=self.metrics,
            rng=self.rng.child("ring"),
            rate_mbit=costs.ring_rate_mbit,
            access_delay_ms=costs.ring_access_ms,
            stations=self.nodes,
        )
        self.kernel = CharlotteKernel(
            self.engine, self.metrics, costs, self.ring, self.registry,
            spans=self.spans,
        )

    def make_runtime(self, handle: ProcessHandle) -> CharlotteRuntime:
        return CharlotteRuntime(handle, self)

    def runtime_exited(self, runtime) -> None:
        self.kernel.process_died(runtime.name)

    def create_link(self, a: ProcessHandle, b: ProcessHandle) -> None:
        link = self.registry.alloc_link(a.name, b.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        from repro.charlotte.kernel import _KEnd, _KLink  # internal wiring

        self.kernel.links[link] = _KLink(
            link,
            [
                _KEnd(ref_a, a.name, a.node),
                _KEnd(ref_b, b.name, b.node),
            ],
        )
        a.runtime.preload_end(ref_a)
        a.runtime._ce(ref_a)
        b.runtime.preload_end(ref_b)
        b.runtime._ce(ref_b)

    def on_crash(self, handle: ProcessHandle, mode: CrashMode) -> None:
        # Charlotte's kernel survives its processes and detects death in
        # every mode, destroying the dead process's links (§3.1).  For
        # TERMINATE/FAULT the runtime's own clean-up may race this; both
        # paths are idempotent.
        # Ends the dead process held at kernel level but whose runtime
        # never adopted them are the §3.2.2 lost enclosures.
        rt = handle.runtime
        for klink in list(self.kernel.links.values()):
            if klink.destroyed:
                continue
            for kend in klink.ends:
                if kend.owner == handle.name and kend.ref not in rt.ends:
                    self.registry.record_lost(kend.ref)
        self.kernel.process_died(handle.name)
