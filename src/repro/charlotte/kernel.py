"""The Charlotte kernel (paper §3.1), simulated.

Kernel calls (verbatim from the paper)::

    MakeLink (var end1, end2 : link)
    Destroy  (myend : link)
    Send     (L : link; buffer; length; enclosure : link)
    Receive  (L : link; buffer; length)
    Cancel   (L : link; d : direction)
    Wait     (var e : description)

"All calls return a status code.  All but Wait are guaranteed to
complete in a bounded amount of time. ... The Charlotte kernel matches
send and receive activities.  It allows only one outstanding activity
in each direction on a given end of a link."

Simulation notes
----------------
* Each simulated process gets a `KernelPort`; every call returns a
  `Future` that resolves after the syscall CPU cost with a
  `CallStatus` (plus results).  `wait()` resolves when a completion
  descriptor is available.
* Messages between nodes ride the `TokenRing` model; the kernel adds a
  per-message fixed cost and per-byte copy cost from the cost model.
* At most **one enclosure per message** (the §3.2.2 constraint that
  forces the LYNX runtime's enc-packet protocol).
* Enclosure moves run the three-party agreement of §6 lesson 1 ("The
  Charlotte kernel admits that a link end has been moved only when all
  three parties agree"), implemented in `repro.charlotte.moves`; its
  inter-kernel messages are counted under ``charlotte.move_msgs``.
* Process death (any crash mode) is detected by the kernel, which
  destroys all the process's links and notifies the peers — Charlotte
  "even guarantees that process termination destroys all of the
  process's links" (§3.1).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.analysis.costmodel import CharlotteCosts
from repro.core.links import EndRef
from repro.core.wire import WireMessage
from repro.sim.engine import Engine
from repro.sim.futures import Future
from repro.sim.metrics import MetricSet
from repro.sim.network import TokenRing


class CallStatus(enum.Enum):
    SUCCESS = "success"
    #: the link is (already) destroyed
    DESTROYED = "destroyed"
    #: activity slot already in use in that direction
    BUSY = "busy"
    #: cancel lost the race: the activity already matched
    TOO_LATE = "too-late"
    #: no such activity to cancel
    NOT_FOUND = "not-found"
    #: the end is currently being moved
    MOVING = "moving"
    #: bad arguments (enclosing an end of the same link, etc.)
    INVALID = "invalid"


class Direction(enum.Enum):
    SEND = "send"
    RECEIVE = "receive"


class CompletionKind(enum.Enum):
    SEND_DONE = "send-done"
    RECV_DONE = "recv-done"
    SEND_FAILED = "send-failed"
    RECV_FAILED = "recv-failed"
    #: unsolicited notification that a link of yours died
    LINK_DESTROYED = "link-destroyed"


@dataclass
class Completion:
    """What Wait returns: "link end, direction, length, enclosure"."""

    kind: CompletionKind
    ref: EndRef
    msg: Optional[WireMessage] = None
    status: CallStatus = CallStatus.SUCCESS
    reason: str = ""


@dataclass
class _Activity:
    msg: Optional[WireMessage] = None  # send only
    matched: bool = False


@dataclass
class _KEnd:
    ref: EndRef
    owner: str
    node: int
    send: Optional[_Activity] = None
    recv: Optional[_Activity] = None
    #: set while this end is the enclosure of an in-flight message
    moving: bool = False


@dataclass
class _KLink:
    link: int
    ends: List[_KEnd]
    destroyed: bool = False
    #: move-protocol mutual exclusion (repro.charlotte.moves)
    move_locked: bool = False


class CharlotteKernel:
    """Global kernel state (logically replicated per node; inter-node
    interactions are charged to the ring and counted)."""

    def __init__(
        self,
        engine: Engine,
        metrics: MetricSet,
        costs: CharlotteCosts,
        ring: TokenRing,
        registry,
        spans=None,
    ) -> None:
        self.engine = engine
        self.metrics = metrics
        self.costs = costs
        self.ring = ring
        self.registry = registry
        #: causal SpanTracker of the owning cluster (None for bare
        #: kernel tests); transfers of span-carrying messages open
        #: kernel/network child spans (repro.obs.causal)
        self.spans = spans
        self.links: Dict[int, _KLink] = {}
        #: per-process completion queues and parked Wait futures
        self._completions: Dict[str, Deque[Completion]] = {}
        self._waiters: Dict[str, Future] = {}
        self._nodes: Dict[str, int] = {}
        self._dead: set = set()
        # avoid a module cycle: moves.py imports nothing from us at
        # import time; we instantiate its coordinator here
        from repro.charlotte.moves import MoveCoordinator

        self.mover = MoveCoordinator(self)

    # ------------------------------------------------------------------
    # process lifecycle
    # ------------------------------------------------------------------
    def register_process(self, name: str, node: int) -> "KernelPort":
        self._completions[name] = deque()
        self._nodes[name] = node
        return KernelPort(self, name)

    def process_died(self, name: str) -> None:
        """Kernel-detected death: destroy all the process's links
        (§3.1) and notify peers.  Ends the dead process had received at
        the kernel level but whose runtime never adopted are recorded
        as lost — the §3.2.2 deviation's oracle."""
        self._dead.add(name)
        for klink in list(self.links.values()):
            if klink.destroyed:
                continue
            for kend in klink.ends:
                if kend.owner == name:
                    self._destroy_link(
                        klink, f"process {name} died", notify=klink.ends
                    )
                    break
        # fail any parked wait
        fut = self._waiters.pop(name, None)
        if fut is not None and not fut.is_settled():
            # the process is gone; nobody consumes this — leave unsettled
            pass

    def node_of(self, name: str) -> int:
        return self._nodes.get(name, 0)

    def is_dead(self, name: str) -> bool:
        return name in self._dead

    # ------------------------------------------------------------------
    # syscall implementations (invoked by KernelPort)
    # ------------------------------------------------------------------
    def _make_link(self, caller: str) -> Tuple[CallStatus, EndRef, EndRef]:
        link = self.registry.alloc_link(caller, caller)
        node = self.node_of(caller)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        self.links[link] = _KLink(
            link,
            [_KEnd(ref_a, caller, node), _KEnd(ref_b, caller, node)],
        )
        self.metrics.count("kernel.calls.MakeLink")
        return CallStatus.SUCCESS, ref_a, ref_b

    def _destroy(self, caller: str, ref: EndRef) -> CallStatus:
        self.metrics.count("kernel.calls.Destroy")
        klink = self.links.get(ref.link)
        if klink is None or klink.destroyed:
            return CallStatus.DESTROYED
        kend = klink.ends[ref.side]
        if kend.owner != caller:
            return CallStatus.INVALID
        # notify the peer (the destroyer already knows)
        self._destroy_link(
            klink, f"destroyed by {caller}", notify=[klink.ends[1 - ref.side]]
        )
        return CallStatus.SUCCESS

    def _destroy_link(self, klink: _KLink, reason: str, notify) -> None:
        klink.destroyed = True
        self.registry.record_destroyed(klink.link, reason)
        for kend in klink.ends:
            if kend.send is not None:
                # an unmatched send never transferred: its staged
                # enclosure is released back to the sender; a matched
                # one is mid-move — the ambiguous §3.2.2 territory
                unsent = not kend.send.matched
                if unsent and kend.send.msg is not None:
                    for enc in kend.send.msg.enclosures[:1]:
                        self._unstage_enclosure(enc)
                self._complete(
                    kend.owner,
                    Completion(
                        CompletionKind.SEND_FAILED,
                        kend.ref,
                        status=CallStatus.DESTROYED,
                        reason=("unsent: " if unsent else "in-transfer: ")
                        + reason,
                    ),
                )
                kend.send = None
            if kend.recv is not None:
                self._complete(
                    kend.owner,
                    Completion(
                        CompletionKind.RECV_FAILED,
                        kend.ref,
                        status=CallStatus.DESTROYED,
                        reason=reason,
                    ),
                )
                kend.recv = None
        for kend in notify:
            if kend.owner not in self._dead:
                self._complete(
                    kend.owner,
                    Completion(
                        CompletionKind.LINK_DESTROYED, kend.ref, reason=reason
                    ),
                )

    def _send(
        self, caller: str, ref: EndRef, msg: WireMessage, enclosure: Optional[EndRef]
    ) -> CallStatus:
        self.metrics.count("kernel.calls.Send")
        klink = self.links.get(ref.link)
        if klink is None or klink.destroyed:
            return CallStatus.DESTROYED
        kend = klink.ends[ref.side]
        if kend.owner != caller:
            return CallStatus.INVALID
        if kend.moving:
            return CallStatus.MOVING
        if kend.send is not None:
            return CallStatus.BUSY
        # the kernel carries AT MOST ONE enclosure per message (§3.2.2),
        # and it must be the one named in the Send call
        if len(msg.enclosures) > 1:
            return CallStatus.INVALID
        if list(msg.enclosures[:1]) != ([enclosure] if enclosure else []):
            return CallStatus.INVALID
        if enclosure is not None:
            if enclosure.link == ref.link:
                return CallStatus.INVALID
            status = self._start_enclosure(caller, enclosure)
            if status is not CallStatus.SUCCESS:
                return status
        kend.send = _Activity(msg=msg)
        self._try_match(klink)
        return CallStatus.SUCCESS

    def _start_enclosure(self, caller: str, enc: EndRef) -> CallStatus:
        eklink = self.links.get(enc.link)
        if eklink is None or eklink.destroyed:
            return CallStatus.DESTROYED
        ekend = eklink.ends[enc.side]
        if ekend.owner != caller:
            return CallStatus.INVALID
        if ekend.moving:
            return CallStatus.MOVING
        ekend.moving = True
        # a pending (unmatched) receive on a moving end is cancelled by
        # the kernel; a matched transfer delays the move (moves.py)
        if ekend.recv is not None and not ekend.recv.matched:
            ekend.recv = None
            self._complete(
                caller,
                Completion(
                    CompletionKind.RECV_FAILED,
                    enc,
                    status=CallStatus.MOVING,
                    reason="end enclosed in a message",
                ),
            )
        return CallStatus.SUCCESS

    def _receive(self, caller: str, ref: EndRef) -> CallStatus:
        self.metrics.count("kernel.calls.Receive")
        klink = self.links.get(ref.link)
        if klink is None or klink.destroyed:
            return CallStatus.DESTROYED
        kend = klink.ends[ref.side]
        if kend.owner != caller:
            return CallStatus.INVALID
        if kend.recv is not None:
            return CallStatus.BUSY
        kend.recv = _Activity()
        self._try_match(klink)
        return CallStatus.SUCCESS

    def _cancel(self, caller: str, ref: EndRef, direction: Direction) -> CallStatus:
        self.metrics.count("kernel.calls.Cancel")
        klink = self.links.get(ref.link)
        if klink is None or klink.destroyed:
            return CallStatus.DESTROYED
        kend = klink.ends[ref.side]
        if kend.owner != caller:
            return CallStatus.INVALID
        act = kend.send if direction is Direction.SEND else kend.recv
        if act is None:
            return CallStatus.NOT_FOUND
        if act.matched:
            # "If B has requested an operation in the meantime, the
            # Cancel will fail." (§3.2.1)
            return CallStatus.TOO_LATE
        if direction is Direction.SEND:
            kend.send = None
            if act.msg is not None and act.msg.enclosures:
                # un-move the enclosure that was staged
                self._unstage_enclosure(act.msg.enclosures[0])
        else:
            kend.recv = None
        return CallStatus.SUCCESS

    def _unstage_enclosure(self, enc: EndRef) -> None:
        eklink = self.links.get(enc.link)
        if eklink is not None:
            eklink.ends[enc.side].moving = False

    # ------------------------------------------------------------------
    # matching and transfer
    # ------------------------------------------------------------------
    def _try_match(self, klink: _KLink) -> None:
        for side in (0, 1):
            sender, receiver = klink.ends[side], klink.ends[1 - side]
            if (
                sender.send is not None
                and not sender.send.matched
                and receiver.recv is not None
                and not receiver.recv.matched
            ):
                sender.send.matched = True
                receiver.recv.matched = True
                self._begin_transfer(klink, sender, receiver)

    def _begin_transfer(
        self, klink: _KLink, sender: _KEnd, receiver: _KEnd
    ) -> None:
        msg = sender.send.msg
        assert msg is not None
        nbytes = msg.wire_size
        base_delay = (
            self.costs.kernel_msg_fixed_ms
            + self.costs.kernel_per_byte_ms * nbytes
            + self.ring.transit_time(nbytes)
        )
        self.metrics.count("kernel.transfers")
        self.metrics.count("wire.bytes", nbytes)
        self.metrics.count(f"wire.messages.{msg.kind.value}")
        enclosure = msg.enclosures[0] if msg.enclosures else None
        if enclosure is not None:
            # three-party agreement before delivery (moves.py); it
            # reports the extra delay its messages took
            self.mover.move(
                enclosure,
                sender.owner,
                receiver.owner,
                base_delay,
                lambda extra: self._finish_transfer(
                    klink, sender, receiver, msg, base_delay + extra
                ),
            )
        else:
            self._finish_transfer(klink, sender, receiver, msg, base_delay)

    def _finish_transfer(
        self,
        klink: _KLink,
        sender: _KEnd,
        receiver: _KEnd,
        msg: WireMessage,
        delay: float,
    ) -> None:
        if msg.span is not None and self.spans is not None:
            # split the transfer delay into kernel CPU (fixed +
            # per-byte + any move-agreement extra) and ring transit;
            # TokenRing.transit_time is deterministic, so recomputing
            # it here perturbs nothing
            net = min(self.ring.transit_time(msg.wire_size), delay)
            now = self.engine.now
            self.spans.emit(
                msg.span, "kernel", f"transfer:{msg.kind.value}",
                sender.owner, now, now + delay - net,
            )
            self.spans.emit(
                msg.span, "network", "ring", "ring",
                now + delay - net, now + delay,
            )

        def complete() -> None:
            if klink.destroyed:
                # destruction already produced failure completions; make
                # sure a staged enclosure is not locked forever.  The
                # enclosure was mid-move when the link died: nobody can
                # say which side has it — the honest Charlotte answer
                # (§3.2.2) is that it is lost.
                for enc in msg.enclosures[:1]:
                    self._unstage_enclosure(enc)
                    eklink = self.links.get(enc.link)
                    if eklink is not None:
                        eklink.move_locked = False
                    self.registry.record_lost(enc)
                return
            sender.send = None
            receiver.recv = None
            for enc in msg.enclosures[:1]:
                # third party agreement concludes; ownership commits
                self.mover.commit(enc, receiver.owner)
            self._complete(
                sender.owner, Completion(CompletionKind.SEND_DONE, sender.ref)
            )
            if receiver.owner in self._dead:
                # receiver died mid-transfer: the message (and any
                # enclosure) is in limbo — §3.2.2's loss scenario;
                # the mover already recorded ownership at the kernel
                # level, so the link dies with the receiver.
                for enc in msg.enclosures[:1]:
                    self._on_enclosure_lost(enc)
                return
            self._complete(
                receiver.owner,
                Completion(CompletionKind.RECV_DONE, receiver.ref, msg=msg),
            )

        self.engine.schedule(delay, complete)

    def _on_enclosure_lost(self, enc: EndRef) -> None:
        klink = self.links.get(enc.link)
        if klink is None or klink.destroyed:
            return
        self.registry.record_lost(enc)
        self._destroy_link(
            klink,
            "enclosure lost with crashed receiver",
            notify=[klink.ends[enc.peer.side]],
        )

    # ------------------------------------------------------------------
    # completion delivery / Wait
    # ------------------------------------------------------------------
    def _complete(self, owner: str, completion: Completion) -> None:
        if owner in self._dead:
            return
        queue = self._completions.get(owner)
        if queue is None:
            return
        queue.append(completion)
        fut = self._waiters.pop(owner, None)
        if fut is not None and not fut.is_settled():
            # the parked Wait returns now, paying its syscall cost
            fut.resolve_later(self.costs.wait_syscall_ms, queue.popleft())

    def _wait(self, caller: str) -> Future:
        """Wait "blocks the caller until an activity completes"."""
        self.metrics.count("kernel.calls.Wait")
        queue = self._completions[caller]
        fut = Future(self.engine, f"{caller}.Wait")
        if queue:
            fut.resolve_later(self.costs.wait_syscall_ms, queue.popleft())
        else:
            self._waiters[caller] = fut
        return fut


class KernelPort:
    """A process's syscall interface: every call returns a Future that
    resolves after the syscall's CPU cost."""

    def __init__(self, kernel: CharlotteKernel, name: str) -> None:
        self.kernel = kernel
        self.name = name

    def _bounded(self, result, cost: float) -> Future:
        fut = Future(self.kernel.engine, f"{self.name}.syscall")
        fut.resolve_later(cost, result)
        return fut

    def make_link(self) -> Future:
        return self._bounded(
            self.kernel._make_link(self.name), self.kernel.costs.makelink_ms
        )

    def destroy(self, ref: EndRef) -> Future:
        return self._bounded(
            self.kernel._destroy(self.name, ref), self.kernel.costs.destroy_ms
        )

    def send(
        self, ref: EndRef, msg: WireMessage, enclosure: Optional[EndRef] = None
    ) -> Future:
        return self._bounded(
            self.kernel._send(self.name, ref, msg, enclosure),
            self.kernel.costs.syscall_ms,
        )

    def receive(self, ref: EndRef) -> Future:
        return self._bounded(
            self.kernel._receive(self.name, ref), self.kernel.costs.syscall_ms
        )

    def cancel(self, ref: EndRef, direction: Direction) -> Future:
        return self._bounded(
            self.kernel._cancel(self.name, ref, direction),
            self.kernel.costs.syscall_ms,
        )

    def wait(self) -> Future:
        return self.kernel._wait(self.name)
