"""Link ends: identities, user handles and per-end runtime state.

Terminology (paper §2):

* A **link** is a duplex virtual circuit with exactly two ends.
* Each **end** is owned by at most one process at a time; ends *move*
  between processes when enclosed in messages.
* Each end has a **request queue** (opened/closed under explicit
  process control) and a **reply queue** (open whenever a request has
  been sent and a reply is expected).

Three layers represent an end:

`EndRef`
    the global, immutable identity ``(link id, side)`` — what travels
    in messages and indexes kernels' tables;
`LinkEnd`
    the *user handle* a LYNX program holds; it is invalidated when the
    end moves away (using it then raises `LinkMoved`);
`EndState`
    the owning runtime's bookkeeping: queue state, outstanding
    connects, owed replies, stop-and-wait counters.  This is the state
    the paper says "can be implemented by lists of blocked coroutines
    in the run-time package" (§2.1).
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Optional, Set, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.threads import LynxThread
    from repro.core.wire import WireMessage
    from repro.obs.causal import SpanContext


@dataclass(frozen=True, slots=True)
class EndRef:
    """Global identity of one end of one link."""

    link: int
    side: int  # 0 or 1

    @property
    def peer(self) -> "EndRef":
        return EndRef(self.link, 1 - self.side)

    def __str__(self) -> str:
        return f"L{self.link}{'ab'[self.side]}"


class EndLifecycle(enum.Enum):
    OWNED = "owned"
    #: enclosed in an outbound message whose receipt is not yet known
    IN_TRANSIT = "in-transit"
    #: moved to another process; handle permanently invalid here
    MOVED = "moved"
    DESTROYED = "destroyed"


class LinkEnd:
    """User-visible handle to a link end.

    Programs receive these from ``ctx.new_link()``, from initial links,
    or inside unmarshalled messages; they pass them back into
    ``ctx.connect`` / ``ctx.reply`` argument tuples (moving them) and to
    queue-control operations.
    """

    __slots__ = ("end_ref", "_runtime_name")

    def __init__(self, end_ref: EndRef, runtime_name: str = "?") -> None:
        self.end_ref = end_ref
        self._runtime_name = runtime_name

    def __repr__(self) -> str:
        return f"<LinkEnd {self.end_ref} of {self._runtime_name}>"


@dataclass(slots=True)
class ConnectWaiter:
    """A coroutine blocked in ``connect``, awaiting a reply."""

    thread: "LynxThread"
    seq: int
    op: Any  # Operation
    #: set when the client aborts the thread while it waits; servers on
    #: capable kernels then feel RequestAborted on reply
    aborted: bool = False
    #: simulated time the request was sent, for RPC latency metrics
    sent_at: float = 0.0
    #: causal root context of this RPC (None when tracing is off)
    span: Optional["SpanContext"] = None
    #: simulated time the root span opened (connect entry, before
    #: marshalling — earlier than ``sent_at``)
    span_t0: float = 0.0
    #: the REQUEST this waiter sent, kept for retransmission (only
    #: populated when a `repro.core.recovery.RecoveryPolicy` is armed)
    request: Optional["WireMessage"] = None
    #: retransmissions performed so far under the recovery policy
    retries: int = 0
    #: the pending recovery timer (`repro.sim.engine.Event`), cancelled
    #: whenever the connect ends
    recovery_timer: Optional[Any] = None


#: replies kept per end for duplicate-request replay (see
#: `EndState.reply_cache`); a duplicate evicted past this bound is
#: dropped instead, and the requester's bounded retry surfaces
#: `RecoveryExhausted` — exactly-once-or-error is preserved either way
REPLY_CACHE_LIMIT = 512


@dataclass(slots=True)
class EndState:
    """Everything the owning runtime tracks for one owned end."""

    ref: EndRef
    lifecycle: EndLifecycle = EndLifecycle.OWNED
    queue_open: bool = False
    #: FIFO of coroutines awaiting replies on this end (reply queue is
    #: open iff this is non-empty)
    connect_waiters: Deque[ConnectWaiter] = field(default_factory=deque)
    #: requests delivered by the transport, not yet consumed by a thread
    incoming_requests: Deque["WireMessage"] = field(default_factory=deque)
    #: replies delivered by the transport, not yet matched
    incoming_replies: Deque["WireMessage"] = field(default_factory=deque)
    #: request seqs received and not yet replied to (blocks moving, §2.1)
    owed_replies: Set[int] = field(default_factory=set)
    #: count of our sent messages not yet known to be received
    #: (blocks moving, §2.1)
    unreceived_sent: int = 0
    #: threads blocked in stop-and-wait on their sent message (repliers)
    send_waiters: Dict[int, "LynxThread"] = field(default_factory=dict)
    #: sent messages whose receipt is not yet known, by our seq
    outgoing: Dict[int, "WireMessage"] = field(default_factory=dict)
    #: outgoing per-end message sequence counter
    next_seq: int = 1
    #: why the link died, for exception messages
    destroy_reason: str = ""
    #: causal contexts of requests we owe replies to, by request seq
    #: (lets the reply leg rejoin the request's trace)
    request_spans: Dict[int, "SpanContext"] = field(default_factory=dict)
    #: simulated time each owed request was delivered to a server
    #: thread, for the ``app`` serve span
    request_span_t0: Dict[int, float] = field(default_factory=dict)
    #: duplicate-suppression state, maintained only while the cluster
    #: has a fault plane installed (`repro.sim.faults`): request seqs
    #: already consumed on this end ...
    seen_requests: Set[int] = field(default_factory=set)
    #: ... the reply we sent for each, kept so a retransmitted request
    #: can be answered by replaying the original reply (same seq —
    #: receipt then resumes the still-blocked replier).  Bounded by
    #: `REPLY_CACHE_LIMIT`, oldest first.
    reply_cache: "OrderedDict[int, WireMessage]" = field(
        default_factory=OrderedDict
    )
    #: reply_to seqs whose reply this end already consumed (duplicate
    #: replies are dropped, counted ``recovery.duplicates_dropped``)
    delivered_replies: Set[int] = field(default_factory=set)

    def alloc_seq(self) -> int:
        s = self.next_seq
        self.next_seq += 1
        return s

    @property
    def reply_queue_open(self) -> bool:
        return len(self.connect_waiters) > 0

    @property
    def movable(self) -> bool:
        """Paper §2.1: not movable with unreceived sent messages or owed
        replies."""
        return (
            self.lifecycle is EndLifecycle.OWNED
            and self.unreceived_sent == 0
            and not self.owed_replies
        )

    def find_waiter(self, seq: int) -> Optional[ConnectWaiter]:
        for w in self.connect_waiters:
            if w.seq == seq:
                return w
        return None
