"""User program model.

A LYNX process is described by a `Proc` subclass whose ``main`` method
is a generator taking a `LynxContext` (see `repro.core.context`).  The
same `Proc` runs unmodified on all three kernels — processes "designed
in isolation, and compiled and loaded at disparate times" (§2) are
modelled by the fact that a Proc knows nothing about the cluster it is
spawned into.

`Incoming` is a received request: what `ctx.wait_request()` returns and
what `ctx.reply()` answers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

from repro.core.links import LinkEnd
from repro.core.types import Operation


class Proc:
    """Base class for LYNX process definitions.

    Subclasses implement ``main(self, ctx)`` as a generator.  Instance
    attributes set before spawning act as program arguments; attributes
    set during the run are visible to tests afterwards (a convenient
    observation channel that costs nothing in simulated time).
    """

    def main(self, ctx):  # pragma: no cover - abstract
        raise NotImplementedError
        yield  # make it a generator even if not overridden


@dataclass
class Incoming:
    """A received request, ready to be served.

    ``end`` is the server-side link end the request arrived on; ``op``
    the matched operation; ``args`` the unmarshalled arguments (link
    values already adopted as local `LinkEnd` handles); ``seq`` the
    per-link request sequence number the reply will quote.
    """

    end: LinkEnd
    op: Operation
    args: Tuple[Any, ...]
    seq: int

    def __repr__(self) -> str:
        return f"<Incoming {self.op.name}#{self.seq} on {self.end.end_ref}>"
