"""Marshalling: typed values <-> payload bytes + extracted enclosures.

The run-time packages "gather and scatter parameters" (§3.3); this
module is that gather/scatter.  Marshalling walks the value tuple
against the operation signature, producing:

* a byte string (the network is charged for its real length), and
* the ordered list of `EndRef` enclosures found at LINK positions —
  "Any message, request or reply, can contain references to an
  arbitrary number of link ends" (§2.1).

Unmarshalling reverses the walk, substituting fresh user handles (made
by a runtime-supplied factory) at LINK positions.

Encoding is deliberately simple and fixed (struct-packed, no per-value
tags): both sides already agreed on the signature via the header's
sighash, so a mismatch surfaces as `TypeClash` before decode is
attempted.

Two decode entry points exist:

* `unmarshal` — eager: walk the whole payload now, return a tuple.
* `lazy_unmarshal` — the hot-path variant (receive paths in
  `repro.core.runtime`): enclosed link ends are still adopted eagerly
  (end movement is a protocol obligation, §2.1 — it must happen at
  receipt whether or not the body is ever read), but the *body* walk is
  deferred until the first element access on the returned `LazyValues`.
  A receiver that never touches the values never pays for the decode;
  a malformed body raises `ProtocolViolation` at first access instead
  of at receive time.
"""

from __future__ import annotations

import struct
from collections.abc import Sequence
from typing import Any, Callable, List, Optional, Tuple

from repro.core.exceptions import ProtocolViolation
from repro.core.links import EndRef
from repro.core.types import (
    ArrayType,
    LynxType,
    Operation,
    RecordType,
    _BoolType,
    _BytesType,
    _IntType,
    _LinkType,
    _RealType,
    _StrType,
)

_U32 = struct.Struct(">I")
_I64 = struct.Struct(">q")
_F64 = struct.Struct(">d")


def _encode_value(t: LynxType, v: Any, out: List[bytes], encs: List[EndRef]) -> None:
    if isinstance(t, _IntType):
        out.append(_I64.pack(v))
    elif isinstance(t, _RealType):
        out.append(_F64.pack(v))
    elif isinstance(t, _BoolType):
        out.append(b"\x01" if v else b"\x00")
    elif isinstance(t, _StrType):
        b = v.encode("utf-8")
        out.append(_U32.pack(len(b)))
        out.append(b)
    elif isinstance(t, _BytesType):
        b = bytes(v)
        out.append(_U32.pack(len(b)))
        out.append(b)
    elif isinstance(t, _LinkType):
        # 4-byte placeholder index into the enclosure list
        out.append(_U32.pack(len(encs)))
        encs.append(v.end_ref)
    elif isinstance(t, ArrayType):
        out.append(_U32.pack(len(v)))
        for item in v:
            _encode_value(t.elem, item, out, encs)
    elif isinstance(t, RecordType):
        for name, ft in t.fields:
            _encode_value(ft, v[name], out, encs)
    else:  # pragma: no cover - the type system is closed
        raise ProtocolViolation(f"unknown type {t!r}")


def _decode_value(
    t: LynxType,
    buf: bytes,
    pos: int,
    encs: Sequence[Any],
) -> Tuple[Any, int]:
    if isinstance(t, _IntType):
        return _I64.unpack_from(buf, pos)[0], pos + 8
    if isinstance(t, _RealType):
        return _F64.unpack_from(buf, pos)[0], pos + 8
    if isinstance(t, _BoolType):
        return buf[pos] != 0, pos + 1
    if isinstance(t, _StrType):
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return buf[pos : pos + n].decode("utf-8"), pos + n
    if isinstance(t, _BytesType):
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        return bytes(buf[pos : pos + n]), pos + n
    if isinstance(t, _LinkType):
        (idx,) = _U32.unpack_from(buf, pos)
        pos += 4
        if idx >= len(encs):
            raise ProtocolViolation(
                f"enclosure index {idx} out of range ({len(encs)} present)"
            )
        return encs[idx], pos
    if isinstance(t, ArrayType):
        (n,) = _U32.unpack_from(buf, pos)
        pos += 4
        items = []
        for _ in range(n):
            item, pos = _decode_value(t.elem, buf, pos, encs)
            items.append(item)
        return items, pos
    if isinstance(t, RecordType):
        rec = {}
        for name, ft in t.fields:
            rec[name], pos = _decode_value(ft, buf, pos, encs)
        return rec, pos
    raise ProtocolViolation(f"unknown type {t!r}")  # pragma: no cover


def marshal(
    types: Sequence[LynxType], values: Sequence[Any]
) -> Tuple[bytes, List[EndRef]]:
    """Encode ``values`` (already type-checked) against ``types``.

    Returns (payload bytes, enclosure refs in payload order).
    """
    out: List[bytes] = []
    encs: List[EndRef] = []
    for t, v in zip(types, values):
        _encode_value(t, v, out, encs)
    return b"".join(out), encs


def _decode_all(
    types: Sequence[LynxType], payload: bytes, handles: Sequence[Any]
) -> Tuple[Any, ...]:
    values = []
    pos = 0
    for t in types:
        v, pos = _decode_value(t, payload, pos, handles)
        values.append(v)
    if pos != len(payload):
        raise ProtocolViolation(
            f"trailing garbage: decoded {pos} of {len(payload)} bytes"
        )
    return tuple(values)


def unmarshal(
    types: Sequence[LynxType],
    payload: bytes,
    enclosures: Sequence[EndRef],
    link_factory: Callable[[EndRef], Any],
) -> Tuple[Any, ...]:
    """Decode a payload.  ``link_factory`` turns each received `EndRef`
    into a user handle owned by the receiving process."""
    handles = [link_factory(ref) for ref in enclosures]
    return _decode_all(types, payload, handles)


class LazyValues(Sequence):
    """A decoded-on-first-access value tuple.

    Quacks like the tuple `unmarshal` returns — indexing, iteration,
    ``len``, unpacking and ``==`` against tuples/lists all work — but
    the payload walk runs only when an element is first needed.
    ``len`` comes from the signature, so even it does not force a
    decode.  Equality and ``repr`` of an un-forced instance stay lazy
    only where they can (``==`` must force; ``repr`` does not).

    A malformed body therefore raises `ProtocolViolation` at first
    access, in the accessing thread — not at receive time.  The sighash
    handshake (module docstring) means a mismatched body can only come
    from corruption, so receive paths no longer pay decode for traffic
    whose values the application ignores.
    """

    __slots__ = ("_types", "_payload", "_handles", "_values")

    def __init__(
        self,
        types: Sequence[LynxType],
        payload: bytes,
        handles: Sequence[Any],
    ) -> None:
        self._types = types
        self._payload = payload
        self._handles = handles
        self._values: Optional[Tuple[Any, ...]] = None

    @property
    def decoded(self) -> bool:
        """True once the body walk has run (test/observability hook)."""
        return self._values is not None

    def _force(self) -> Tuple[Any, ...]:
        values = self._values
        if values is None:
            values = _decode_all(self._types, self._payload, self._handles)
            self._values = values
        return values

    def __len__(self) -> int:
        return len(self._types)

    def __getitem__(self, index):
        return self._force()[index]

    def __iter__(self):
        return iter(self._force())

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, LazyValues):
            return self._force() == other._force()
        if isinstance(other, (tuple, list)):
            return self._force() == tuple(other)
        return NotImplemented

    __hash__ = None  # mutable cache -> unhashable, like list

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._values is None:
            return f"<LazyValues undecoded n={len(self._types)}>"
        return f"<LazyValues {self._values!r}>"


def lazy_unmarshal(
    types: Sequence[LynxType],
    payload: bytes,
    enclosures: Sequence[EndRef],
    link_factory: Callable[[EndRef], Any],
) -> LazyValues:
    """Like `unmarshal`, but defer the body walk to first access.

    Enclosure adoption is *not* deferred: moving a link end changes
    distributed ownership state and must happen at receipt (§2.1),
    whether or not the receiver ever reads the body.
    """
    handles = [link_factory(ref) for ref in enclosures]
    return LazyValues(types, payload, handles)


def request_payload(op: Operation, args: Sequence[Any]) -> Tuple[bytes, List[EndRef]]:
    """Type-check and marshal a request argument tuple."""
    op.check_request(args)
    return marshal(op.request, args)


def reply_payload(op: Operation, results: Sequence[Any]) -> Tuple[bytes, List[EndRef]]:
    """Type-check and marshal a reply result tuple."""
    op.check_reply(results)
    return marshal(op.reply, results)
