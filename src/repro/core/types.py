"""The LYNX operation type system.

LYNX is strongly typed: a remote operation has a name and typed request
and reply parameter lists, and the run-time packages "perform type
checking" on every message (§3.3).  We implement a small structural
type system sufficient for the paper's workloads:

* scalars: ``INT`` (64-bit signed), ``REAL`` (double), ``BOOL``,
  ``STR`` (utf-8), ``BYTES``;
* ``LINK`` — a link end; including one in a message *moves* it (§2.1);
* ``ArrayType(elem)`` — variable-length homogeneous sequence;
* ``RecordType(name, fields)`` — named product type.

`Operation` bundles a name with request/reply signatures and provides a
stable 64-bit signature hash; the hash travels in message headers so a
receiver can confirm "operation names and types" (§3.3) without
trusting the sender.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Sequence, Tuple

from repro.core.exceptions import TypeClash


class LynxType:
    """Base class for LYNX types.  Instances are immutable and hashable;
    equality is structural."""

    #: single-character tag used in signature strings and wire encoding
    tag: str = "?"

    def describe(self) -> str:
        """Canonical signature substring for this type."""
        return self.tag

    def check(self, value: Any, path: str = "value") -> None:
        """Raise `TypeClash` unless ``value`` inhabits this type."""
        raise NotImplementedError

    def contains_link(self) -> bool:
        """Whether values of this type can carry link ends (drives the
        enclosure scan in the codec)."""
        return False

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LynxType) and self.describe() == other.describe()

    def __hash__(self) -> int:
        return hash(self.describe())

    def __repr__(self) -> str:
        return f"<LynxType {self.describe()}>"


class _IntType(LynxType):
    tag = "i"

    def check(self, value: Any, path: str = "value") -> None:
        if isinstance(value, bool) or not isinstance(value, int):
            raise TypeClash(f"{path}: expected INT, got {type(value).__name__}")
        if not (-(2**63) <= value < 2**63):
            raise TypeClash(f"{path}: INT out of 64-bit range")


class _RealType(LynxType):
    tag = "r"

    def check(self, value: Any, path: str = "value") -> None:
        if not isinstance(value, float):
            raise TypeClash(f"{path}: expected REAL, got {type(value).__name__}")


class _BoolType(LynxType):
    tag = "b"

    def check(self, value: Any, path: str = "value") -> None:
        if not isinstance(value, bool):
            raise TypeClash(f"{path}: expected BOOL, got {type(value).__name__}")


class _StrType(LynxType):
    tag = "s"

    def check(self, value: Any, path: str = "value") -> None:
        if not isinstance(value, str):
            raise TypeClash(f"{path}: expected STR, got {type(value).__name__}")


class _BytesType(LynxType):
    tag = "y"

    def check(self, value: Any, path: str = "value") -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise TypeClash(f"{path}: expected BYTES, got {type(value).__name__}")


class _LinkType(LynxType):
    tag = "L"

    def check(self, value: Any, path: str = "value") -> None:
        # LinkEnd handles are runtime objects; avoid a circular import by
        # duck-typing on the attribute the codec uses.
        if not hasattr(value, "end_ref"):
            raise TypeClash(f"{path}: expected LINK, got {type(value).__name__}")

    def contains_link(self) -> bool:
        return True


class ArrayType(LynxType):
    """Variable-length array of a fixed element type."""

    def __init__(self, elem: LynxType) -> None:
        self.elem = elem
        self.tag = "a"

    def describe(self) -> str:
        return f"a[{self.elem.describe()}]"

    def check(self, value: Any, path: str = "value") -> None:
        if not isinstance(value, (list, tuple)):
            raise TypeClash(f"{path}: expected array, got {type(value).__name__}")
        for i, v in enumerate(value):
            self.elem.check(v, f"{path}[{i}]")

    def contains_link(self) -> bool:
        return self.elem.contains_link()


class RecordType(LynxType):
    """Named record with ordered, typed fields.  Values are dicts."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, LynxType]]) -> None:
        self.name = name
        self.fields = tuple(fields)
        self.tag = "R"

    def describe(self) -> str:
        inner = ",".join(f"{n}:{t.describe()}" for n, t in self.fields)
        return f"R{self.name}({inner})"

    def check(self, value: Any, path: str = "value") -> None:
        if not isinstance(value, dict):
            raise TypeClash(f"{path}: expected record, got {type(value).__name__}")
        expected = {n for n, _ in self.fields}
        got = set(value.keys())
        if expected != got:
            raise TypeClash(
                f"{path}: record fields {sorted(got)} != expected {sorted(expected)}"
            )
        for n, t in self.fields:
            t.check(value[n], f"{path}.{n}")

    def contains_link(self) -> bool:
        return any(t.contains_link() for _, t in self.fields)


#: singleton scalar types
INT = _IntType()
REAL = _RealType()
BOOL = _BoolType()
STR = _StrType()
BYTES = _BytesType()
LINK = _LinkType()


def check_args(
    types: Sequence[LynxType], values: Sequence[Any], what: str = "args"
) -> None:
    """Check an argument tuple against a signature."""
    if len(types) != len(values):
        raise TypeClash(
            f"{what}: arity mismatch, expected {len(types)} got {len(values)}"
        )
    for i, (t, v) in enumerate(zip(types, values)):
        t.check(v, f"{what}[{i}]")


class Operation:
    """A typed remote operation: name + request/reply signatures.

    The same `Operation` object (or a structurally identical one) must
    be used by requester and server; the 64-bit `sighash` travels in
    every request and reply header so mismatches surface as `TypeClash`
    rather than garbage decode.
    """

    def __init__(
        self,
        name: str,
        request: Sequence[LynxType] = (),
        reply: Sequence[LynxType] = (),
    ) -> None:
        self.name = name
        self.request = tuple(request)
        self.reply = tuple(reply)

    @property
    def signature(self) -> str:
        req = ",".join(t.describe() for t in self.request)
        rep = ",".join(t.describe() for t in self.reply)
        return f"{self.name}({req})->({rep})"

    @property
    def sighash(self) -> int:
        """Stable 64-bit hash of the canonical signature."""
        data = self.signature.encode()
        return (zlib.crc32(data) << 32) | zlib.crc32(data[::-1])

    def check_request(self, args: Sequence[Any]) -> None:
        check_args(self.request, args, f"{self.name}.request")

    def check_reply(self, results: Sequence[Any]) -> None:
        check_args(self.reply, results, f"{self.name}.reply")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Operation) and self.signature == other.signature

    def __hash__(self) -> int:
        return hash(self.signature)

    def __repr__(self) -> str:
        return f"<Operation {self.signature}>"
