"""The user-facing API facade.

A `LynxContext` is handed to every `Proc.main`; its methods are
generator helpers used with ``yield from``::

    class Client(Proc):
        def main(self, ctx):
            (reply,) = yield from ctx.connect(self.server_end, GET, ("key",))
            ...

Each helper yields exactly one `repro.core.ops` dataclass; programs may
also yield the op objects directly — the helpers exist for readability
and docstrings.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core import ops as _ops
from repro.core.links import LinkEnd
from repro.core.program import Incoming
from repro.core.threads import LynxThread
from repro.core.types import Operation

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import LynxRuntimeBase


class LynxContext:
    """Bound to one process's runtime; produced by the cluster at spawn."""

    def __init__(self, runtime: "LynxRuntimeBase") -> None:
        self._runtime = runtime

    # ------------------------------------------------------------------
    # introspection that costs nothing
    # ------------------------------------------------------------------
    @property
    def initial_links(self) -> Tuple[LinkEnd, ...]:
        """Link ends this process was given at spawn time (the paper's
        processes obtain initial links from their creator or from
        long-lived servers; the cluster plays that role here)."""
        return tuple(self._runtime.initial_links)

    @property
    def name(self) -> str:
        return self._runtime.name

    @property
    def metrics(self):
        """The cluster-wide `MetricSet`: programs may count their own
        observability events (free — no simulated time is charged).
        Workloads use it to keep application-level recovery decisions
        (failovers, give-ups) visible in the ``recovery.*`` namespace
        next to the runtime's counters (docs/FAULTS.md)."""
        return self._runtime.metrics

    # ------------------------------------------------------------------
    # generator helpers (use with ``yield from``)
    # ------------------------------------------------------------------
    def new_link(self) -> Generator:
        """Create a link; returns (end_a, end_b), both owned here."""
        result = yield _ops.NewLinkOp()
        return result

    def connect(
        self, end: LinkEnd, op: Operation, args: Sequence[Any] = ()
    ) -> Generator:
        """Remote operation: sends a request on ``end``, blocks this
        coroutine, returns the reply result tuple."""
        result = yield _ops.ConnectOp(end, op, tuple(args))
        return result

    def register(self, *operations: Operation) -> Generator:
        """Declare operations this process serves (needed before
        requests for them can be matched and unmarshalled)."""
        for op in operations:
            yield _ops.RegisterOp(op)

    def open(self, end: LinkEnd) -> Generator:
        """Open the request queue on ``end``."""
        yield _ops.OpenOp(end)

    def close(self, end: LinkEnd) -> Generator:
        """Close the request queue on ``end``."""
        yield _ops.CloseOp(end)

    def wait_request(
        self, ends: Optional[Sequence[LinkEnd]] = None
    ) -> Generator:
        """Block until a request arrives on an open queue; returns an
        `Incoming`.  Fair among non-empty open queues (§2.1)."""
        result = yield _ops.WaitRequestOp(tuple(ends) if ends else None)
        return result

    def reply(self, incoming: Incoming, results: Sequence[Any] = ()) -> Generator:
        """Answer ``incoming``; blocks until the reply is received."""
        yield _ops.ReplyOp(incoming, tuple(results))

    def destroy(self, end: LinkEnd) -> Generator:
        """Destroy the link of which ``end`` is one end."""
        yield _ops.DestroyOp(end)

    def fork(self, gen: Generator, name: str = "") -> Generator:
        """Start a new coroutine; returns its `LynxThread` handle."""
        result = yield _ops.ForkOp(gen, name)
        return result

    def abort(self, thread: LynxThread) -> Generator:
        """Abort a blocked coroutine (it feels `ThreadAborted`)."""
        yield _ops.AbortThreadOp(thread)

    def delay(self, ms: float) -> Generator:
        """Block this coroutine for ``ms`` (a timed block point; other
        coroutines of the process may run meanwhile)."""
        yield _ops.DelayOp(ms)

    def compute(self, ms: float) -> Generator:
        """Busy CPU for ``ms`` — holds the mutual exclusion; no sibling
        coroutine runs (paper §2)."""
        yield _ops.ComputeOp(ms)

    def now(self) -> Generator:
        """Current simulated time (ms)."""
        result = yield _ops.NowOp()
        return result

    def whoami(self) -> Generator:
        result = yield _ops.SelfOp()
        return result
