"""LYNX threads (the paper's coroutines).

Paper §2: "Each process may be divided into an arbitrary number of
threads of control, but the threads execute in mutual exclusion and may
be managed by the language run-time package, much like the coroutines
of Modula-2."

A `LynxThread` wraps a user generator.  Threads are **not** simulation
tasks: the runtime's dispatcher steps them one at a time (mutual
exclusion holds by construction) and switches only when a thread blocks
on a communication operation — a *block point* in the paper's sense.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional


class ThreadState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


class LynxThread:
    """One coroutine of a LYNX process."""

    _counter = 0

    def __init__(self, gen: Generator, name: str = "") -> None:
        LynxThread._counter += 1
        self.tid = LynxThread._counter
        self.gen = gen
        self.name = name or f"thread-{self.tid}"
        self.state = ThreadState.READY
        #: value to send into the generator at next step
        self.pending_value: Any = None
        #: exception to throw into the generator at next step
        self.pending_error: Optional[BaseException] = None
        #: why the thread is blocked (diagnostics / tests)
        self.block_reason: str = ""
        #: result of the generator, once DONE
        self.result: Any = None
        #: terminal error, once FAILED
        self.error: Optional[BaseException] = None
        #: set when another thread asked to abort this one
        self.abort_requested: bool = False

    # ------------------------------------------------------------------
    @property
    def live(self) -> bool:
        return self.state in (ThreadState.READY, ThreadState.BLOCKED)

    def block(self, reason: str) -> None:
        assert self.state is ThreadState.READY, self.state
        self.state = ThreadState.BLOCKED
        self.block_reason = reason

    def resume(self, value: Any = None) -> None:
        """Mark the thread runnable with ``value`` as the result of the
        operation it blocked on.  The caller (runtime) must queue it."""
        assert self.state is ThreadState.BLOCKED, self.state
        self.state = ThreadState.READY
        self.block_reason = ""
        self.pending_value = value
        self.pending_error = None

    def resume_error(self, error: BaseException) -> None:
        """Mark the thread runnable; ``error`` will be raised inside it
        at the operation it blocked on — this is how LYNX run-time
        exceptions reach user code."""
        assert self.state is ThreadState.BLOCKED, self.state
        self.state = ThreadState.READY
        self.block_reason = ""
        self.pending_value = None
        self.pending_error = error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f" ({self.block_reason})" if self.block_reason else ""
        return f"<LynxThread {self.name} {self.state.value}{extra}>"
