"""Entries: LYNX's server-side binding of operations to coroutines.

In real LYNX a process declares *entry* procedures; when a request for
a bound operation arrives on an open link, the run-time package creates
(or resumes) a coroutine to serve it.  The low-level API of
`repro.core.context` exposes the raw mechanism (``wait_request`` /
``reply``); this module provides the language-flavoured layer on top:

    from repro.core.entries import serve

    class Server(Proc):
        def main(self, ctx):
            yield from serve(ctx, ctx.initial_links, {
                GET: lambda key: (self.table[key],),      # auto-reply
                PUT: self.put_entry,                      # coroutine
            }, count=10)

        def put_entry(self, ctx, inc):                    # full control
            key, value = inc.args
            self.table[key] = value
            yield from ctx.reply(inc, ())

Two handler styles:

* a **plain callable** taking the request arguments and returning the
  reply tuple — `serve` replies on the handler's behalf (the common
  case for small entries);
* a **generator function** taking ``(ctx, inc)`` — it runs as its own
  coroutine (forked, so long entries overlap, preserving §2's
  coroutine structure) and must call ``ctx.reply`` itself.
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable, Optional, Sequence

from repro.core.context import LynxContext
from repro.core.exceptions import LinkDestroyed, RequestAborted
from repro.core.links import LinkEnd
from repro.core.program import Incoming
from repro.core.types import Operation

Handler = Callable


def _is_coroutine_entry(handler: Handler) -> bool:
    return inspect.isgeneratorfunction(handler)


def serve(
    ctx: LynxContext,
    ends: Sequence[LinkEnd],
    handlers: Dict[Operation, Handler],
    count: Optional[int] = None,
    fork_entries: bool = True,
):
    """Serve requests on ``ends`` until ``count`` have been handled (or
    every end dies, when ``count`` is None).  Returns the number
    served.

    Registration and queue opening are performed here; the caller's
    coroutine becomes the dispatch loop — the closest Python analog of
    LYNX's implicit entry dispatch.
    """
    by_name = {}
    for op, handler in handlers.items():
        yield from ctx.register(op)
        by_name[op.name] = (op, handler)
    ends = list(ends)
    for end in ends:
        yield from ctx.open(end)
    served = 0
    while count is None or served < count:
        try:
            inc: Incoming = yield from ctx.wait_request(ends)
        except LinkDestroyed:
            break
        op, handler = by_name[inc.op.name]
        try:
            if _is_coroutine_entry(handler):
                if fork_entries:
                    yield from ctx.fork(handler(ctx, inc), f"entry:{op.name}")
                else:
                    yield from handler(ctx, inc)
            else:
                results = handler(*inc.args)
                if results is None:
                    results = ()
                yield from ctx.reply(inc, tuple(results))
        except (LinkDestroyed, RequestAborted):
            # the requester vanished (or gave up) mid-serve: that kills
            # this request, not the dispatch loop — other links are
            # still alive and owed service
            continue
        served += 1
    for end in ends:
        try:
            yield from ctx.close(end)
        except LinkDestroyed:
            pass
    return served


def call(ctx: LynxContext, end: LinkEnd, op: Operation, *args):
    """Client-side sugar: ``yield from call(ctx, end, OP, a, b)`` —
    exactly ``ctx.connect`` with unpacked arguments, returning a bare
    value when the reply signature has exactly one result."""
    results = yield from ctx.connect(end, op, args)
    if len(op.reply) == 1:
        return results[0]
    return results
