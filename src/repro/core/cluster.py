"""Clusters: a kernel, its hardware, and the processes running on it.

A `ClusterBase` subclass exists per kernel family
(`repro.charlotte.cluster.CharlotteCluster`, etc.).  It owns the
simulation engine, the interconnect model, the metrics, the logical
link registry, and the process table, and it provides the experiment
surface the tests and benches drive:

* ``spawn(program)`` — create a process running a `Proc`;
* ``create_link(p, q)`` — hand two processes the ends of a fresh link
  (the role the paper's "long-lived system servers" play for
  processes "designed in isolation");
* ``run`` / ``run_until_quiet`` — advance simulated time;
* ``crash_process`` — failure injection (see `repro.sim.failure`).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.analysis.costmodel import CostModel
from repro.core.program import Proc
from repro.core.recovery import RecoveryPolicy
from repro.core.registry import LinkRegistry
from repro.obs.causal import SpanTracker
from repro.obs.flight import FlightRecorder
from repro.obs.sampling import TraceSampler
from repro.obs.timeseries import TimeSeries
from repro.sim.backends import make_engine
from repro.sim.failure import CrashMode
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.futures import FutureState
from repro.sim.metrics import MetricSet
from repro.sim.rng import SimRandom
from repro.sim.tasks import Task, TaskKilled
from repro.sim.trace import TraceLog


class ProcessHandle:
    """A spawned process: program + runtime + driving task."""

    def __init__(self, name: str, program: Proc, node: int) -> None:
        self.name = name
        self.program = program
        self.node = node
        self.runtime = None  # set by the cluster
        self.task: Optional[Task] = None

    @property
    def finished(self) -> bool:
        return self.task is not None and self.task.finished

    @property
    def crashed(self) -> bool:
        return (
            self.finished
            and self.task.done.state is FutureState.FAILED
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finished" if self.finished else "running"
        return f"<Process {self.name} node={self.node} {state}>"


class ClusterBase:
    """Common machinery for the three kernel clusters."""

    KIND = "abstract"

    def __init__(
        self,
        seed: int = 0,
        costmodel: Optional[CostModel] = None,
        nodes: int = 16,
        profile: bool = False,
        sim_backend: str = "global",
        shards: int = 1,
        lookahead_ms: Optional[float] = None,
    ) -> None:
        self.seed = seed
        #: which `repro.sim.backends` engine executes this cluster.
        #: Cluster workloads never tag shards, so on the sharded
        #: backends they run in exact global order (the oracle path)
        #: and stay bit-identical to the global engine.
        self.sim_backend = sim_backend
        self.engine = make_engine(
            sim_backend, shards=shards, lookahead_ms=lookahead_ms,
            profile=profile,
        )
        self.metrics = MetricSet()
        self.registry = LinkRegistry()
        self.trace = TraceLog(self.engine)
        #: causal-span minting authority, shared by runtimes and kernels
        #: (created before `_setup_hardware` so kernels can take it)
        self.spans = SpanTracker(self.trace, metrics=self.metrics)
        self.rng = SimRandom(seed, f"cluster/{self.KIND}")
        self.costmodel = costmodel if costmodel is not None else CostModel.default()
        self.nodes = nodes
        self.processes: Dict[str, ProcessHandle] = {}
        #: network-fault plane (`repro.sim.faults`); None = the network
        #: is perfectly reliable, and every pre-existing code path is
        #: bit-identical to a cluster without this attribute
        self.faults: Optional[FaultInjector] = None
        #: runtime-side recovery policy (`repro.core.recovery`); None =
        #: connects wait forever, as the paper's runtimes did
        self.recovery: Optional[RecoveryPolicy] = None
        #: black-box dump plane (`repro.obs.flight`); None until
        #: `install_flight_recorder`
        self.flight: Optional[FlightRecorder] = None
        #: windowed metric series (`repro.obs.timeseries`); None until
        #: `install_timeseries`
        self.timeseries: Optional[TimeSeries] = None
        self._auto_name = 0
        self._next_node = 0
        self._setup_hardware()

    # ------------------------------------------------------------------
    # kernel-specific hooks
    # ------------------------------------------------------------------
    def _setup_hardware(self) -> None:
        """Instantiate the interconnect and kernel objects."""
        raise NotImplementedError

    def make_runtime(self, handle: ProcessHandle):
        """Instantiate this kernel family's LYNX runtime for a process."""
        raise NotImplementedError

    def _install_process(self, handle: ProcessHandle) -> None:
        """Register the new process with the kernel(s)."""

    def create_link(self, a: ProcessHandle, b: ProcessHandle) -> None:
        """Give ``a`` and ``b`` each one end of a fresh link, visible to
        their programs as ``ctx.initial_links``.  Must be called before
        ``run`` starts the processes."""
        raise NotImplementedError

    def on_crash(self, handle: ProcessHandle, mode: CrashMode) -> None:
        """Kernel-side consequences of a process/node death."""

    def runtime_exited(self, runtime) -> None:
        """A runtime finished its orderly shutdown (the base
        ``rt_shutdown`` calls this).  Clusters whose kernels track
        per-process liveness deregister the process here."""

    def close(self) -> None:
        """Release any OS resources the backend holds.  Simulated
        backends hold none, so this is a no-op; the real-transport
        backend closes its switch connection here.  Safe to call more
        than once."""

    # ------------------------------------------------------------------
    # process management
    # ------------------------------------------------------------------
    def spawn(
        self,
        program: Proc,
        name: Optional[str] = None,
        node: Optional[int] = None,
    ) -> ProcessHandle:
        if name is None:
            self._auto_name += 1
            name = f"p{self._auto_name}"
        if name in self.processes:
            raise ValueError(f"duplicate process name {name!r}")
        if node is None:
            node = self._next_node % self.nodes
            self._next_node += 1
        handle = ProcessHandle(name, program, node)
        handle.runtime = self.make_runtime(handle)
        self._install_process(handle)
        handle.task = Task(
            self.engine, handle.runtime.main_generator(), f"proc:{name}"
        )
        self.processes[name] = handle
        return handle

    def trace_msg(self, actor: str, event: str, ref, msg=None, **extra) -> None:
        """Record a message event for sequence charts.  The peer lookup
        goes through the registry — observability only; no protocol
        decision ever depends on it."""
        if msg is not None:
            span = msg.span
            if span is not None and not span.sampled:
                return  # head-based sampling: the whole trace is dropped
        detail = dict(link=ref.link, **extra)
        peer = self.registry.owner_of(ref.peer)
        if peer is not None:
            detail["peer"] = peer
        if msg is not None:
            detail.setdefault("kind", msg.kind.value)
            detail["seq"] = msg.seq
            detail["bytes"] = msg.wire_size
        self.trace.emit(actor, event, **detail)

    def install_faults(self, plan: FaultPlan) -> FaultInjector:
        """Bind a network-fault schedule to this cluster (see
        `repro.sim.faults`).  Verdicts draw from the cluster rng's
        ``faults`` child stream, so the schedule replays exactly from
        the cluster seed and does not perturb other consumers."""
        self.faults = FaultInjector(
            self.engine, plan, self.rng.child("faults"), self.metrics,
            trace=self.trace,
        )
        return self.faults

    def install_recovery(self, policy: RecoveryPolicy) -> RecoveryPolicy:
        """Install the runtime-side timeout/retry policy (see
        `repro.core.recovery`).  Applies to backends whose
        capabilities place recovery in the runtime; kernel-placement
        backends (Charlotte) ignore it by design."""
        self.recovery = policy
        return policy

    def install_trace_sampling(self, rate: float) -> TraceSampler:
        """Head-based deterministic trace sampling (`repro.obs.sampling`):
        keep roughly ``rate`` of traces, decided per trace id from the
        cluster seed, inherited by every child span.  1.0 restores the
        trace-everything default; 0.0 drops every span (the obs-off mode
        of the E15 overhead bench)."""
        sampler = TraceSampler(rate, seed=self.seed)
        self.spans.sampler = sampler
        return sampler

    def install_flight_recorder(
        self,
        out_dir,
        capacity: int = 256,
        max_dumps: int = 4,
        **kw,
    ) -> FlightRecorder:
        """Attach a `repro.obs.flight.FlightRecorder` black box to this
        cluster's trace log: it keeps the last ``capacity`` events and
        dumps bounded JSONL on recovery exhaustion, partition entry or
        a crash (at most ``max_dumps`` files under ``out_dir``)."""
        self.flight = FlightRecorder(
            self.trace, out_dir, metrics=self.metrics, engine=self.engine,
            capacity=capacity, max_dumps=max_dumps, kind=self.KIND,
            seed=self.seed, **kw,
        )
        return self.flight

    def install_timeseries(self, window_ms: float = 100.0,
                           retain: int = 512) -> TimeSeries:
        """Bucket every counter increment and latency sample into
        ``window_ms`` windows of simulated time (`repro.obs.timeseries`)
        — the data behind ``python -m repro top``."""
        self.timeseries = TimeSeries(self.engine, window_ms, retain=retain)
        self.metrics.bind_timeseries(self.timeseries)
        return self.timeseries

    def peer_name_of(self, ref) -> Optional[str]:
        """The process currently owning the far end of ``ref`` — the
        registry's view, used by the fault plane to apply partition
        windows (observability-grade: no protocol decision depends on
        it)."""
        return self.registry.owner_of(ref.peer)

    def crash_process(
        self, name: str, mode: CrashMode = CrashMode.TERMINATE
    ) -> None:
        """Kill a process.  TERMINATE/FAULT let the runtime clean up;
        PROCESSOR is a hard node failure (see `repro.sim.failure`)."""
        handle = self.processes[name]
        if handle.finished:
            return
        handle.runtime._crash_mode = mode
        self.on_crash(handle, mode)
        handle.task.kill(f"{mode.value} crash of {name}")
        self.metrics.count(f"cluster.crashes.{mode.value}")
        # black-box trigger (repro.obs.flight): record the death itself
        self.trace.emit(name, "crash", mode=mode.value, node=handle.node)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        return self.engine.run(until=until, max_events=max_events)

    def run_until_quiet(self, max_ms: float = 1e7, max_events: int = 5_000_000):
        """Run until the event heap empties (global quiescence) or a
        budget is exhausted.  Returns the simulated end time."""
        self.engine.run(until=max_ms, max_events=max_events)
        return self.engine.now

    @property
    def all_finished(self) -> bool:
        return all(p.finished for p in self.processes.values())

    def unfinished(self):
        return [p.name for p in self.processes.values() if not p.finished]

    def result_of(self, name: str) -> Any:
        """The return value of a process's main generator (raises the
        process's failure if it crashed)."""
        return self.processes[name].task.done.result()

    def check(self) -> None:
        """Raise if any process died of a *programming* error (not a
        simulated crash) or registry invariants broke.  Tests call this
        at the end of every scenario."""
        for p in self.processes.values():
            if p.finished and p.task.done.state is FutureState.FAILED:
                err = p.task.done.error
                if not isinstance(err, TaskKilled):
                    raise AssertionError(
                        f"process {p.name} failed unexpectedly: {err!r}"
                    ) from err
        problems = self.registry.check_invariants()
        if problems:
            raise AssertionError(f"registry invariants violated: {problems}")
