"""Kernel-independent LYNX semantics.

This package is the part of the reproduction that corresponds to the
LYNX *language definition* (paper §2): typed remote operations on
movable duplex links, coroutine threads executing in mutual exclusion
inside each process, per-link request/reply queues drained at block
points, and the exception model.

It contains no kernel-specific code; the three run-time packages
(`repro.charlotte.runtime`, `repro.soda.runtime`,
`repro.chrysalis.runtime`) subclass `repro.core.runtime.LynxRuntimeBase`
and implement its transport hooks against their kernels.  User programs
written against `repro.core.api` run unmodified on all three — that is
the paper's central experimental setup.
"""

from repro.core.exceptions import (
    LynxError,
    LinkDestroyed,
    RemoteCrash,
    TypeClash,
    RequestAborted,
    MoveRestricted,
    LinkMoved,
    ThreadAborted,
    ProtocolViolation,
)
from repro.core.types import (
    LynxType,
    INT,
    REAL,
    BOOL,
    STR,
    BYTES,
    LINK,
    ArrayType,
    RecordType,
    Operation,
)
from repro.core.program import Proc, Incoming
from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.registry import LinkRegistry

__all__ = [
    "LynxError",
    "LinkDestroyed",
    "RemoteCrash",
    "TypeClash",
    "RequestAborted",
    "MoveRestricted",
    "LinkMoved",
    "ThreadAborted",
    "ProtocolViolation",
    "LynxType",
    "INT",
    "REAL",
    "BOOL",
    "STR",
    "BYTES",
    "LINK",
    "ArrayType",
    "RecordType",
    "Operation",
    "Proc",
    "Incoming",
    "ClusterBase",
    "ProcessHandle",
    "LinkRegistry",
]
