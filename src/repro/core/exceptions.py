"""The LYNX exception model.

Paper §2.2: "Any attempt to send or receive a message on a link that
has been destroyed must fail in a way that can be reflected back into
the user program as a run-time exception."  These classes are those
run-time exceptions; they are raised *inside simulated LYNX threads*
(i.e. thrown into user generators at their yield points) and may be
caught by simulated code.

The conformance suite distinguishes which implementations can raise
which exceptions: e.g. `RequestAborted` on the server side cannot be
provided by the Charlotte implementation without a 50 %-traffic reply
acknowledgment (paper §3.2 end / E7), so the Charlotte runtime's
inability to raise it in that scenario is itself asserted.
"""

from __future__ import annotations


class LynxError(Exception):
    """Base class for all LYNX-visible runtime exceptions."""


class LinkDestroyed(LynxError):
    """The link was destroyed (explicitly, or because the process at the
    far end terminated) while this process tried to use it."""


class RemoteCrash(LinkDestroyed):
    """Specialisation of `LinkDestroyed`: the far-end process crashed.

    Subclasses `LinkDestroyed` because the language treats both the
    same way — termination of a process destroys all its links (§2.2) —
    but tests sometimes want to know which occurred.
    """


class TypeClash(LynxError):
    """Operation name/type-signature mismatch between requester and
    server — the run-time package's type confirmation (§3.3) failed."""


class RequestAborted(LynxError):
    """Felt by a *server* when it attempts to reply to a request whose
    client coroutine has since been aborted (§3.2: "the server should
    feel an exception when it attempts to send a no-longer-wanted
    reply")."""


class MoveRestricted(LynxError):
    """Attempt to enclose a link end that may not move: the process has
    sent unreceived messages on it, or owes a reply on it (§2.1), or it
    is an end of the very link the message is being sent on."""


class LinkMoved(LynxError):
    """Attempt to use a link end this process no longer owns (it was
    enclosed in a message and moved away)."""


class ThreadAborted(LynxError):
    """Raised inside a LYNX thread that another thread aborted; used to
    build the §3.2.1 scenario where an exception aborts an outstanding
    request."""


class RecoveryExhausted(LynxError):
    """A connect's recovery budget ran out: the runtime-side
    `repro.core.recovery.RecoveryPolicy` timed out, retransmitted up to
    its bounded retry limit, and never saw receipt or reply.  Only
    backends whose `KernelCapabilities.recovery_placement` is
    ``"runtime"`` (hints — SODA, Chrysalis, ideal) can raise it; a
    kernel-placement backend (Charlotte's absolutes) hides loss by
    retransmitting forever instead (§2.2, §4.1)."""


class ProtocolViolation(LynxError):
    """Internal consistency failure of a runtime package — never
    expected in a correct run; exists so tests can assert it never
    fires."""


class DeadlockDetected(LynxError):
    """Raised by cluster watchdogs when no process can make progress —
    used by E10 (SODA outstanding-request limit)."""
