"""The public API of the reproduction.

Most users need exactly this module::

    from repro.core.api import (
        Proc, Operation, INT, STR, BYTES, LINK, make_cluster,
    )

    PING = Operation("ping", request=(BYTES,), reply=(BYTES,))

    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(PING)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            (echo,) = yield from ctx.connect(end, PING, (b"hi",))

    cluster = make_cluster("chrysalis")
    s = cluster.spawn(Server())
    c = cluster.spawn(Client())
    cluster.create_link(s, c)
    cluster.run_until_quiet()

The ``kind`` argument of `make_cluster` selects the kernel substrate:
``"charlotte"``, ``"soda"`` or ``"chrysalis"`` — the same program runs
on any of them, which is the paper's experimental setup.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.costmodel import CostModel
from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.context import LynxContext
from repro.core.exceptions import (
    LinkDestroyed,
    LinkMoved,
    LynxError,
    MoveRestricted,
    RemoteCrash,
    RequestAborted,
    ThreadAborted,
    TypeClash,
)
from repro.core.links import LinkEnd
from repro.core.program import Incoming, Proc
from repro.core.types import (
    BOOL,
    BYTES,
    INT,
    LINK,
    REAL,
    STR,
    ArrayType,
    Operation,
    RecordType,
)
from repro.sim.failure import CrashMode

#: kernel substrates accepted by `make_cluster`
KERNEL_KINDS = ("charlotte", "soda", "chrysalis")


def make_cluster(
    kind: str,
    seed: int = 0,
    costmodel: Optional[CostModel] = None,
    **kwargs,
) -> ClusterBase:
    """Build a cluster of the requested kernel family.

    Extra keyword arguments are forwarded to the cluster constructor
    (e.g. ``broadcast_loss=`` for SODA, ``tuned=True`` for Chrysalis,
    ``reply_acks=True`` for Charlotte's E7 ablation).
    """
    if kind == "charlotte":
        from repro.charlotte.cluster import CharlotteCluster

        return CharlotteCluster(seed=seed, costmodel=costmodel, **kwargs)
    if kind == "soda":
        from repro.soda.cluster import SodaCluster

        return SodaCluster(seed=seed, costmodel=costmodel, **kwargs)
    if kind == "chrysalis":
        from repro.chrysalis.cluster import ChrysalisCluster

        return ChrysalisCluster(seed=seed, costmodel=costmodel, **kwargs)
    raise ValueError(f"unknown kernel kind {kind!r}; expected one of {KERNEL_KINDS}")


__all__ = [
    "make_cluster",
    "KERNEL_KINDS",
    "CostModel",
    "ClusterBase",
    "ProcessHandle",
    "LynxContext",
    "Proc",
    "Incoming",
    "LinkEnd",
    "Operation",
    "INT",
    "REAL",
    "BOOL",
    "STR",
    "BYTES",
    "LINK",
    "ArrayType",
    "RecordType",
    "CrashMode",
    "LynxError",
    "LinkDestroyed",
    "RemoteCrash",
    "TypeClash",
    "RequestAborted",
    "MoveRestricted",
    "LinkMoved",
    "ThreadAborted",
]
