"""The public API of the reproduction.

Most users need exactly this module::

    from repro.core.api import (
        Proc, Operation, INT, STR, BYTES, LINK, make_cluster,
    )

    PING = Operation("ping", request=(BYTES,), reply=(BYTES,))

    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(PING)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            (echo,) = yield from ctx.connect(end, PING, (b"hi",))

    cluster = make_cluster("chrysalis")
    s = cluster.spawn(Server())
    c = cluster.spawn(Client())
    cluster.create_link(s, c)
    cluster.run_until_quiet()

The ``kind`` argument of `make_cluster` selects the kernel substrate
from the registry in `repro.core.ports` — the paper's three kernels
(``"charlotte"``, ``"soda"``, ``"chrysalis"``) plus the ``"ideal"``
reference backend.  The same program runs on any of them, which is the
paper's experimental setup.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.costmodel import CostModel
from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.context import LynxContext
from repro.core.exceptions import (
    LinkDestroyed,
    LinkMoved,
    LynxError,
    MoveRestricted,
    RecoveryExhausted,
    RemoteCrash,
    RequestAborted,
    ThreadAborted,
    TypeClash,
)
from repro.core.links import LinkEnd
from repro.core.ports import (
    KernelCapabilities,
    KernelProfile,
    KernelRuntimePort,
    kernel_profile,
    kernel_profiles,
    paper_kernels,
    register_kernel,
    registered_kernels,
)
from repro.core.program import Incoming, Proc
from repro.core.recovery import RecoveryPolicy
from repro.core.types import (
    BOOL,
    BYTES,
    INT,
    LINK,
    REAL,
    STR,
    ArrayType,
    Operation,
    RecordType,
)
from repro.sim.backends import (
    SimBackendProfile,
    make_engine,
    registered_sim_backends,
    sim_backend_profile,
)
from repro.sim.failure import CrashMode
from repro.sim.faults import FaultPlan, FaultSpec

#: the paper's kernel substrates (the experimental setup's three
#: systems); `registered_kernels()` additionally lists reference
#: backends such as ``"ideal"``
KERNEL_KINDS = paper_kernels()


def make_cluster(
    kind: str,
    seed: int = 0,
    costmodel: Optional[CostModel] = None,
    **kwargs,
) -> ClusterBase:
    """Build a cluster of the requested kernel family.

    ``kind`` is any backend registered in `repro.core.ports`.  Extra
    keyword arguments are forwarded to the cluster constructor (e.g.
    ``broadcast_loss=`` for SODA, ``tuned=True`` for Chrysalis,
    ``reply_acks=True`` for Charlotte's E7 ablation, and
    ``sim_backend=``/``shards=`` to run the cluster on an engine from
    `repro.sim.backends`).
    """
    cluster_cls = kernel_profile(kind).load_cluster()
    return cluster_cls(seed=seed, costmodel=costmodel, **kwargs)


__all__ = [
    "make_cluster",
    "KERNEL_KINDS",
    "KernelRuntimePort",
    "KernelCapabilities",
    "KernelProfile",
    "register_kernel",
    "registered_kernels",
    "paper_kernels",
    "kernel_profile",
    "kernel_profiles",
    "SimBackendProfile",
    "make_engine",
    "registered_sim_backends",
    "sim_backend_profile",
    "CostModel",
    "ClusterBase",
    "ProcessHandle",
    "LynxContext",
    "Proc",
    "Incoming",
    "LinkEnd",
    "Operation",
    "INT",
    "REAL",
    "BOOL",
    "STR",
    "BYTES",
    "LINK",
    "ArrayType",
    "RecordType",
    "CrashMode",
    "FaultPlan",
    "FaultSpec",
    "RecoveryPolicy",
    "LynxError",
    "LinkDestroyed",
    "RemoteCrash",
    "TypeClash",
    "RequestAborted",
    "MoveRestricted",
    "LinkMoved",
    "ThreadAborted",
    "RecoveryExhausted",
]
