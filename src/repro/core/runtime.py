"""The kernel-independent half of the LYNX run-time package.

`LynxRuntimeBase` implements everything the *language definition*
determines — coroutine scheduling in mutual exclusion, block points,
request/reply queue semantics, fairness, type checking, gather/scatter,
move legality, the exception model — and leaves everything the *kernel*
determines to abstract transport hooks.  The three kernel runtime
packages subclass it:

====================  =============================================
`repro.charlotte.runtime.CharlotteRuntime`
                      kernel links + activities; carries the whole
                      §3.2.1/§3.2.2 unwanted-message and
                      multi-enclosure machinery
`repro.soda.runtime.SodaRuntime`
                      advertised names, put/accept, hints, caches,
                      discover, freeze (§4.2)
`repro.chrysalis.runtime.ChrysalisRuntime`
                      shared link objects, flags, dual-queue notices
                      (§5.2)
====================  =============================================

Execution model
---------------
One runtime == one simulated process == one `repro.sim.tasks.Task`
driving `main_generator`.  The dispatcher steps LYNX threads (user
generators yielding `repro.core.ops` objects) one at a time; when no
thread is runnable the process is at a *block point* and the dispatcher
calls the kernel-specific ``rt_block_wait``.

Message receipt discipline (important for fidelity): **requests are
taken from the transport lazily**, at block points, when an open queue
and a thread in ``wait_request`` exist — so unwanted messages stay *in
the kernel* under SODA (unaccepted puts) and *in the link object* under
Chrysalis (flags), exactly as the paper describes.  Only the Charlotte
kernel eagerly pushes messages at the runtime — which is precisely what
creates the retry/forbid/allow machinery in that runtime package.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Dict, Generator, List, Optional, Tuple

from repro.core import codec
from repro.core import ops as _ops
from repro.core.context import LynxContext
from repro.core.exceptions import (
    LinkDestroyed,
    LinkMoved,
    LynxError,
    MoveRestricted,
    ProtocolViolation,
    RecoveryExhausted,
    RemoteCrash,
    RequestAborted,
    ThreadAborted,
    TypeClash,
)
from repro.core.links import (
    REPLY_CACHE_LIMIT,
    ConnectWaiter,
    EndLifecycle,
    EndRef,
    EndState,
    LinkEnd,
)
from repro.core.program import Incoming
from repro.core.recovery import TimerWheel
from repro.core.threads import LynxThread, ThreadState
from repro.core.types import Operation
from repro.core.wire import ExceptionCode, MsgKind, WireMessage
from repro.sim.futures import Future
from repro.sim.tasks import Task, TaskKilled, sleep
from repro.sim.failure import CrashMode


class LynxRuntimeBase:
    """Shared half of the LYNX run-time package; see module docstring."""

    RUNTIME_NAME = "abstract"

    def __init__(self, handle, cluster) -> None:
        self.handle = handle
        self.cluster = cluster
        self.engine = cluster.engine
        self.metrics = cluster.metrics
        self.registry = cluster.registry
        self.name: str = handle.name
        #: costs of the run-time package itself (RuntimeCosts)
        self.rc = self.runtime_costs()

        self.threads: List[LynxThread] = []
        self.ready: deque[LynxThread] = deque()
        self.ends: Dict[EndRef, EndState] = {}
        self.op_registry: Dict[str, Operation] = {}
        self.initial_links: List[LinkEnd] = []

        #: threads blocked in WaitRequest, FIFO, with their end filters
        self._wait_req: deque[Tuple[LynxThread, Optional[Tuple[EndRef, ...]]]] = (
            deque()
        )
        #: round-robin rotation of end refs for queue fairness (§2.1)
        self._rr: deque[EndRef] = deque()
        self._wakeup: Optional[Future] = None
        #: level-trigger latch: a wake that arrived while no wakeup
        #: future existed (e.g. during a charged kernel call) is
        #: remembered, not lost
        self._wake_signal = False
        self.alive = True
        self.exited = False
        self._crash_mode: Optional[CrashMode] = None
        #: where loss-recovery lives for this backend ("runtime" or
        #: "kernel"), resolved lazily from the kernel registry
        self._recovery_placement_cache: Optional[str] = None
        #: jitter stream for recovery backoff, derived lazily so
        #: fault-free runs draw nothing
        self._recovery_rng = None
        #: recovery timeouts batch same-deadline timers behind one
        #: engine event; see repro.core.recovery.TimerWheel
        self.timers = TimerWheel(self.engine)

    # ==================================================================
    # kernel-specific transport hooks (overridden by kernel runtimes);
    # all are generator functions unless noted
    # ==================================================================
    def runtime_costs(self):
        """(plain) The `RuntimeCosts` profile for this kernel family."""
        raise NotImplementedError

    def rt_startup(self) -> Generator:
        """Per-process kernel setup (allocate queues, register names)."""
        return
        yield

    def rt_runnable(self) -> bool:
        """(plain) May user threads run right now?  SODA's freeze
        protocol (§4.2) returns False while the process is frozen —
        "ceases execution of everything but its own searches"."""
        return True

    def rt_shutdown(self) -> Generator:
        """Orderly teardown after all links have been destroyed.  The
        default tells the cluster, which informs kernels that track
        per-process liveness (crash interrupts, name tables)."""
        self.cluster.runtime_exited(self)
        return
        yield

    def rt_new_link(self) -> Generator:
        """Create a fresh link with both ends owned locally; returns
        (ref_a, ref_b)."""
        raise NotImplementedError
        yield

    def rt_send_request(self, es: EndState, msg: WireMessage) -> Generator:
        """Put a REQUEST on the wire (or queue it transport-side)."""
        raise NotImplementedError
        yield

    def rt_send_reply(self, es: EndState, msg: WireMessage) -> Generator:
        """Put a REPLY/EXCEPTION on the wire.  May raise
        `RequestAborted` if the transport can tell the requester no
        longer wants it (SODA/Chrysalis can; Charlotte cannot — §3.2)."""
        raise NotImplementedError
        yield

    def rt_sync_interest(self, es: EndState) -> Generator:
        """The set of messages we are willing to receive on ``es``
        changed (queue opened/closed, reply newly expected/satisfied).
        Charlotte posts/cancels kernel Receives here; SODA posts status
        signals; Chrysalis needs nothing."""
        return
        yield

    def rt_block_wait(self) -> Generator:
        """Block until at least one transport event has been applied
        (via the ``deliver_* / notify_*`` base hooks or internal
        state)."""
        raise NotImplementedError
        yield

    def rt_request_available(self, es: EndState) -> bool:
        """(plain) A request could be taken from the transport on this
        end right now."""
        raise NotImplementedError

    def rt_take_request(self, es: EndState) -> Generator:
        """Take one request from the transport (scatter/accept it);
        returns a WireMessage, or None if none was actually available."""
        raise NotImplementedError
        yield

    def rt_destroy(self, es: EndState, reason: str) -> Generator:
        """Destroy the link at the kernel level and notify the peer."""
        raise NotImplementedError
        yield

    def rt_abort_connect(self, es: EndState, waiter: ConnectWaiter) -> Generator:
        """Attempt to withdraw the outstanding request of ``waiter``.
        Returns True if it was withdrawn before receipt (enclosures are
        then restored by the base)."""
        raise NotImplementedError
        yield

    def rt_export_end(self, es: EndState) -> dict:
        """(plain) Transport metadata shipped with a moving end."""
        return {}

    def rt_adopt_end(self, ref: EndRef, meta: dict) -> Generator:
        """Adopt a moved-in end at the kernel level (map the memory
        object, advertise the name, ...)."""
        return
        yield

    # ==================================================================
    # base hooks called by kernel runtimes when transport events occur.
    # These are plain functions, safe to call from kernel callbacks at
    # any simulated instant; they only mutate state and wake the
    # dispatcher.
    # ==================================================================
    def deliver_reply(self, ref: EndRef, msg: WireMessage) -> None:
        """A REPLY or EXCEPTION message arrived for a connect of ours."""
        es = self.ends.get(ref)
        if es is None:
            self.metrics.count("runtime.stray_reply")
            return
        es.incoming_replies.append(msg)
        self._wake()

    def notify_receipt(self, ref: EndRef, seq: int) -> None:
        """A message we sent (request or reply) was received by the far
        process; finalises enclosure moves and unblocks stop-and-wait
        senders."""
        es = self.ends.get(ref)
        if es is None:
            return
        msg = self._retract_outgoing(es, seq)
        if msg is None:
            return
        self._finalise_enclosures(msg)
        waiter_thread = es.send_waiters.pop(seq, None)
        if waiter_thread is not None:
            self._resume(waiter_thread, None)
        self._wake()

    def notify_bounce(self, ref: EndRef, seq: int) -> None:
        """A message we sent was returned unreceived (Charlotte retry /
        forbid); enclosures come back to us.  The kernel runtime is
        responsible for any resend policy; the base only restores
        enclosure ownership if the message will NOT be resent (the
        Charlotte runtime resends, so it does not call this for retried
        requests — only for terminally bounced ones)."""
        es = self.ends.get(ref)
        if es is None:
            return
        msg = self._retract_outgoing(es, seq)
        if msg is None:
            return
        self._restore_enclosures(msg)
        self._wake()

    def notify_reply_aborted(self, ref: EndRef, seq: int) -> None:
        """The requester aborted; our REPLY was refused — the replying
        coroutine feels `RequestAborted` (§3.2)."""
        es = self.ends.get(ref)
        if es is None:
            return
        msg = self._retract_outgoing(es, seq)
        if msg is not None:
            self._restore_enclosures(msg)
        t = es.send_waiters.pop(seq, None)
        if t is not None:
            self._resume_error(t, RequestAborted(f"requester aborted on {ref}"))
        self.metrics.count("runtime.reply_aborted")
        self._wake()

    def notify_destroyed(self, ref: EndRef, reason: str, crash: bool = False) -> None:
        """The link was destroyed underneath us (peer destroyed it or
        its process died)."""
        es = self.ends.get(ref)
        if es is None or es.lifecycle is EndLifecycle.DESTROYED:
            return
        self._mark_destroyed(es, reason, crash)
        self._wake()

    # ==================================================================
    # process main loop
    # ==================================================================
    def main_generator(self) -> Generator:
        """The generator driven as this process's simulation Task."""
        try:
            yield from self.rt_startup()
            ctx = LynxContext(self)
            self._spawn_thread(self.handle.program.main(ctx), f"{self.name}.main")
            while self.alive:
                while self.ready and self.alive and self.rt_runnable():
                    t = self.ready.popleft()
                    if t.live:
                        yield from self._run_thread(t)
                if not self.alive or not self._has_live_threads():
                    break
                yield from self._block_point()
        except GeneratorExit:
            # the simulation ended with this process still suspended
            # (e.g. an undetected Chrysalis processor failure left it
            # blocked); no simulated clean-up can run during GC
            self.alive = False
            self.exited = True
            raise
        except TaskKilled:
            self.alive = False
            if self._crash_mode is CrashMode.PROCESSOR:
                # hard processor failure: nothing more runs here; the
                # *kernel* may or may not clean up (cluster decides)
                self.exited = True
                raise
            # TERMINATE / FAULT: orderly clean-up still runs (§5.2:
            # "even erroneous processes can clean up their links")
        finally:
            if self._crash_mode is not CrashMode.PROCESSOR and not self.exited:
                yield from self._cleanup()
                self.exited = True

    def _cleanup(self) -> Generator:
        """LYNX semantics: "the termination of a process must destroy
        all the links attached to that process" (§2.2)."""
        self.alive = False
        for ref in list(self.ends.keys()):
            es = self.ends.get(ref)
            if es is None or es.lifecycle is not EndLifecycle.OWNED:
                continue
            reason = f"process {self.name} terminated"
            self._mark_destroyed(es, reason, crash=self._crash_mode is not None)
            try:
                yield from self.rt_destroy(es, reason)
            except LynxError:
                self.metrics.count("runtime.cleanup_errors")
            self.registry.record_destroyed(ref.link, reason)
        yield from self.rt_shutdown()

    # ------------------------------------------------------------------
    # thread machinery
    # ------------------------------------------------------------------
    def _spawn_thread(self, gen: Generator, name: str) -> LynxThread:
        t = LynxThread(gen, name)
        self.threads.append(t)
        self.ready.append(t)
        return t

    def _has_live_threads(self) -> bool:
        return any(t.live for t in self.threads)

    def _run_thread(self, t: LynxThread) -> Generator:
        """Step ``t`` until it blocks or finishes.  Mutual exclusion is
        by construction: nothing else runs while we are in here."""
        while t.state is ThreadState.READY and self.alive:
            try:
                if t.pending_error is not None:
                    err, t.pending_error = t.pending_error, None
                    t.pending_value = None
                    op = t.gen.throw(err)
                else:
                    val, t.pending_value = t.pending_value, None
                    op = t.gen.send(val)
            except StopIteration as stop:
                t.state = ThreadState.DONE
                t.result = stop.value
                return
            except ThreadAborted as err:
                t.state = ThreadState.DONE
                t.error = err
                self.metrics.count("runtime.threads_aborted")
                return
            except LynxError as err:
                # an unhandled LYNX exception terminates the coroutine
                t.state = ThreadState.FAILED
                t.error = err
                self.metrics.count("runtime.threads_failed")
                return
            yield from self._handle_op(t, op)

    # ------------------------------------------------------------------
    # op dispatch
    # ------------------------------------------------------------------
    def _handle_op(self, t: LynxThread, op: Any) -> Generator:
        if isinstance(op, _ops.ConnectOp):
            yield from self._op_connect(t, op)
        elif isinstance(op, _ops.WaitRequestOp):
            self._op_wait_request(t, op)
        elif isinstance(op, _ops.ReplyOp):
            yield from self._op_reply(t, op)
        elif isinstance(op, _ops.OpenOp):
            yield from self._op_set_queue(t, op.end, True)
        elif isinstance(op, _ops.CloseOp):
            yield from self._op_set_queue(t, op.end, False)
        elif isinstance(op, _ops.NewLinkOp):
            yield from self._op_new_link(t)
        elif isinstance(op, _ops.DestroyOp):
            yield from self._op_destroy(t, op)
        elif isinstance(op, _ops.ForkOp):
            child = self._spawn_thread(op.gen, op.name or f"{self.name}.fork")
            t.pending_value = child
        elif isinstance(op, _ops.AbortThreadOp):
            yield from self._op_abort(t, op.thread)
        elif isinstance(op, _ops.RegisterOp):
            self.op_registry[op.operation.name] = op.operation
            t.pending_value = None
        elif isinstance(op, _ops.DelayOp):
            t.block("delay")
            self.engine.schedule(op.ms, self._resume, t, None)
        elif isinstance(op, _ops.ComputeOp):
            yield sleep(self.engine, op.ms)
            t.pending_value = None
        elif isinstance(op, _ops.NowOp):
            t.pending_value = self.engine.now
        elif isinstance(op, _ops.SelfOp):
            t.pending_value = self.name
        else:
            t.pending_error = ProtocolViolation(f"unknown op {op!r}")

    # -- connect --------------------------------------------------------
    def _op_connect(self, t: LynxThread, op: _ops.ConnectOp) -> Generator:
        try:
            es = self._resolve_end(op.end)
            payload, encs = codec.request_payload(op.op, op.args)
            self._check_movable(encs, es)
        except LynxError as err:
            t.pending_error = err
            return
        # mint the causal root of this RPC; it rides on every message of
        # the conversation (see repro.obs.causal)
        root = self.cluster.spans.new_trace()
        root_t0 = self.engine.now
        yield self._charge_gather(payload, encs)
        self.cluster.spans.emit(
            root, "runtime", "marshal", self.name, root_t0, self.engine.now
        )
        seq = es.alloc_seq()
        msg = WireMessage(
            kind=MsgKind.REQUEST,
            seq=seq,
            opname=op.op.name,
            sighash=op.op.sighash,
            payload=payload,
            enclosures=encs,
            enc_total=len(encs),
            sent_at=self.engine.now,
            span=root,
        )
        self._stage_enclosures(msg)
        es.outgoing[seq] = msg
        es.unreceived_sent += 1
        waiter = ConnectWaiter(
            t, seq, op.op, sent_at=self.engine.now, span=root, span_t0=root_t0,
            request=msg,
        )
        es.connect_waiters.append(waiter)
        t.block(f"connect:{op.op.name}")
        self.metrics.count("runtime.connects")
        self.cluster.trace_msg(self.name, "send", es.ref, msg, op=op.op.name)
        try:
            yield from self._transmit_request(es, msg)
            yield from self.rt_sync_interest(es)
        except LynxError as err:
            self._unwind_connect(es, waiter, msg)
            self._resume_error(t, err)
        else:
            self._arm_recovery(es, waiter)

    def _unwind_connect(
        self, es: EndState, waiter: ConnectWaiter, msg: WireMessage
    ) -> None:
        if waiter in es.connect_waiters:
            es.connect_waiters.remove(waiter)
        self._retract_outgoing(es, msg.seq)
        self._restore_enclosures(msg)
        self._finish_root_span(waiter)

    def _finish_root_span(self, waiter: ConnectWaiter) -> None:
        """Close the RPC's root span (at most once) — the trace covers
        connect entry to this instant, however the connect ended.
        Every connect-end path funnels through here, so it also
        disarms the waiter's recovery timer."""
        self._cancel_recovery(waiter)
        if waiter.span is not None:
            self.cluster.spans.emit_root(
                waiter.span, f"connect:{waiter.op.name}", self.name,
                waiter.span_t0, self.engine.now,
            )
            waiter.span = None

    # -- wait_request -----------------------------------------------------
    def _op_wait_request(self, t: LynxThread, op: _ops.WaitRequestOp) -> None:
        filt = None
        if op.ends is not None:
            filt = tuple(e.end_ref for e in op.ends)
        t.block("wait_request")
        self._wait_req.append((t, filt))

    # -- reply ------------------------------------------------------------
    def _op_reply(self, t: LynxThread, op: _ops.ReplyOp) -> Generator:
        inc: Incoming = op.incoming
        try:
            es = self._resolve_end(inc.end)
            if inc.seq not in es.owed_replies:
                raise ProtocolViolation(
                    f"no reply owed for seq {inc.seq} on {es.ref}"
                )
            payload, encs = codec.reply_payload(inc.op, op.results)
            self._check_movable(encs, es)
        except LynxError as err:
            t.pending_error = err
            return
        root = es.request_spans.pop(inc.seq, None)
        serve_t0 = es.request_span_t0.pop(inc.seq, None)
        gather_t0 = self.engine.now
        if root is not None and serve_t0 is not None:
            # the server's application time: request delivery -> reply
            self.cluster.spans.emit(
                root, "app", f"serve:{inc.op.name}", self.name,
                serve_t0, gather_t0,
            )
        yield self._charge_gather(payload, encs)
        if root is not None:
            self.cluster.spans.emit(
                root, "runtime", "marshal", self.name, gather_t0,
                self.engine.now,
            )
        seq = es.alloc_seq()
        msg = WireMessage(
            kind=MsgKind.REPLY,
            seq=seq,
            reply_to=inc.seq,
            opname=inc.op.name,
            sighash=inc.op.sighash,
            payload=payload,
            enclosures=encs,
            enc_total=len(encs),
            sent_at=self.engine.now,
            span=root,
        )
        self._stage_enclosures(msg)
        es.outgoing[seq] = msg
        es.unreceived_sent += 1
        es.owed_replies.discard(inc.seq)
        es.send_waiters[seq] = t
        t.block("reply")
        self.metrics.count("runtime.replies")
        self.cluster.trace_msg(self.name, "send", es.ref, msg, op=inc.op.name)
        self._cache_reply(es, inc.seq, msg)
        try:
            yield from self._transmit_reply(es, msg)
        except LynxError as err:
            es.send_waiters.pop(seq, None)
            self._retract_outgoing(es, seq)
            es.reply_cache.pop(inc.seq, None)
            if isinstance(err, RequestAborted):
                # the requester withdrew: the reply's enclosures stay ours
                self._restore_enclosures(msg)
            self._resume_error(t, err)
        else:
            self._arm_reply_recovery(es, msg, 0)

    # -- queue control ------------------------------------------------------
    def _op_set_queue(self, t: LynxThread, end: LinkEnd, open_: bool) -> Generator:
        try:
            es = self._resolve_end(end)
        except LynxError as err:
            t.pending_error = err
            return
        if es.queue_open != open_:
            es.queue_open = open_
            yield from self.rt_sync_interest(es)
        t.pending_value = None

    # -- link creation/destruction -------------------------------------------
    def _op_new_link(self, t: LynxThread) -> Generator:
        ref_a, ref_b = yield from self.rt_new_link()
        for ref in (ref_a, ref_b):
            self.ends[ref] = self._new_end_state(ref)
        t.pending_value = (
            LinkEnd(ref_a, self.name),
            LinkEnd(ref_b, self.name),
        )
        self.metrics.count("runtime.links_created")

    def _op_destroy(self, t: LynxThread, op: _ops.DestroyOp) -> Generator:
        try:
            es = self._resolve_end(op.end)
        except LynxError as err:
            t.pending_error = err
            return
        reason = f"destroyed by {self.name}"
        self._mark_destroyed(es, reason, crash=False)
        yield from self.rt_destroy(es, reason)
        self.registry.record_destroyed(es.ref.link, reason)
        t.pending_value = None

    # -- abort -----------------------------------------------------------------
    def _op_abort(self, t: LynxThread, target: LynxThread) -> Generator:
        if target is t:
            t.pending_error = ProtocolViolation("a thread cannot abort itself")
            return
        if not target.live:
            t.pending_value = None
            return
        if target.state is ThreadState.BLOCKED:
            # find what it is blocked on
            if target.block_reason.startswith("connect"):
                es, waiter = self._find_connect_waiter(target)
                if waiter is not None:
                    waiter.aborted = True
                    self._cancel_recovery(waiter)
                    withdrawn = yield from self.rt_abort_connect(es, waiter)
                    if withdrawn:
                        self._unwind_connect(
                            es, waiter, self._outgoing_of(es, waiter.seq)
                        )
                self.metrics.count("runtime.connect_aborts")
            elif target.block_reason == "wait_request":
                self._wait_req = deque(
                    (th, f) for th, f in self._wait_req if th is not target
                )
            self._resume_error(target, ThreadAborted("aborted by peer thread"))
        else:
            # runnable: deliver the abort before its next operation
            target.pending_error = ThreadAborted("aborted by peer thread")
        t.pending_value = None

    def _outgoing_of(self, es: EndState, seq: int) -> WireMessage:
        msg = es.outgoing.get(seq)
        if msg is None:
            # already received/bounced; nothing to unwind
            msg = WireMessage(kind=MsgKind.REQUEST, seq=seq)
        return msg

    def _find_connect_waiter(
        self, t: LynxThread
    ) -> Tuple[Optional[EndState], Optional[ConnectWaiter]]:
        for es in self.ends.values():
            for w in es.connect_waiters:
                if w.thread is t:
                    return es, w
        return None, None

    # ==================================================================
    # block points
    # ==================================================================
    def _block_point(self) -> Generator:
        yield sleep(self.engine, self.rc.dispatch_ms)
        while self.alive:
            if self.rt_runnable():
                yield from self._deliver_pending()
                if self.ready:
                    return
            if not self._has_live_threads():
                return
            yield from self.rt_block_wait()

    def _deliver_pending(self) -> Generator:
        """Consume deliverable replies, then match available requests to
        waiting threads, fairly."""
        progressed = True
        while progressed and self.alive:
            progressed = False
            # replies first: always wanted (§3.2.1)
            for es in list(self.ends.values()):
                while es.incoming_replies:
                    msg = es.incoming_replies.popleft()
                    yield from self._consume_reply(es, msg)
                    progressed = True
            # requests: fair round-robin over open, available queues
            if self._wait_req:
                delivered = yield from self._match_requests()
                progressed = progressed or delivered

    def _match_requests(self) -> Generator:
        delivered = False
        still_waiting: deque = deque()
        while self._wait_req:
            t, filt = self._wait_req.popleft()
            if not t.live or t.state is not ThreadState.BLOCKED:
                continue
            es = self._pick_queue(filt)
            if es is None:
                still_waiting.append((t, filt))
                continue
            msg = yield from self.rt_take_request(es)
            if msg is None:
                still_waiting.append((t, filt))
                continue
            ok = yield from self._consume_request(es, msg, t)
            if ok:
                delivered = True
            else:
                still_waiting.append((t, filt))
        self._wait_req = still_waiting
        return delivered

    def _pick_queue(self, filt: Optional[Tuple[EndRef, ...]]) -> Optional[EndState]:
        """Fair choice among non-empty open queues: rotate a global
        round-robin so "no queue is ignored forever" (§2.1)."""
        candidates = [
            ref
            for ref in self._rr
            if ref in self.ends
            and self.ends[ref].queue_open
            and self.ends[ref].lifecycle is EndLifecycle.OWNED
            and (filt is None or ref in filt)
            and self.rt_request_available(self.ends[ref])
        ]
        if not candidates:
            return None
        chosen = candidates[0]
        # rotate: move chosen to the back of the global order
        self._rr.remove(chosen)
        self._rr.append(chosen)
        return self.ends[chosen]

    def _consume_reply(self, es: EndState, msg: WireMessage) -> Generator:
        waiter = es.find_waiter(msg.reply_to)
        if waiter is None:
            if (self.cluster.faults is not None
                    and msg.reply_to in es.delivered_replies):
                # a duplicated or replayed reply we already consumed:
                # sequence-number suppression, not a protocol error
                self.metrics.count("recovery.duplicates_dropped")
                if msg.span is not None:
                    now = self.engine.now
                    self.cluster.spans.emit(
                        msg.span, "runtime", "dup-reply-dropped", self.name,
                        now, now,
                    )
                return
            self.metrics.count("runtime.unmatched_replies")
            return
        es.connect_waiters.remove(waiter)
        if self.cluster.faults is not None:
            es.delivered_replies.add(msg.reply_to)
        if waiter.aborted:
            # client already gave up; drop silently (Charlotte cannot
            # tell the server — §3.2; capable kernels told it earlier)
            self.metrics.count("runtime.replies_dropped_aborted")
            self._finish_root_span(waiter)
            return
        yield from self.rt_sync_interest(es)
        if msg.kind is MsgKind.EXCEPTION:
            # enclosures of the refused request come home with it
            yield from self._adopt_enclosures(msg)
            err = self._exception_from_code(msg.error, es)
            self._finish_root_span(waiter)
            self._resume_error(waiter.thread, err)
            return
        scatter_t0 = self.engine.now
        yield self._charge_scatter(msg)
        if waiter.span is not None:
            self.cluster.spans.emit(
                waiter.span, "runtime", "unmarshal", self.name,
                scatter_t0, self.engine.now,
            )
        try:
            # lazy: enclosed ends adopt now (§2.1), the body walk runs
            # only if the connector reads the results — a corrupt body
            # raises ProtocolViolation there, not here (sighash already
            # screened signature mismatch at the header)
            results = codec.lazy_unmarshal(
                waiter.op.reply,
                msg.payload,
                msg.enclosures,
                self._adopt_link_factory(msg),
            )
        except LynxError as err:
            self._finish_root_span(waiter)
            self._resume_error(waiter.thread, err)
            return
        yield from self._adopt_enclosures(msg)
        self.metrics.latency("rpc.roundtrip").record(self.engine.now - waiter.sent_at)
        self.cluster.trace_msg(self.name, "consume", es.ref, msg)
        self._finish_root_span(waiter)
        self._resume(waiter.thread, results)

    def _consume_request(
        self, es: EndState, msg: WireMessage, t: LynxThread
    ) -> Generator:
        if self.cluster.faults is not None and msg.kind is MsgKind.REQUEST:
            if not self._admit_request(es, msg):
                return False
        op = self.op_registry.get(msg.opname)
        if op is None or op.sighash != msg.sighash:
            code = (
                ExceptionCode.NO_SUCH_OPERATION
                if op is None
                else ExceptionCode.TYPE_CLASH
            )
            yield from self._auto_exception_reply(es, msg, code)
            self.metrics.count("runtime.type_clashes")
            return False
        scatter_t0 = self.engine.now
        yield self._charge_scatter(msg)
        if msg.span is not None:
            self.cluster.spans.emit(
                msg.span, "runtime", "unmarshal", self.name,
                scatter_t0, self.engine.now,
            )
        try:
            # lazy: see _consume_reply — adoption is eager, the body
            # walk defers to the server thread's first args access
            args = codec.lazy_unmarshal(
                op.request, msg.payload, msg.enclosures, self._adopt_link_factory(msg)
            )
        except LynxError:
            yield from self._auto_exception_reply(es, msg, ExceptionCode.TYPE_CLASH)
            self.metrics.count("runtime.type_clashes")
            return False
        yield from self._adopt_enclosures(msg)
        es.owed_replies.add(msg.seq)
        if msg.span is not None:
            # remember the request's trace so the reply leg rejoins it
            es.request_spans[msg.seq] = msg.span
            es.request_span_t0[msg.seq] = self.engine.now
        incoming = Incoming(LinkEnd(es.ref, self.name), op, args, msg.seq)
        self.metrics.count("runtime.requests_served")
        self.cluster.trace_msg(self.name, "consume", es.ref, msg, op=op.name)
        self._resume(t, incoming)
        return True

    def _auto_exception_reply(
        self, es: EndState, msg: WireMessage, code: ExceptionCode
    ) -> Generator:
        exc = WireMessage(
            kind=MsgKind.EXCEPTION,
            seq=es.alloc_seq(),
            reply_to=msg.seq,
            opname=msg.opname,
            error=code,
            # enclosures of the refused request travel back, unadopted
            enclosures=list(msg.enclosures),
            enclosure_meta=list(msg.enclosure_meta),
            enc_total=len(msg.enclosures),
            sent_at=self.engine.now,
            span=msg.span,
        )
        es.outgoing[exc.seq] = exc
        es.unreceived_sent += 1
        try:
            yield from self._transmit_reply(es, exc)
        except LynxError:
            self._retract_outgoing(es, exc.seq)

    # ==================================================================
    # fault plane & loss recovery
    # (repro.sim.faults / repro.core.recovery; see docs/FAULTS.md)
    # ==================================================================
    def _transmit_request(self, es: EndState, msg: WireMessage) -> Generator:
        """``rt_send_request`` behind the network-fault plane."""
        yield from self._transmit(es, msg, self.rt_send_request)

    def _transmit_reply(self, es: EndState, msg: WireMessage) -> Generator:
        """``rt_send_reply`` behind the network-fault plane."""
        yield from self._transmit(es, msg, self.rt_send_reply)

    def _transmit(self, es: EndState, msg: WireMessage, send) -> Generator:
        """Consult the cluster's `FaultInjector` (when one is installed)
        before handing ``msg`` to the kernel glue.  A dropped message
        never reaches ``send`` at all, so no kernel bookkeeping leaks;
        what the drop *means* depends on this backend's
        ``recovery_placement`` capability (§2.2 vs §4.1)."""
        faults = self.cluster.faults
        if faults is None:
            yield from send(es, msg)
            return
        verdict = faults.judge(
            self.name,
            self.cluster.peer_name_of(es.ref),
            es.ref.link,
            msg.kind.value,
        )
        if verdict.drop:
            if self._recovery_placement() == "kernel":
                # absolutes (Charlotte): the kernel hides the loss,
                # retransmitting unboundedly and invisibly (§2.2)
                self._spawn_kernel_retransmit(es, msg, send)
            else:
                # hints (SODA/Chrysalis/ideal): the message is gone;
                # the runtime's RecoveryPolicy must notice (§4.1)
                self.metrics.count("faults.messages_lost")
                self._emit_fault_span(msg, "network", "fault-drop")
            return
        if verdict.dup and self._recovery_placement() == "runtime":
            # duplicate delivery: a second copy rides alongside; the
            # receiving runtime suppresses it by sequence number
            self._emit_fault_span(msg, "network", "fault-duplicate")
            self._spawn_send(es, msg.clone_for_resend(), send, 0.0)
        if verdict.delay_ms > 0.0:
            self._spawn_send(es, msg, send, verdict.delay_ms)
            return
        yield from send(es, msg)

    def _emit_fault_span(self, msg: WireMessage, layer: str, name: str) -> None:
        """Zero-duration marker span on the message's trace (no-op when
        the message carries no span context)."""
        if msg is not None and msg.span is not None:
            now = self.engine.now
            self.cluster.spans.emit(msg.span, layer, name, self.name, now, now)

    def _spawn_send(self, es: EndState, msg: WireMessage, send, delay_ms: float) -> None:
        """Deliver ``msg`` via ``send`` after ``delay_ms`` on a detached
        task (used for delayed, duplicated and replayed copies).  The
        copy is abandoned if the process died or the end stopped being
        OWNED in the meantime."""

        def driver() -> Generator:
            if delay_ms > 0.0:
                yield sleep(self.engine, delay_ms)
            if not self.alive or es.lifecycle is not EndLifecycle.OWNED:
                return
            try:
                yield from send(es, msg)
            except LynxError:
                # a deferred copy that can no longer be sent is just a
                # lost duplicate; the original path carries any error
                self.metrics.count("faults.deferred_send_failed")

        Task(self.engine, driver(), f"fault-send:{self.name}:{msg.seq}")

    def _spawn_kernel_retransmit(self, es: EndState, msg: WireMessage, send) -> None:
        """Kernel-placement loss recovery: a detached task re-judges the
        dropped message every ``plan.kernel_retransmit_ms`` until a
        verdict lets it through, however long that takes.  Invisible to
        the runtime — the absolute the paper says a kernel cannot
        usefully promise (§2.2, §4.1)."""
        faults = self.cluster.faults

        def driver() -> Generator:
            while True:
                yield sleep(self.engine, faults.plan.kernel_retransmit_ms)
                if not self.alive or es.lifecycle is not EndLifecycle.OWNED:
                    return
                if msg.seq not in es.outgoing:
                    # receipt/abort already concluded this exchange
                    return
                self.metrics.count("faults.kernel_retransmits")
                verdict = faults.judge(
                    self.name,
                    self.cluster.peer_name_of(es.ref),
                    es.ref.link,
                    msg.kind.value,
                )
                if verdict.drop:
                    continue
                self._emit_fault_span(msg, "kernel", "retransmit-delivered")
                try:
                    yield from send(es, msg.clone_for_resend())
                except LynxError:
                    self.metrics.count("faults.deferred_send_failed")
                return

        Task(self.engine, driver(), f"kernel-rexmit:{self.name}:{msg.seq}")

    def _recovery_placement(self) -> str:
        """Where loss recovery lives for this backend, per its
        registered `KernelCapabilities` ("runtime" when the backend is
        not registered — the hint stance is the language's default)."""
        if self._recovery_placement_cache is None:
            from repro.core.ports import kernel_profile

            try:
                profile = kernel_profile(self.cluster.KIND)
            except (KeyError, ValueError):
                self._recovery_placement_cache = "runtime"
            else:
                self._recovery_placement_cache = (
                    profile.capabilities.recovery_placement
                )
        return self._recovery_placement_cache

    def _recovery_policy(self):
        """The cluster's `RecoveryPolicy`, or None when no policy is
        installed or this backend places recovery in the kernel."""
        if self.cluster.recovery is None:
            return None
        if self._recovery_placement() != "runtime":
            return None
        return self.cluster.recovery

    def _recovery_jitter_rng(self):
        if self._recovery_rng is None:
            self._recovery_rng = self.cluster.rng.child(f"recovery/{self.name}")
        return self._recovery_rng

    def _arm_recovery(self, es: EndState, waiter: ConnectWaiter) -> None:
        """Start the connect's recovery timer, if a policy applies.
        Enclosure-bearing requests are never retried — a retransmitted
        copy would try to move its link ends twice — so those connects
        keep the paper's wait-forever semantics."""
        policy = self._recovery_policy()
        if policy is None or waiter.request is None:
            return
        if waiter.request.enclosures:
            return
        waiter.recovery_timer = self.timers.schedule(
            policy.timeout_ms, self._recovery_fire, es, waiter
        )

    def _cancel_recovery(self, waiter: ConnectWaiter) -> None:
        if waiter.recovery_timer is not None:
            waiter.recovery_timer.cancel()
            waiter.recovery_timer = None

    def _recovery_fire(self, es: EndState, waiter: ConnectWaiter) -> None:
        """(plain engine callback) The recovery timer elapsed with no
        reply: retransmit with exponential backoff, or give up with
        `RecoveryExhausted` once the bounded budget is spent."""
        waiter.recovery_timer = None
        policy = self._recovery_policy()
        if (
            policy is None
            or not self.alive
            or waiter.aborted
            or waiter not in es.connect_waiters
            or es.lifecycle is not EndLifecycle.OWNED
        ):
            return
        self.metrics.count("recovery.timeouts")
        self._emit_fault_span(
            waiter.request, "runtime", f"timeout-{waiter.retries + 1}"
        )
        if waiter.retries >= policy.max_retries:
            self.metrics.count("recovery.exhausted")
            # black-box trigger (repro.obs.flight): the run is about to
            # surface RecoveryExhausted to the program
            self.cluster.trace.emit(
                self.name, "recovery-exhausted",
                op=waiter.op.name, link=es.ref.link, retries=waiter.retries,
            )
            self._unwind_connect(es, waiter, self._outgoing_of(es, waiter.seq))
            self._resume_error(
                waiter.thread,
                RecoveryExhausted(
                    f"connect {waiter.op.name} on {es.ref}: no reply after "
                    f"{waiter.retries} retries "
                    f"(~{policy.budget_ms():.0f} ms budget)"
                ),
            )
            return
        waiter.retries += 1
        self.metrics.count("recovery.retries")
        clone = waiter.request.clone_for_resend()
        if waiter.seq not in es.outgoing:
            # the original was received (receipt retracted it); the
            # retransmission re-stages so movability stays honest
            es.unreceived_sent += 1
        es.outgoing[waiter.seq] = clone
        self._emit_fault_span(waiter.request, "runtime", f"retry-{waiter.retries}")
        # the retransmission passes through the fault plane again
        self._spawn_send(es, clone, self._transmit_request, 0.0)
        waiter.recovery_timer = self.timers.schedule(
            policy.backoff_ms(waiter.retries, self._recovery_jitter_rng()),
            self._recovery_fire,
            es,
            waiter,
        )

    def _arm_reply_recovery(
        self, es: EndState, msg: WireMessage, attempt: int
    ) -> None:
        """Stop-and-wait ARQ for the reply leg: a replier blocked on a
        reply whose receipt never comes would wedge the whole process
        (it could never return to ``wait_request``, so it could never
        replay for a duplicate either).  Under runtime-placement
        recovery the reply is retransmitted on the same bounded
        schedule as requests; when the budget is spent the replier is
        *released* — the client's own recovery governs from there, and
        the cached reply still answers any later duplicate."""
        policy = self._recovery_policy()
        if self.cluster.faults is None or policy is None or msg.enclosures:
            return
        delay = (
            policy.timeout_ms
            if attempt == 0
            else policy.backoff_ms(attempt, self._recovery_jitter_rng())
        )
        self.timers.schedule(delay, self._reply_recovery_fire, es, msg, attempt)

    def _reply_recovery_fire(
        self, es: EndState, msg: WireMessage, attempt: int
    ) -> None:
        """(plain engine callback) No receipt for our reply yet:
        retransmit, or release the blocked replier once the budget is
        spent."""
        policy = self._recovery_policy()
        if (
            policy is None
            or not self.alive
            or es.lifecycle is not EndLifecycle.OWNED
            or msg.seq not in es.outgoing
        ):
            return
        if attempt >= policy.max_retries:
            self.metrics.count("recovery.reply_gave_up")
            self._emit_fault_span(msg, "runtime", "reply-gave-up")
            self._retract_outgoing(es, msg.seq)
            t = es.send_waiters.pop(msg.seq, None)
            if t is not None:
                self._resume(t, None)
            return
        self.metrics.count("recovery.reply_retries")
        self._emit_fault_span(msg, "runtime", f"reply-retry-{attempt + 1}")
        self._spawn_send(es, msg.clone_for_resend(), self._transmit_reply, 0.0)
        self._arm_reply_recovery(es, msg, attempt + 1)

    def _cache_reply(self, es: EndState, reply_to: int, msg: WireMessage) -> None:
        """Remember the reply to request ``reply_to`` so a duplicate of
        that request can be answered by replaying it (same reply seq, so
        receipt still resumes the original blocked replier).  Replies
        that move link ends are never cached — replaying one would move
        the ends twice."""
        if self.cluster.faults is None or msg.enclosures:
            return
        es.reply_cache[reply_to] = msg
        while len(es.reply_cache) > REPLY_CACHE_LIMIT:
            es.reply_cache.popitem(last=False)

    def _admit_request(self, es: EndState, msg: WireMessage) -> bool:
        """Duplicate suppression by sequence number: admit each request
        seq at most once per end.  A duplicate of a request still being
        served is dropped (the reply will answer both copies); one we
        already answered gets the cached reply replayed."""
        if msg.seq in es.owed_replies:
            self.metrics.count("recovery.duplicates_dropped")
            self._emit_fault_span(msg, "runtime", "dup-request-dropped")
            return False
        if msg.seq in es.seen_requests:
            cached = es.reply_cache.get(msg.seq)
            if cached is not None:
                self.metrics.count("recovery.replies_replayed")
                self._emit_fault_span(msg, "runtime", "reply-replayed")
                self._spawn_send(
                    es, cached.clone_for_resend(), self._transmit_reply, 0.0
                )
            else:
                self.metrics.count("recovery.duplicates_dropped")
                self._emit_fault_span(msg, "runtime", "dup-request-dropped")
            return False
        es.seen_requests.add(msg.seq)
        return True

    # ==================================================================
    # enclosure (link-moving) machinery
    # ==================================================================
    def _check_movable(self, encs: List[EndRef], via: EndState) -> None:
        seen = set()
        for ref in encs:
            if ref in seen:
                raise MoveRestricted(f"{ref} enclosed twice in one message")
            seen.add(ref)
            if ref.link == via.ref.link:
                raise MoveRestricted(
                    f"cannot enclose {ref} in a message on its own link (§2.2)"
                )
            es = self.ends.get(ref)
            if es is None or es.lifecycle is EndLifecycle.MOVED:
                raise LinkMoved(f"{ref} is not owned by {self.name}")
            if es.lifecycle is EndLifecycle.DESTROYED:
                raise LinkDestroyed(f"{ref} is destroyed")
            if es.lifecycle is EndLifecycle.IN_TRANSIT:
                raise MoveRestricted(f"{ref} is already moving")
            if not es.movable:
                raise MoveRestricted(
                    f"{ref} has unreceived messages or owed replies (§2.1)"
                )
            if es.connect_waiters:
                raise MoveRestricted(
                    f"{ref} has outstanding connects awaiting replies"
                )

    def _stage_enclosures(self, msg: WireMessage) -> None:
        for ref in msg.enclosures:
            es = self.ends[ref]
            es.lifecycle = EndLifecycle.IN_TRANSIT
            self.registry.record_in_transit(ref, self.name)
        msg.enclosure_meta = [self.rt_export_end(self.ends[r]) for r in msg.enclosures]

    def _restore_enclosures(self, msg: WireMessage) -> None:
        for ref in msg.enclosures:
            es = self.ends.get(ref)
            if es is not None and es.lifecycle is EndLifecycle.IN_TRANSIT:
                es.lifecycle = EndLifecycle.OWNED
                self.registry.record_bounced(ref, self.name)

    def _finalise_enclosures(self, msg: WireMessage) -> None:
        """Our message (with moved ends) was received: the ends are gone
        from this process for good."""
        for ref in msg.enclosures:
            es = self.ends.pop(ref, None)
            if es is not None:
                es.lifecycle = EndLifecycle.MOVED
                if ref in self._rr:
                    self._rr.remove(ref)

    def _adopt_link_factory(self, msg: WireMessage):
        """codec link factory: wrap incoming EndRefs as local handles;
        actual kernel adoption happens in `_adopt_enclosures`."""

        def factory(ref: EndRef) -> LinkEnd:
            return LinkEnd(ref, self.name)

        return factory

    def _adopt_enclosures(self, msg: WireMessage) -> Generator:
        metas = getattr(msg, "enclosure_meta", None) or [{}] * len(msg.enclosures)
        for ref, meta in zip(msg.enclosures, metas):
            if ref in self.ends:  # the end came home
                es = self.ends[ref]
                es.lifecycle = EndLifecycle.OWNED
            else:
                self.ends[ref] = self._new_end_state(ref)
                yield from self.rt_adopt_end(ref, meta)
            self.registry.record_adopted(ref, self.name)
            self.metrics.count("runtime.ends_adopted")

    # ==================================================================
    # shared plumbing
    # ==================================================================
    def _new_end_state(self, ref: EndRef) -> EndState:
        es = EndState(ref)
        if ref not in self._rr:
            self._rr.append(ref)
        return es

    def preload_end(self, ref: EndRef, as_initial: bool = True) -> EndState:
        """Cluster-side installation of an initial link end (before the
        process starts)."""
        es = self._new_end_state(ref)
        self.ends[ref] = es
        if as_initial:
            self.initial_links.append(LinkEnd(ref, self.name))
        return es

    def _resolve_end(self, end: LinkEnd) -> EndState:
        es = self.ends.get(end.end_ref)
        if es is None:
            raise LinkMoved(f"{end.end_ref} is not owned by {self.name}")
        if es.lifecycle is EndLifecycle.DESTROYED:
            raise self.destroyed_error(
                es.destroy_reason, f"{end.end_ref} destroyed"
            )
        if es.lifecycle is not EndLifecycle.OWNED:
            raise LinkMoved(f"{end.end_ref} has moved away")
        return es

    @staticmethod
    def destroyed_error(reason: str, fallback: str = "link destroyed") -> LynxError:
        """The exception a dead link raises: `RemoteCrash` when the
        destruction came from a crash, `LinkDestroyed` otherwise.  The
        decision keys on the ``"crash"`` tag in the reason string (see
        `crash_tagged`) so it survives the wire."""
        reason = reason or fallback
        return RemoteCrash(reason) if "crash" in reason else LinkDestroyed(reason)

    def crash_tagged(self, reason: str) -> str:
        """Tag ``reason`` so peers raise `RemoteCrash` when this
        process is dying from a crash rather than orderly code (kernels
        stamp their destroy notices with this)."""
        return ("crash: " if self._crash_mode is not None else "") + reason

    def reply_wanted(self, es: Optional[EndState], reply_to: int) -> bool:
        """Does a live connect waiter still want the reply to request
        ``reply_to``?  Kernels that can screen replies (SODA's
        zero-accepts, Charlotte's reply-ack ablation, ideal's direct
        delivery) ask this before accepting one."""
        if es is None:
            return False
        waiter = es.find_waiter(reply_to)
        return waiter is not None and not waiter.aborted

    def _retract_outgoing(self, es: EndState, seq: int) -> Optional[WireMessage]:
        """Un-stage a sent message: pop it from ``outgoing`` and undo
        its unreceived-count contribution (receipt, bounce, abort and
        unwind paths all need exactly this)."""
        msg = es.outgoing.pop(seq, None)
        if msg is not None:
            es.unreceived_sent = max(0, es.unreceived_sent - 1)
        return msg

    def _mark_destroyed(self, es: EndState, reason: str, crash: bool) -> None:
        if es.lifecycle is EndLifecycle.DESTROYED:
            return
        es.lifecycle = EndLifecycle.DESTROYED
        es.destroy_reason = ("crash: " if crash else "") + reason
        err_cls = RemoteCrash if crash else LinkDestroyed
        # a reply that already reached us satisfies its waiter even
        # though the link is now dead (the far end may legitimately
        # destroy the link the moment its reply leaves, §2.2)
        pending_replies = {m.reply_to for m in es.incoming_replies}
        # wake everything else blocked on this end with the exception
        for w in list(es.connect_waiters):
            if w.seq in pending_replies:
                continue
            es.connect_waiters.remove(w)
            self._finish_root_span(w)
            if not w.aborted:
                self._resume_error(w.thread, err_cls(es.destroy_reason))
        for seq, t in list(es.send_waiters.items()):
            es.send_waiters.pop(seq, None)
            self._resume_error(t, err_cls(es.destroy_reason))
        # wake wait_request threads whose filter can now never match
        still: deque = deque()
        for th, filt in self._wait_req:
            dead_filter = filt is not None and all(
                r not in self.ends
                or self.ends[r].lifecycle is EndLifecycle.DESTROYED
                for r in filt
            )
            if dead_filter:
                self._resume_error(th, err_cls(es.destroy_reason))
            else:
                still.append((th, filt))
        self._wait_req = still
        # enclosures of ours that were in transit on this link: their
        # fate is kernel-specific; kernels call registry.record_lost or
        # redeliver.  Here we only drop the outgoing staging.
        es.outgoing.clear()
        es.unreceived_sent = 0
        es.owed_replies.clear()
        es.request_spans.clear()
        es.request_span_t0.clear()
        es.seen_requests.clear()
        es.reply_cache.clear()
        es.delivered_replies.clear()

    def _resume(self, t: LynxThread, value: Any) -> None:
        if t.state is ThreadState.BLOCKED:
            t.resume(value)
            self.ready.append(t)
            self._wake()

    def _resume_error(self, t: LynxThread, err: BaseException) -> None:
        if t.state is ThreadState.BLOCKED:
            t.resume_error(err)
            self.ready.append(t)
            self._wake()

    def _wake(self) -> None:
        # ALWAYS latch: the pending wakeup future may have been
        # abandoned (the dispatcher moved on after a different event
        # and is currently inside a charged kernel call); resolving it
        # alone would lose the signal.  The latch costs at most one
        # spurious loop pass, which the block loops absorb.
        self._wake_signal = True
        if self._wakeup is not None and not self._wakeup.is_settled():
            fut, self._wakeup = self._wakeup, None
            fut.resolve(None)

    def wakeup_future(self) -> Future:
        """A future the dispatcher can block on that base hooks resolve
        when anything happens.  Level-triggered: a wake that arrived
        while nobody was listening resolves the next future
        immediately (the block loops re-check their conditions, so
        spurious wakeups are harmless)."""
        if self._wake_signal:
            self._wake_signal = False
            fut = Future(self.engine, f"{self.name}.wakeup-latched")
            fut.resolve(None)
            return fut
        if self._wakeup is None or self._wakeup.is_settled():
            self._wakeup = Future(self.engine, f"{self.name}.wakeup")
        return self._wakeup

    def _charge_gather(self, payload: bytes, encs: List[EndRef]):
        cost = (
            self.rc.gather_fixed_ms
            + self.rc.per_byte_ms * len(payload)
            + self.rc.per_enclosure_ms * len(encs)
        )
        self.metrics.count("runtime.gathers")
        return sleep(self.engine, cost)

    def _charge_scatter(self, msg: WireMessage):
        cost = (
            self.rc.scatter_fixed_ms
            + self.rc.per_byte_ms * len(msg.payload)
            + self.rc.per_enclosure_ms * len(msg.enclosures)
        )
        self.metrics.count("runtime.scatters")
        return sleep(self.engine, cost)

    def _exception_from_code(
        self, code: Optional[ExceptionCode], es: EndState
    ) -> LynxError:
        if code is ExceptionCode.REQUEST_ABORTED:
            return RequestAborted("request aborted")
        if code is ExceptionCode.LINK_DESTROYED:
            return LinkDestroyed("link destroyed during operation")
        if code is ExceptionCode.NO_SUCH_OPERATION:
            return TypeClash("server does not serve this operation")
        return TypeClash("request/reply signature mismatch")
