"""The logical link registry: ground truth for invariants and tests.

The paper's figure 1 and §3.2.2 hinge on questions like *who really
owns this end right now?* and *was this enclosure lost?*  Real systems
have no such oracle — that is rather the point of the paper's hint
systems — but the reproduction needs one to *verify* the hint systems.
Runtimes report every lifecycle transition here; nothing in the
simulated protocols ever reads it (tests assert that by construction:
it exposes no query API that runtimes import).

It also allocates global link ids, standing in for each kernel's
name-generation facility.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.links import EndRef


class EndDisposition(enum.Enum):
    OWNED = "owned"
    IN_TRANSIT = "in-transit"
    LOST = "lost"  # the §3.2.2 deviation: enclosure vanished


@dataclass
class EndRecord:
    owner: Optional[str]  # process name, None while in transit / lost
    disposition: EndDisposition = EndDisposition.OWNED


@dataclass
class LinkRecord:
    link: int
    ends: Tuple[EndRecord, EndRecord]
    destroyed: bool = False
    destroy_reason: str = ""


class LinkRegistry:
    """Global truth about links; see module docstring."""

    def __init__(self) -> None:
        self._next_link = 1
        self.links: Dict[int, LinkRecord] = {}
        #: chronological (time-ordering by call order) transition log
        self.log: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # allocation / transitions (called by runtimes and clusters)
    # ------------------------------------------------------------------
    def alloc_link(self, owner_a: str, owner_b: str) -> int:
        link = self._next_link
        self._next_link += 1
        self.links[link] = LinkRecord(
            link, (EndRecord(owner_a), EndRecord(owner_b))
        )
        self.log.append(("new", f"L{link} a={owner_a} b={owner_b}"))
        return link

    def record_in_transit(self, ref: EndRef, from_owner: str) -> None:
        rec = self.links[ref.link].ends[ref.side]
        rec.owner = None
        rec.disposition = EndDisposition.IN_TRANSIT
        self.log.append(("transit", f"{ref} from {from_owner}"))

    def record_adopted(self, ref: EndRef, new_owner: str) -> None:
        rec = self.links[ref.link].ends[ref.side]
        rec.owner = new_owner
        rec.disposition = EndDisposition.OWNED
        self.log.append(("adopt", f"{ref} by {new_owner}"))

    def record_bounced(self, ref: EndRef, restored_owner: str) -> None:
        """An unwanted message returned its enclosure to the sender."""
        rec = self.links[ref.link].ends[ref.side]
        rec.owner = restored_owner
        rec.disposition = EndDisposition.OWNED
        self.log.append(("bounce", f"{ref} back to {restored_owner}"))

    def record_lost(self, ref: EndRef) -> None:
        """The Charlotte deviation (§3.2.2): an enclosure in an aborted
        message vanished when the tentative holder crashed."""
        rec = self.links[ref.link].ends[ref.side]
        rec.owner = None
        rec.disposition = EndDisposition.LOST
        self.log.append(("lost", str(ref)))

    def record_destroyed(self, link: int, reason: str = "") -> None:
        rec = self.links[link]
        if not rec.destroyed:
            rec.destroyed = True
            rec.destroy_reason = reason
            self.log.append(("destroy", f"L{link} ({reason})"))

    # ------------------------------------------------------------------
    # queries (FOR TESTS AND BENCHES ONLY — simulated protocols must
    # never consult the registry; that would defeat the hint systems
    # under study)
    # ------------------------------------------------------------------
    def owner_of(self, ref: EndRef) -> Optional[str]:
        return self.links[ref.link].ends[ref.side].owner

    def disposition_of(self, ref: EndRef) -> EndDisposition:
        return self.links[ref.link].ends[ref.side].disposition

    def is_destroyed(self, link: int) -> bool:
        return self.links[link].destroyed

    def lost_ends(self) -> List[EndRef]:
        out = []
        for link, rec in self.links.items():
            for side, end in enumerate(rec.ends):
                if end.disposition is EndDisposition.LOST:
                    out.append(EndRef(link, side))
        return out

    def live_links(self) -> List[int]:
        return [l for l, rec in self.links.items() if not rec.destroyed]

    def check_invariants(self) -> List[str]:
        """Structural invariants that must hold at quiescence:
        every end of every live link is either owned by exactly one
        process or explicitly accounted as lost/in-transit."""
        problems = []
        for link, rec in self.links.items():
            for side, end in enumerate(rec.ends):
                if end.disposition is EndDisposition.OWNED and end.owner is None:
                    problems.append(f"L{link} side {side}: owned by nobody")
        return problems
