"""Runtime-side recovery policy: timeout, bounded retry, backoff.

The paper's lesson (§2.2, §4.1): a kernel that promises *absolute*
reliable delivery must hide loss forever, while a kernel that offers
*hints* lets the run-time package — which knows what the application
can tolerate — decide how long to wait, how often to retry, and what
to surface when retrying stops being worth it.  This module is that
runtime-side decision, made concrete:

* `RecoveryPolicy` — the knobs: initial ``timeout_ms``, ``max_retries``,
  exponential ``backoff_factor`` and ``jitter_frac`` (jitter draws come
  from the cluster's seeded rng, so runs replay exactly).
* `RecoveryExhausted` (re-exported from `repro.core.exceptions`) — the
  typed exception a connect raises once the retry budget is spent.
  With a policy installed, every RPC on a runtime-placement backend
  either completes exactly once (duplicates are suppressed by
  `WireMessage` sequence numbers) or raises this; it never hangs and
  never silently duplicates.

Where the policy *applies* is a per-backend capability
(`KernelCapabilities.recovery_placement`): ``"runtime"`` backends
(SODA, Chrysalis, ideal) arm these timers in
`repro.core.runtime.LynxRuntimeBase`; the ``"kernel"`` backend
(Charlotte) never sees them — its kernel retransmits invisibly and
unboundedly instead (see `repro.sim.faults`).  Install a policy with
``cluster.install_recovery(RecoveryPolicy(...))``; see docs/FAULTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.exceptions import RecoveryExhausted

__all__ = ["RecoveryPolicy", "RecoveryExhausted"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Timeout/retry knobs for runtime-placement recovery.

    The retry budget of one connect is
    ``timeout_ms * (1 + backoff_factor + ... + backoff_factor**max_retries)``
    (plus jitter): after the initial timeout each retry waits
    ``backoff_factor`` times longer than the last, and after
    ``max_retries`` unacknowledged retransmissions the connect raises
    `RecoveryExhausted`.
    """

    #: ms to wait for receipt/reply before the first retransmission
    timeout_ms: float = 50.0
    #: retransmissions before giving up (0 = timeout only, no retry)
    max_retries: int = 3
    #: multiplier applied to the timeout after every retry
    backoff_factor: float = 2.0
    #: uniform ±fraction applied to each backoff interval (decorrelates
    #: retry storms; 0 disables)
    jitter_frac: float = 0.1

    def backoff_ms(self, attempt: int, rng=None) -> float:
        """The wait before retry ``attempt`` (1-based), jittered when an
        rng is supplied."""
        base = self.timeout_ms * (self.backoff_factor ** attempt)
        if rng is None or self.jitter_frac <= 0.0:
            return base
        return rng.jitter(base, self.jitter_frac)

    def budget_ms(self) -> float:
        """Worst-case ms a connect can spend before `RecoveryExhausted`
        (jitter excluded — callers sizing partitions want the nominal
        figure)."""
        total = self.timeout_ms
        for attempt in range(1, self.max_retries + 1):
            total += self.timeout_ms * (self.backoff_factor ** attempt)
        return total
