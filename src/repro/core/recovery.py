"""Runtime-side recovery policy: timeout, bounded retry, backoff.

The paper's lesson (§2.2, §4.1): a kernel that promises *absolute*
reliable delivery must hide loss forever, while a kernel that offers
*hints* lets the run-time package — which knows what the application
can tolerate — decide how long to wait, how often to retry, and what
to surface when retrying stops being worth it.  This module is that
runtime-side decision, made concrete:

* `RecoveryPolicy` — the knobs: initial ``timeout_ms``, ``max_retries``,
  exponential ``backoff_factor`` and ``jitter_frac`` (jitter draws come
  from the cluster's seeded rng, so runs replay exactly).
* `RecoveryExhausted` (re-exported from `repro.core.exceptions`) — the
  typed exception a connect raises once the retry budget is spent.
  With a policy installed, every RPC on a runtime-placement backend
  either completes exactly once (duplicates are suppressed by
  `WireMessage` sequence numbers) or raises this; it never hangs and
  never silently duplicates.
* `TimerWheel` — how the runtime *arms* those timeouts cheaply: all
  timers due at the same simulated instant share one engine event
  (one heap push per distinct deadline instead of one per timer).
  Cancellation — the overwhelmingly common case, since most RPCs
  complete long before their timeout — is an O(1) flag flip that
  never touches the engine heap unless the whole bucket empties.

Where the policy *applies* is a per-backend capability
(`KernelCapabilities.recovery_placement`): ``"runtime"`` backends
(SODA, Chrysalis, ideal) arm these timers in
`repro.core.runtime.LynxRuntimeBase`; the ``"kernel"`` backend
(Charlotte) never sees them — its kernel retransmits invisibly and
unboundedly instead (see `repro.sim.faults`).  Install a policy with
``cluster.install_recovery(RecoveryPolicy(...))``; see docs/FAULTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.core.exceptions import RecoveryExhausted

__all__ = [
    "RecoveryPolicy",
    "RecoveryExhausted",
    "TimerHandle",
    "TimerWheel",
]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Timeout/retry knobs for runtime-placement recovery.

    The retry budget of one connect is
    ``timeout_ms * (1 + backoff_factor + ... + backoff_factor**max_retries)``
    (plus jitter): after the initial timeout each retry waits
    ``backoff_factor`` times longer than the last, and after
    ``max_retries`` unacknowledged retransmissions the connect raises
    `RecoveryExhausted`.
    """

    #: ms to wait for receipt/reply before the first retransmission
    timeout_ms: float = 50.0
    #: retransmissions before giving up (0 = timeout only, no retry)
    max_retries: int = 3
    #: multiplier applied to the timeout after every retry
    backoff_factor: float = 2.0
    #: uniform ±fraction applied to each backoff interval (decorrelates
    #: retry storms; 0 disables)
    jitter_frac: float = 0.1

    def backoff_ms(self, attempt: int, rng=None) -> float:
        """The wait before retry ``attempt`` (1-based), jittered when an
        rng is supplied."""
        base = self.timeout_ms * (self.backoff_factor ** attempt)
        if rng is None or self.jitter_frac <= 0.0:
            return base
        return rng.jitter(base, self.jitter_frac)

    def budget_ms(self) -> float:
        """Worst-case ms a connect can spend before `RecoveryExhausted`
        (jitter excluded — callers sizing partitions want the nominal
        figure)."""
        total = self.timeout_ms
        for attempt in range(1, self.max_retries + 1):
            total += self.timeout_ms * (self.backoff_factor ** attempt)
        return total


class TimerHandle:
    """One armed timer in a `TimerWheel`.

    Interface-compatible with the `repro.sim.engine.Event` the runtime
    used to hold directly: callers only ever ``cancel()`` it.
    """

    __slots__ = ("fn", "args", "cancelled", "_bucket")

    def __init__(self, fn: Callable[..., Any], args: tuple,
                 bucket: "_Bucket") -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._bucket = bucket

    def cancel(self) -> None:
        """Disarm.  Idempotent, O(1); releases the underlying engine
        event once the last timer of its instant is cancelled."""
        if self.cancelled:
            return
        self.cancelled = True
        self._bucket.live -= 1
        if self._bucket.live == 0:
            self._bucket.release()


class _Bucket:
    """All timers of one wheel due at one exact simulated deadline."""

    __slots__ = ("wheel", "deadline", "event", "handles", "live")

    def __init__(self, wheel: "TimerWheel", deadline: float) -> None:
        self.wheel = wheel
        self.deadline = deadline
        self.event: Any = None  # the single shared engine Event
        self.handles: List[TimerHandle] = []
        self.live = 0

    def release(self) -> None:
        self.wheel._buckets.pop(self.deadline, None)
        if self.event is not None:
            self.event.cancel()


class TimerWheel:
    """Batches same-deadline timers behind one engine event each.

    Recovery timeouts are armed in droves and cancelled almost always
    (an RPC that completes cancels its timer); scheduling each one as
    its own engine event made the heap — and every subsequent push and
    pop — pay for timers that would never fire.  The wheel keeps an
    insertion-ordered bucket per *exact* deadline, so firing order
    among wheel timers is identical to the engine's (time, insertion)
    order and simulated timings are bit-for-bit unchanged (the
    equivalence test in ``tests/core/test_timer_wheel.py`` holds a
    seeded chaos run to that).

    ``passthrough=True`` forwards every ``schedule`` straight to the
    engine (the pre-wheel behavior) — the reference arm of the
    equivalence test, and a chicken switch.
    """

    __slots__ = ("engine", "passthrough", "_buckets")

    def __init__(self, engine: Any, passthrough: bool = False) -> None:
        self.engine = engine
        self.passthrough = passthrough
        self._buckets: Dict[float, _Bucket] = {}

    def schedule(self, delay_ms: float, fn: Callable[..., Any],
                 *args: Any) -> Any:
        """Arm ``fn(*args)`` to fire ``delay_ms`` from now; returns a
        handle with ``.cancel()`` (a `TimerHandle`, or a raw engine
        `Event` in passthrough mode)."""
        if self.passthrough:
            return self.engine.schedule(delay_ms, fn, *args)
        if delay_ms < 0:
            # surface the same error the engine would
            return self.engine.schedule(delay_ms, fn, *args)
        deadline = self.engine.now + delay_ms
        bucket = self._buckets.get(deadline)
        if bucket is None:
            bucket = _Bucket(self, deadline)
            self._buckets[deadline] = bucket
            bucket.event = self.engine.schedule_at(
                deadline, self._fire, bucket
            )
        handle = TimerHandle(fn, args, bucket)
        bucket.handles.append(handle)
        bucket.live += 1
        return handle

    def _fire(self, bucket: _Bucket) -> None:
        self._buckets.pop(bucket.deadline, None)
        for handle in bucket.handles:
            if not handle.cancelled:
                handle.cancelled = True  # fired == spent
                handle.fn(*handle.args)

    @property
    def pending(self) -> int:
        """Armed, not-yet-fired, not-cancelled timers (introspection)."""
        return sum(b.live for b in self._buckets.values())
