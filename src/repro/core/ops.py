"""Operations a LYNX thread may yield to its runtime.

These dataclasses are the *language surface*: a LYNX program is a
generator that yields these (normally via the `repro.core.context`
helpers) and receives results back.  The vocabulary maps directly onto
the externally-visible process behaviour of paper §2.1:

=================  ====================================================
``ConnectOp``      the RPC call: send request, await reply (blocks the
                   calling coroutine)
``WaitRequestOp``  reach a block point and receive the next request
                   from any open queue (fair among non-empty queues)
``ReplyOp``        answer a received request (blocks until the reply is
                   received — stop-and-wait, §2.1)
``OpenOp``         open the end's request queue ("under explicit
                   process control")
``CloseOp``        close it
``NewLinkOp``      create a link; both ends initially owned locally
``DestroyOp``      destroy a link
``ForkOp``         start a new coroutine in this process
``AbortThreadOp``  abort a blocked coroutine (drives the §3.2.1
                   aborted-request scenarios)
``RegisterOp``     declare an operation this process can serve
``DelayOp``        consume local CPU time
``NowOp``          read the simulated clock
``SelfOp``         this process's name
=================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Sequence, Tuple

from repro.core.links import LinkEnd
from repro.core.threads import LynxThread
from repro.core.types import Operation


class LynxOp:
    """Marker base class for yieldable operations."""

    __slots__ = ()


@dataclass
class NewLinkOp(LynxOp):
    pass


@dataclass
class ConnectOp(LynxOp):
    end: LinkEnd
    op: Operation
    args: Tuple[Any, ...] = ()


@dataclass
class OpenOp(LynxOp):
    end: LinkEnd


@dataclass
class CloseOp(LynxOp):
    end: LinkEnd


@dataclass
class WaitRequestOp(LynxOp):
    #: optionally restrict to these ends (None = all open queues)
    ends: Optional[Tuple[LinkEnd, ...]] = None


@dataclass
class ReplyOp(LynxOp):
    incoming: Any  # Incoming (import cycle)
    results: Tuple[Any, ...] = ()


@dataclass
class DestroyOp(LynxOp):
    end: LinkEnd


@dataclass
class ForkOp(LynxOp):
    gen: Generator
    name: str = ""


@dataclass
class AbortThreadOp(LynxOp):
    thread: LynxThread


@dataclass
class RegisterOp(LynxOp):
    operation: Operation


@dataclass
class DelayOp(LynxOp):
    """Timed block point: the coroutine blocks and sibling coroutines
    may run; a timer resumes it after ``ms``."""

    ms: float


@dataclass
class ComputeOp(LynxOp):
    """Busy local computation: consumes CPU *without* yielding — the
    paper's mutual exclusion means no sibling coroutine runs during
    computation (§2)."""

    ms: float


@dataclass
class NowOp(LynxOp):
    pass


@dataclass
class SelfOp(LynxOp):
    pass
