"""Wire messages: what one LYNX run-time package says to another.

A `WireMessage` is the runtime-to-runtime unit.  Its `kind` vocabulary
is exactly the message vocabulary the paper develops:

* ``REQUEST`` / ``REPLY`` — the two messages of a simple remote
  operation (§3.2.1: "For the vast majority of remote operations, only
  two Charlotte messages are required").
* ``EXCEPTION`` — a reply-path error (type clash, aborted request),
  carried instead of a REPLY.
* ``RETRY`` / ``FORBID`` / ``ALLOW`` — the Charlotte unwanted-message
  machinery (§3.2.1).  Retry is "a negative acknowledgment ...
  equivalent to forbid followed by allow".
* ``GOAHEAD`` / ``ENC`` — the Charlotte multi-enclosure protocol
  (§3.2.2, figure 2): extra enclosures travel in otherwise-empty ENC
  packets, after a GOAHEAD for requests.
* ``ACK`` — the final top-level reply acknowledgment the paper chose
  *not* to implement because it "would increase message traffic by
  50 %"; we implement it behind a flag to reproduce that number (E7).

Only the Charlotte runtime ever puts RETRY/FORBID/ALLOW/GOAHEAD/ENC on
the wire; that asymmetry *is* the paper's complexity finding, so it is
deliberate that these kinds exist here but are unused by two of the
three runtimes.

Wire size: kernels charge the network for `wire_size` bytes — a fixed
header, the payload, and 4 bytes per carried enclosure reference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.links import EndRef
from repro.obs.causal import SpanContext

#: bytes of fixed header on every wire message (kind, seq, reply_to,
#: sighash, lengths) — mirrors the "self-descriptive information
#: included in messages under Charlotte ... a minimum of about 48 bits"
#: plus framing (§4.2.1).
HEADER_BYTES = 24
#: bytes to name one enclosed link end on the wire
ENCLOSURE_REF_BYTES = 4


class MsgKind(enum.Enum):
    REQUEST = "request"
    REPLY = "reply"
    EXCEPTION = "exception"
    RETRY = "retry"
    FORBID = "forbid"
    ALLOW = "allow"
    GOAHEAD = "goahead"
    ENC = "enc"
    ACK = "ack"


class ExceptionCode(enum.Enum):
    TYPE_CLASH = "type-clash"
    NO_SUCH_OPERATION = "no-such-operation"
    REQUEST_ABORTED = "request-aborted"
    LINK_DESTROYED = "link-destroyed"


@dataclass(slots=True)
class WireMessage:
    """One runtime-level message.  Slotted: tens of thousands are built
    per benchmark run, and the per-instance ``__dict__`` showed up in
    the dispatch profile (docs/PERFORMANCE.md).

    ``enclosures`` lists the link ends moved by this message, in the
    order they appear in the payload.  For transports that cannot carry
    them all at once (Charlotte: at most one per kernel message) the
    runtime splits them into ENC packets; ``enc_total`` on the first
    packet announces how many to expect.
    """

    kind: MsgKind
    seq: int = 0
    reply_to: int = 0
    opname: str = ""
    sighash: int = 0
    payload: bytes = b""
    enclosures: List[EndRef] = field(default_factory=list)
    #: per-enclosure transport metadata (filled by the sending runtime's
    #: ``rt_export_end``; opaque to everything but the adopting runtime)
    enclosure_meta: List[dict] = field(default_factory=list)
    #: total enclosures of the logical message (first packet announces)
    enc_total: int = 0
    error: Optional[ExceptionCode] = None
    #: simulated send timestamp, for latency accounting
    sent_at: float = 0.0
    #: causal root context of the RPC this message belongs to (the
    #: piggyback that lets kernels and the peer runtime open child
    #: spans of the same trace; see repro.obs.causal)
    span: Optional[SpanContext] = None

    @property
    def wire_size(self) -> int:
        return (
            HEADER_BYTES
            + len(self.opname)
            + len(self.payload)
            + ENCLOSURE_REF_BYTES * len(self.enclosures)
        )

    def clone_for_resend(self) -> "WireMessage":
        return WireMessage(
            kind=self.kind,
            seq=self.seq,
            reply_to=self.reply_to,
            opname=self.opname,
            sighash=self.sighash,
            payload=self.payload,
            enclosures=list(self.enclosures),
            enclosure_meta=list(self.enclosure_meta),
            enc_total=self.enc_total,
            error=self.error,
            sent_at=self.sent_at,
            span=self.span,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        encs = ",".join(str(e) for e in self.enclosures)
        return (
            f"<Wire {self.kind.value} seq={self.seq} op={self.opname!r} "
            f"{len(self.payload)}B enc=[{encs}]>"
        )
