"""The reified kernel/runtime interface (the paper's thesis, §2.3).

Two things live here:

`KernelRuntimePort`
    the explicit contract between the kernel-independent LYNX runtime
    (`repro.core.runtime.LynxRuntimeBase`) and a kernel substrate: the
    ``rt_*`` *downcalls* the runtime makes into the kernel glue, and
    the ``notify_*`` / ``deliver_*`` *upcalls* the glue makes back.
    The paper argues the placement of exactly this line decides how
    awkward the language implementation becomes; here the line is a
    single documented protocol instead of folklore spread over three
    runtime files.

`KernelProfile` + the registry
    one entry per backend: a lazy cluster factory, capability /
    divergence flags, trace-event vocabulary, cost-model pointers and
    everything the CLI / workloads / benches previously derived from
    ``if kind == "charlotte"`` string comparisons.  New backends
    register here and every layer above — `make_cluster`, the CLI,
    the conformance suite, the benches, the E2 complexity table —
    picks them up without modification.

The ``ideal`` backend (`repro.ideal`) exists to prove the port is
sufficient: it is written only against this module's contract and
passes the same conformance suite as the paper's three kernels.

See docs/PORTS.md for the contract in prose and a registration
walkthrough.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Mapping,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

try:  # pragma: no cover - Protocol exists on all supported pythons
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cluster import ClusterBase
    from repro.core.links import EndRef, EndState
    from repro.core.wire import WireMessage


class KernelRuntimePort(Protocol):
    """What a kernel-specific runtime owes the shared LYNX core.

    `repro.core.runtime.LynxRuntimeBase` implements every LYNX
    language operation (connect/reply, enclosure staging, queue
    control, thread scheduling) in kernel-independent code and calls
    the ``rt_*`` hooks below at the points where kernel primitives
    differ.  A backend implements this protocol by subclassing
    `LynxRuntimeBase` and overriding the hooks; the upcalls at the
    bottom are inherited and may be invoked from kernel callbacks.

    Unless marked *plain*, every downcall is a simulation generator:
    it may ``yield`` sim futures/sleeps and its ``return`` value is
    what ``yield from`` produces.  Plain methods must not block.

    Downcalls (runtime → kernel glue):

    ``runtime_costs()`` *(plain)*
        Return this backend's `RuntimeCosts` (marshalling charges the
        shared core applies).  Pure; called once per runtime.

    ``rt_startup()``
        Runs once before the program's ``main``.  Post: kernel-side
        tables for this process exist; initial links are usable.

    ``rt_runnable()`` *(plain)*
        True while kernel-side activity for this runtime is possibly
        pending (used by quiescence detection).  Must not block.

    ``rt_shutdown()``
        Runs after ``main`` returns and cleanup finished.  Post: the
        kernel no longer schedules work for this process.

    ``rt_new_link()``
        Allocate a fresh link; return ``(my_ref, peer_ref)``.  Post:
        both `EndRef`\\ s are registered with the link registry and
        both ends are immediately usable by this process.

    ``rt_send_request(es, msg)``
        Transmit a REQUEST on owned end ``es``.  Pre: enclosures are
        staged (IN_TRANSIT) and ``es.outgoing[msg.seq]`` is recorded.
        Post (eventually): the peer runtime sees the message via its
        request queue and the sender gets `notify_receipt` (receipt
        confirmed) or `notify_bounce` (returned undelivered).  When a
        `repro.sim.faults.FaultInjector` is installed, the shared core
        judges the message *before* making this downcall (a dropped
        message never reaches the kernel glue); retransmissions reuse
        ``msg.seq``, and duplicate deliveries are suppressed by the
        shared core, so backends need no fault awareness of their own.

    ``rt_send_reply(es, msg)``
        Transmit a REPLY for request ``msg.reply_to``.  Pre: the
        request seq is in ``es.owed_replies``.  Raises
        `RequestAborted` *before* any state change on kernels that
        can feel a withdrawn request at reply time.  Post: either the
        requester's `deliver_reply` runs, or the reply is dropped
        because the requester withdrew.

    ``rt_sync_interest(es)``
        The process newly awaits traffic on ``es`` (opened the queue
        or blocked on a reply).  Kernels with explicit flow control
        (Charlotte's allow/forbid) act here; others no-op.

    ``rt_block_wait()``
        Block until kernel activity may have changed runtime state.
        Pre: the calling thread found nothing deliverable.  Post:
        returns after any event that could unblock a thread
        (level-triggered wakeup is fine).

    ``rt_request_available(es)`` *(plain)*
        True when a request on ``es`` could be consumed right now
        without blocking.  Must not block, must not consume.

    ``rt_take_request(es)``
        Dequeue and return the next incoming REQUEST `WireMessage`
        on ``es``.  Pre: ``rt_request_available(es)`` was true.
        Post: receipt is confirmed to the sender (its
        `notify_receipt` ran) on kernels that acknowledge at
        consumption time.

    ``rt_destroy(es, reason)``
        Destroy the link owning ``es``.  Pre: core bookkeeping for
        the local end is already torn down (`_mark_destroyed` ran).
        Post: the peer (if any) eventually gets `notify_destroyed`;
        in-flight enclosures are bounced or lost per the kernel's
        semantics; the registry records the destruction.

    ``rt_abort_connect(es, waiter)``
        The client thread blocked on request ``waiter.seq`` was
        aborted.  Return True if the request was withdrawn unseen
        (the server will never observe it; the base then restores the
        enclosures), False if the server already has it — then a
        later ``rt_send_reply`` may raise `RequestAborted` on capable
        kernels.

    ``rt_export_end(es)`` *(plain)*
        Kernel-specific metadata dict describing ``es`` for enclosure
        in a message (e.g. SODA names, Chrysalis object
        capabilities).  Pure; must not mutate state.

    ``rt_adopt_end(ref, meta)``
        Adopt a received enclosure: ``meta`` is the sender's
        ``rt_export_end`` payload.  Post: the end is OWNED here,
        pending traffic for it is routed here, and if the link died
        in transit the adopter observes `notify_destroyed`.

    Upcalls (kernel glue → shared runtime, all *plain* and safe from
    kernel callbacks):

    ``deliver_reply(ref, msg)``
        Hand a REPLY to the owner of ``ref``; matched against the
        connect waiter (dropped silently if the waiter aborted).

    ``notify_receipt(ref, seq)``
        Our message ``seq`` on ``ref`` was received: pops
        ``outgoing``, finalises enclosures (IN_TRANSIT → MOVED),
        resumes the stop-and-wait sender.

    ``notify_bounce(ref, seq)``
        Our message ``seq`` came back undelivered: pops ``outgoing``
        and restores enclosures to OWNED.

    ``notify_reply_aborted(ref, seq)``
        The request we were serving was withdrawn; the replier
        thread feels `RequestAborted`.

    ``notify_destroyed(ref, reason, crash=False)``
        The link of ``ref`` is gone: marks local state destroyed and
        wakes every thread blocked on it (errors carry ``reason``;
        ``crash=True`` — or a ``"crash: ..."`` reason, see
        `LynxRuntimeBase.destroyed_error` — raises `RemoteCrash`).
    """

    def runtime_costs(self) -> Any: ...
    def rt_startup(self) -> Generator: ...
    def rt_runnable(self) -> bool: ...
    def rt_shutdown(self) -> Generator: ...
    def rt_new_link(self) -> Generator: ...
    def rt_send_request(self, es: "EndState", msg: "WireMessage") -> Generator: ...
    def rt_send_reply(self, es: "EndState", msg: "WireMessage") -> Generator: ...
    def rt_sync_interest(self, es: "EndState") -> Generator: ...
    def rt_block_wait(self) -> Generator: ...
    def rt_request_available(self, es: "EndState") -> bool: ...
    def rt_take_request(self, es: "EndState") -> Generator: ...
    def rt_destroy(self, es: "EndState", reason: str) -> Generator: ...
    def rt_abort_connect(self, es: "EndState", waiter: Any) -> Generator: ...
    def rt_export_end(self, es: "EndState") -> dict: ...
    def rt_adopt_end(self, ref: "EndRef", meta: dict) -> Generator: ...
    def deliver_reply(self, ref: "EndRef", msg: "WireMessage") -> None: ...
    def notify_receipt(self, ref: "EndRef", seq: int) -> None: ...
    def notify_bounce(self, ref: "EndRef", seq: int) -> None: ...
    def notify_reply_aborted(self, ref: "EndRef", seq: int) -> None: ...
    def notify_destroyed(
        self, ref: "EndRef", reason: str, crash: bool = False
    ) -> None: ...


@dataclass(frozen=True)
class KernelCapabilities:
    """Observable semantic divergences between backends (§6).

    These drive the conformance suite's expectations and the
    capability-conditional metric digests in ``repro.workloads``.
    """

    #: unwanted messages are bounced back and resent (Charlotte's
    #: no-buffering rule) rather than queued kernel-side
    bounces_unwanted: bool
    #: a server replying to a withdrawn request feels `RequestAborted`
    server_feels_abort: bool
    #: enclosures of an aborted-but-unconsumed request return to the
    #: sender (OWNED) instead of being lost with the link
    recovers_aborted_enclosures: bool
    #: peers of a crashed *processor* observe `RemoteCrash`
    detects_processor_failure: bool
    #: where loss-recovery lives when the network misbehaves
    #: (`repro.sim.faults`): ``"runtime"`` — the kernel delivers hints
    #: and the runtime's `repro.core.recovery.RecoveryPolicy` does
    #: bounded timeout/retry, surfacing `RecoveryExhausted`;
    #: ``"kernel"`` — the kernel promises absolute delivery and
    #: retransmits invisibly, unboundedly (Charlotte, §2.2/§4.1)
    recovery_placement: str = "runtime"


@dataclass(frozen=True)
class KernelProfile:
    """Registry entry describing one kernel backend."""

    #: the ``kind`` string accepted by `make_cluster`
    name: str
    #: one-line description for help text and docs
    title: str
    #: zero-arg lazy loader returning the ClusterBase subclass
    factory: Callable[[], type]
    #: True for the paper's three kernels (drives paper-shaped tables
    #: and anchors); False for reference baselines like ``ideal``
    paper: bool
    capabilities: KernelCapabilities
    #: dotted module paths of the kernel-specific runtime half,
    #: measured by the E2 complexity bench
    runtime_modules: Tuple[str, ...]
    #: trace-event names that make a useful sequence chart (figure 2)
    trace_events: frozenset
    #: kernel-specific metric prefixes (``charlotte.*`` etc.); digest
    #: keys in these namespaces are emitted only for backends that
    #: declare the namespace
    metric_namespaces: frozenset
    #: attribute name of this backend's costs on `CostModel`
    cost_attr: str = ""
    #: multiplier for conformance-scenario timings (fast kernels use
    #: small scales so scenario races land in the same regime)
    time_scale: float = 1.0
    #: CLI subcommands whose ``--kernel`` defaults to this backend
    cli_default_for: Tuple[str, ...] = ()
    #: argparse attribute -> cluster kwarg, forwarded by ``migrate``
    cli_migrate_extras: Mapping[str, str] = field(default_factory=dict)
    #: zero-arg lazy loader returning this backend's Linda adapter
    #: class, or None when no second-language port exists
    linda_adapter: Optional[Callable[[], type]] = None
    #: zero-arg lazy loader returning the hand-coded raw-RPC baseline
    #: function (E1's "no LYNX runtime" floor), or None
    raw_rpc: Optional[Callable[[], Callable]] = None
    #: True when this backend's data plane is a real OS transport:
    #: clusters may raise `repro.net.TransportUnavailable` on hosts
    #: that forbid sockets, and simulator-only knobs (``--sim-backend``)
    #: do not apply — the CLI rejects the combination with exit 2
    real_transport: bool = False

    def load_cluster(self) -> type:
        return self.factory()

    def cost_for(self, model) -> Any:
        """This backend's cost bundle from a `CostModel` instance."""
        return getattr(model, self.cost_attr or self.name)


_REGISTRY: Dict[str, KernelProfile] = {}


def register_kernel(profile: KernelProfile) -> KernelProfile:
    """Register a backend; later registrations may not reuse a name."""
    if profile.name in _REGISTRY:
        raise ValueError(f"kernel {profile.name!r} already registered")
    _REGISTRY[profile.name] = profile
    return profile


def registered_kernels() -> Tuple[str, ...]:
    """Every registered backend name, in registration order."""
    return tuple(_REGISTRY)


def paper_kernels() -> Tuple[str, ...]:
    """The backends that reproduce the paper's systems (§3–§5)."""
    return tuple(n for n, p in _REGISTRY.items() if p.paper)


def kernel_profile(kind: str) -> KernelProfile:
    """Look up one backend, with a helpful error listing what exists."""
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown kernel kind {kind!r}; registered kernels: "
            f"{', '.join(registered_kernels())}"
        ) from None


def kernel_profiles() -> Tuple[KernelProfile, ...]:
    """Every registered profile, in registration order."""
    return tuple(_REGISTRY.values())


def kernel_metric_digest(kind, metrics, keys: Mapping) -> dict:
    """Capability-driven slice of a metrics digest.

    ``keys`` maps digest labels to metric names; a label is included
    only when its metric's namespace (the first dotted component) is
    one the backend declares in ``metric_namespaces``.  Machinery a
    kernel does not have is therefore *absent* from the digest rather
    than a misleading ``None``/``0.0`` — consumers test ``key in d``.
    """
    profile = kernel_profile(kind)
    out = {}
    for label, metric in keys.items():
        if metric.split(".", 1)[0] in profile.metric_namespaces:
            out[label] = metrics.get(metric)
    return out


def _charlotte_cluster() -> type:
    from repro.charlotte.cluster import CharlotteCluster

    return CharlotteCluster


def _charlotte_linda() -> type:
    from repro.linda.charlotte_adapter import CharlotteLinda

    return CharlotteLinda


def _charlotte_raw() -> Callable:
    from repro.workloads.raw import raw_charlotte_rpc

    return raw_charlotte_rpc


def _soda_cluster() -> type:
    from repro.soda.cluster import SodaCluster

    return SodaCluster


def _soda_linda() -> type:
    from repro.linda.soda_adapter import SodaLinda

    return SodaLinda


def _soda_raw() -> Callable:
    from repro.workloads.raw import raw_soda_rpc

    return raw_soda_rpc


def _chrysalis_cluster() -> type:
    from repro.chrysalis.cluster import ChrysalisCluster

    return ChrysalisCluster


def _chrysalis_linda() -> type:
    from repro.linda.chrysalis_adapter import ChrysalisLinda

    return ChrysalisLinda


def _chrysalis_raw() -> Callable:
    from repro.workloads.raw import raw_chrysalis_rpc

    return raw_chrysalis_rpc


def _ideal_cluster() -> type:
    from repro.ideal.cluster import IdealCluster

    return IdealCluster


def _real_asyncio_cluster() -> type:
    from repro.net.cluster import NetCluster

    return NetCluster


register_kernel(KernelProfile(
    name="charlotte",
    title="Charlotte: asynchronous packet-switched kernel (§3)",
    factory=_charlotte_cluster,
    paper=True,
    capabilities=KernelCapabilities(
        bounces_unwanted=True,
        server_feels_abort=False,
        recovers_aborted_enclosures=False,
        detects_processor_failure=True,
        recovery_placement="kernel",
    ),
    runtime_modules=("repro.charlotte.runtime",),
    trace_events=frozenset({"packet"}),
    metric_namespaces=frozenset({"charlotte"}),
    cli_default_for=("figure2", "trace"),
    raw_rpc=_charlotte_raw,
    linda_adapter=_charlotte_linda,
))

register_kernel(KernelProfile(
    name="soda",
    title="SODA: request/reply kernel with broadcast naming (§4)",
    factory=_soda_cluster,
    paper=True,
    capabilities=KernelCapabilities(
        bounces_unwanted=False,
        server_feels_abort=True,
        recovers_aborted_enclosures=True,
        detects_processor_failure=True,
    ),
    runtime_modules=("repro.soda.runtime", "repro.soda.freeze"),
    trace_events=frozenset({"send"}),
    metric_namespaces=frozenset({"soda", "freeze"}),
    cli_default_for=("migrate", "linda"),
    cli_migrate_extras={"loss": "broadcast_loss", "cache": "cache_size"},
    raw_rpc=_soda_raw,
    linda_adapter=_soda_linda,
))

register_kernel(KernelProfile(
    name="chrysalis",
    title="Chrysalis: shared-memory multiprocessor kernel (§5)",
    factory=_chrysalis_cluster,
    paper=True,
    capabilities=KernelCapabilities(
        bounces_unwanted=False,
        server_feels_abort=True,
        recovers_aborted_enclosures=True,
        detects_processor_failure=False,
    ),
    runtime_modules=("repro.chrysalis.runtime", "repro.chrysalis.linkobject"),
    trace_events=frozenset({"send"}),
    metric_namespaces=frozenset({"chrysalis"}),
    time_scale=0.05,
    cli_default_for=("rpc",),
    raw_rpc=_chrysalis_raw,
    linda_adapter=_chrysalis_linda,
))

register_kernel(KernelProfile(
    name="ideal",
    title="ideal: zero-protocol-overhead in-memory reference kernel",
    factory=_ideal_cluster,
    paper=False,
    capabilities=KernelCapabilities(
        bounces_unwanted=False,
        server_feels_abort=True,
        recovers_aborted_enclosures=True,
        detects_processor_failure=True,
    ),
    runtime_modules=("repro.ideal.runtime", "repro.ideal.kernel"),
    trace_events=frozenset({"send"}),
    metric_namespaces=frozenset({"ideal"}),
    time_scale=0.05,
))

register_kernel(KernelProfile(
    name="real-asyncio",
    title="real-asyncio: ideal semantics over real OS sockets",
    factory=_real_asyncio_cluster,
    paper=False,
    capabilities=KernelCapabilities(
        bounces_unwanted=False,
        server_feels_abort=True,
        recovers_aborted_enclosures=True,
        detects_processor_failure=True,
    ),
    runtime_modules=("repro.net.runtime", "repro.net.kernel"),
    trace_events=frozenset({"send"}),
    metric_namespaces=frozenset({"net"}),
    cost_attr="ideal",
    time_scale=0.05,
    real_transport=True,
))


__all__ = [
    "KernelRuntimePort",
    "KernelCapabilities",
    "KernelProfile",
    "register_kernel",
    "registered_kernels",
    "paper_kernels",
    "kernel_profile",
    "kernel_profiles",
    "kernel_metric_digest",
]
