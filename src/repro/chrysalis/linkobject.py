"""The shared-memory link object (paper §5.2).

"A link is represented by a memory object, mapped into the address
spaces of the two connected processes.  The memory object contains
buffer space for a single request and a single reply in each
direction.  It also contains a set of flag bits and the names of the
dual queues for the processes at each end of the link."

Layout notes:

* A buffer slot exists per (kind, sending side): four in all.
* Flag bits mirror the slots (FULL) plus DESTROYED; they are only ever
  changed through `ChrysalisPort.atomic` (the cheap 16-bit microcoded
  op).
* ``dq_names[side]`` is the dual queue of the process at that end —
  *a hint*, updated non-atomically on adoption (§5.2's wide-write
  discussion); stale values send notices to the wrong queue, whose
  owner discards them, and correctness is preserved because flags are
  the absolute truth.
* ``aborted[side]`` records request seqs whose client coroutine was
  aborted after the request was consumed — shared memory is what lets
  Chrysalis "detect all the exceptional conditions described in the
  language definition, without any extra acknowledgments" (§6).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.wire import WireMessage


class NoticeCode(enum.Enum):
    NEW_REQ = "new-req"
    NEW_REP = "new-rep"
    CONSUMED_REQ = "consumed-req"
    CONSUMED_REP = "consumed-rep"
    DESTROYED = "destroyed"


@dataclass(frozen=True)
class Notice:
    """A dual-queue datum: (link object, what happened, which side did
    it, message seq).  Notices are hints; every consumer validates
    against the flags before acting (§5.2)."""

    oid: int
    link: int
    code: NoticeCode
    side: int  # the side that *performed* the action
    seq: int = 0


#: flag indices: (kind, sender_side) -> bit
_FLAG_BITS = {
    ("req", 0): 0,
    ("req", 1): 1,
    ("rep", 0): 2,
    ("rep", 1): 3,
}
DESTROYED_BIT = 4


class LinkObject:
    """Contents of one link's memory object.  All mutation must go
    through `ChrysalisPort.atomic` / `wide_write` so costs are charged;
    reads of shared memory are free at this grain."""

    def __init__(self, link: int, dq_a: int, dq_b: int) -> None:
        self.link = link
        self.flags: int = 0
        #: dual-queue name hints, by side
        self.dq_names: List[int] = [dq_a, dq_b]
        #: message buffers by (kind, sender side)
        self.buffers: Dict[Tuple[str, int], Optional[WireMessage]] = {
            ("req", 0): None,
            ("req", 1): None,
            ("rep", 0): None,
            ("rep", 1): None,
        }
        #: aborted request seqs, by requester side
        self.aborted: Tuple[Set[int], Set[int]] = (set(), set())
        self.destroy_reason: str = ""

    # flag helpers (call inside port.atomic) ------------------------------
    def set_full(self, kind: str, side: int) -> None:
        self.flags |= 1 << _FLAG_BITS[(kind, side)]

    def clear_full(self, kind: str, side: int) -> None:
        self.flags &= ~(1 << _FLAG_BITS[(kind, side)])

    def is_full(self, kind: str, side: int) -> bool:
        return bool(self.flags & (1 << _FLAG_BITS[(kind, side)]))

    def set_destroyed(self, reason: str = "") -> None:
        self.flags |= 1 << DESTROYED_BIT
        self.destroy_reason = reason

    @property
    def destroyed(self) -> bool:
        return bool(self.flags & (1 << DESTROYED_BIT))
