"""The Chrysalis operating system primitives (paper §5.1), simulated.

"The Chrysalis operating system provides primitives, many of them in
microcode, for the management of system abstractions.  Among these
abstractions are processes, memory objects, event blocks, and dual
queues."

* **Memory objects** are mappable into many address spaces and
  reference-counted; "Chrysalis keeps a reference count for each
  memory object" and reclaims at zero (§5.2).
* **Event blocks**: "similar to a binary semaphore, except that 1) a
  32-bit datum can be provided to the V operation, to be returned by a
  subsequent P, and 2) only the owner of an event block can wait for
  the event to be posted."
* **Dual queues**: "so named because of its ability to hold either
  data or event block names.  A queue containing data is a simple
  bounded buffer ... Once a queue becomes empty, subsequent dequeue
  operations actually enqueue event block names, on which the calling
  processes can wait.  An enqueue operation on a queue containing
  event block names actually posts a queued event instead of adding
  its datum to the queue."
* **Atomic 16-bit operations** are "extremely inexpensive"; atomic
  changes to wider quantities are "relatively costly", which is why
  the runtime writes dual-queue names non-atomically (§5.2).

Fidelity note: real dual-queue data and event datums are 32 bits; we
carry small Python tuples and charge the 32-bit cost, since packing
notice codes into machine words would add noise without changing any
measured quantity.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional

from repro.analysis.costmodel import ChrysalisCosts
from repro.core.exceptions import ProtocolViolation
from repro.sim.engine import Engine
from repro.sim.futures import Future
from repro.sim.metrics import MetricSet
from repro.sim.network import SharedMemoryInterconnect

#: sentinel returned by dequeue when the queue was empty and the caller's
#: event block name was parked instead
DQ_BLOCKED = object()


@dataclass
class _MemObject:
    oid: int
    content: Any
    refcount: int = 0
    reclaimable: bool = False
    reclaimed: bool = False


@dataclass
class _EventBlock:
    eid: int
    owner: str
    #: posts that arrived while nobody waited (queued completions)
    pending: Deque[Any] = field(default_factory=deque)
    waiter: Optional[Future] = None


@dataclass
class _DualQueue:
    qid: int
    capacity: int
    #: either data items or parked event-block names — never both
    data: Deque[Any] = field(default_factory=deque)
    events: Deque[int] = field(default_factory=deque)


class ChrysalisKernel:
    """One Butterfly box: shared primitives for all its processes."""

    def __init__(
        self,
        engine: Engine,
        metrics: MetricSet,
        costs: ChrysalisCosts,
        switch: SharedMemoryInterconnect,
    ) -> None:
        self.engine = engine
        self.metrics = metrics
        self.costs = costs
        self.switch = switch
        self._objects: Dict[int, _MemObject] = {}
        self._events: Dict[int, _EventBlock] = {}
        self._queues: Dict[int, _DualQueue] = {}
        self._next_id = 1

    def _alloc_id(self) -> int:
        i = self._next_id
        self._next_id += 1
        return i

    # ------------------------------------------------------------------
    # memory objects
    # ------------------------------------------------------------------
    def make_object(self, content: Any) -> int:
        oid = self._alloc_id()
        self._objects[oid] = _MemObject(oid, content)
        self.metrics.count("chrysalis.ops.make_object")
        return oid

    def map_object(self, oid: int) -> Any:
        obj = self._objects.get(oid)
        if obj is None or obj.reclaimed:
            raise ProtocolViolation(f"map of reclaimed object {oid}")
        obj.refcount += 1
        self.metrics.count("chrysalis.ops.map")
        return obj.content

    def unmap_object(self, oid: int) -> None:
        obj = self._objects.get(oid)
        if obj is None or obj.reclaimed:
            return
        obj.refcount = max(0, obj.refcount - 1)
        self.metrics.count("chrysalis.ops.unmap")
        self._maybe_reclaim(obj)

    def mark_reclaimable(self, oid: int) -> None:
        """"informs Chrysalis that the object can be deallocated when
        its reference count reaches zero" (§5.2)."""
        obj = self._objects.get(oid)
        if obj is not None:
            obj.reclaimable = True
            self._maybe_reclaim(obj)

    def _maybe_reclaim(self, obj: _MemObject) -> None:
        if obj.reclaimable and obj.refcount == 0 and not obj.reclaimed:
            obj.reclaimed = True
            self.metrics.count("chrysalis.objects_reclaimed")

    def object_refcount(self, oid: int) -> int:
        obj = self._objects.get(oid)
        return 0 if obj is None else obj.refcount

    def object_reclaimed(self, oid: int) -> bool:
        obj = self._objects.get(oid)
        return obj is None or obj.reclaimed

    # ------------------------------------------------------------------
    # event blocks
    # ------------------------------------------------------------------
    def make_event(self, owner: str) -> int:
        eid = self._alloc_id()
        self._events[eid] = _EventBlock(eid, owner)
        self.metrics.count("chrysalis.ops.make_event")
        return eid

    def post(self, eid: int, datum: Any) -> None:
        """V: anyone may post; the datum is handed to a waiting P or
        queued ("Completion interrupts are queued when a handler is
        busy")."""
        ev = self._events.get(eid)
        if ev is None:
            return
        self.metrics.count("chrysalis.ops.post")
        if ev.waiter is not None and not ev.waiter.is_settled():
            waiter, ev.waiter = ev.waiter, None
            waiter.resolve_later(self.costs.event_wait_ms, datum)
        else:
            ev.pending.append(datum)

    def event_wait(self, caller: str, eid: int) -> Future:
        """P: only the owner can wait (§5.1)."""
        ev = self._events[eid]
        if ev.owner != caller:
            raise ProtocolViolation(
                f"{caller} waited on event {eid} owned by {ev.owner}"
            )
        fut = Future(self.engine, f"{caller}.event{eid}")
        if ev.pending:
            fut.resolve_later(self.costs.event_wait_ms, ev.pending.popleft())
        else:
            if ev.waiter is not None and not ev.waiter.is_settled():
                raise ProtocolViolation(f"double wait on event {eid}")
            ev.waiter = fut
        return fut

    # ------------------------------------------------------------------
    # dual queues
    # ------------------------------------------------------------------
    def make_queue(self, capacity: int = 512) -> int:
        qid = self._alloc_id()
        self._queues[qid] = _DualQueue(qid, capacity)
        self.metrics.count("chrysalis.ops.make_queue")
        return qid

    def enqueue(self, qid: int, datum: Any) -> None:
        q = self._queues.get(qid)
        self.metrics.count("chrysalis.ops.enqueue")
        if q is None:
            # stale dual-queue name (its owner died): the notice is a
            # hint; losing it is survivable by design (§5.2)
            self.metrics.count("chrysalis.enqueue_to_dead_queue")
            return
        if q.events:
            # "actually posts a queued event instead"
            self.post(q.events.popleft(), datum)
            return
        if len(q.data) >= q.capacity:
            raise ProtocolViolation(f"dual queue {qid} overflow")
        q.data.append(datum)

    def dequeue(self, qid: int, event_name: int) -> Any:
        """Returns a datum, or parks ``event_name`` and returns
        `DQ_BLOCKED` ("subsequent dequeue operations actually enqueue
        event block names")."""
        q = self._queues[qid]
        self.metrics.count("chrysalis.ops.dequeue")
        if q.data:
            return q.data.popleft()
        q.events.append(event_name)
        return DQ_BLOCKED


class ChrysalisPort:
    """Per-process syscall surface; calls resolve after their cost."""

    def __init__(self, kernel: ChrysalisKernel, name: str) -> None:
        self.kernel = kernel
        self.name = name

    def _charged(self, value: Any, cost: float) -> Future:
        fut = Future(self.kernel.engine, f"{self.name}.chrys")
        fut.resolve_later(cost, value)
        return fut

    # memory objects ------------------------------------------------------
    def make_object(self, content: Any) -> Future:
        return self._charged(
            self.kernel.make_object(content), self.kernel.costs.make_object_ms
        )

    def map_object(self, oid: int) -> Future:
        return self._charged(
            self.kernel.map_object(oid), self.kernel.costs.map_ms
        )

    def unmap_object(self, oid: int) -> Future:
        self.kernel.unmap_object(oid)
        return self._charged(None, self.kernel.costs.unmap_ms)

    def mark_reclaimable(self, oid: int) -> Future:
        self.kernel.mark_reclaimable(oid)
        return self._charged(None, self.kernel.costs.flag_op_ms)

    # events / queues -------------------------------------------------------
    def make_event(self) -> Future:
        return self._charged(
            self.kernel.make_event(self.name), self.kernel.costs.make_event_ms
        )

    def make_queue(self, capacity: int = 512) -> Future:
        return self._charged(
            self.kernel.make_queue(capacity), self.kernel.costs.make_queue_ms
        )

    def post(self, eid: int, datum: Any) -> Future:
        self.kernel.post(eid, datum)
        return self._charged(None, self.kernel.costs.event_post_ms)

    def event_wait(self, eid: int) -> Future:
        return self.kernel.event_wait(self.name, eid)

    def enqueue(self, qid: int, datum: Any) -> Future:
        self.kernel.enqueue(qid, datum)
        return self._charged(None, self.kernel.costs.dq_enqueue_ms)

    def dequeue(self, qid: int, event_name: int) -> Future:
        return self._charged(
            self.kernel.dequeue(qid, event_name), self.kernel.costs.dq_dequeue_ms
        )

    # atomic / wide memory operations ----------------------------------------
    def atomic(self, fn: Callable[[], Any]) -> Future:
        """A 16-bit atomic flag operation: "extremely inexpensive"."""
        self.kernel.metrics.count("chrysalis.ops.atomic")
        return self._charged(fn(), self.kernel.costs.flag_op_ms)

    def wide_write(self, fn: Callable[[], Any]) -> Future:
        """A >16-bit non-atomic write (dual-queue names, §5.2)."""
        self.kernel.metrics.count("chrysalis.ops.wide_write")
        return self._charged(fn(), self.kernel.costs.wide_write_ms)

    def copy(self, nbytes: int) -> Future:
        """A block copy through the switch (gather into / scatter out
        of a link buffer)."""
        return self._charged(None, self.kernel.switch.transit_time(nbytes))
