"""Chrysalis: the BBN Butterfly's operating system, and LYNX on it.

Chrysalis (paper §5) provides no messages at all: "processes, memory
objects, event blocks, and dual queues", many microcoded.  The LYNX
implementation builds links out of shared memory — a mapped memory
object per link with message buffers and atomic flag bits, plus one
dual queue and event block per process for notifications — and relies
on *hints* throughout: "Both the dual queue names in link objects and
the notices on the dual queues themselves are considered to be hints.
Absolute information ... is known only to the owners of the ends
[and] the link object flags" (§5.2).

It is the smallest and fastest of the three implementations (§5.3):
2.4 ms per simple remote operation against Charlotte's 57 ms.

Failure semantics (§5.2, docs/FAULTS.md): "Processor failures are
currently not detected" — a hard `CrashMode.PROCESSOR` kill leaves
peers blocked forever (`tests/chrysalis/test_processor_recovery.py`).
The profile declares ``recovery_placement="runtime"``: only an
installed `RecoveryPolicy` bounds that hang, with a typed
`RecoveryExhausted` once the retry budget is spent.
"""

from repro.chrysalis.kernel import ChrysalisKernel, ChrysalisPort, DQ_BLOCKED
from repro.chrysalis.linkobject import LinkObject, NoticeCode, Notice
from repro.chrysalis.runtime import ChrysalisRuntime
from repro.chrysalis.cluster import ChrysalisCluster

__all__ = [
    "ChrysalisKernel",
    "ChrysalisPort",
    "DQ_BLOCKED",
    "LinkObject",
    "NoticeCode",
    "Notice",
    "ChrysalisRuntime",
    "ChrysalisCluster",
]
