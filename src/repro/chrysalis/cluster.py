"""The Butterfly/Chrysalis cluster: one shared-memory box."""

from __future__ import annotations

from repro.chrysalis.kernel import ChrysalisKernel
from repro.chrysalis.linkobject import LinkObject
from repro.chrysalis.runtime import ChrysalisRuntime
from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.links import EndRef
from repro.sim.failure import CrashMode
from repro.sim.network import SharedMemoryInterconnect


class ChrysalisCluster(ClusterBase):
    """A BBN Butterfly: 68000 processors around a switch (§5.1).

    Extra options
    -------------
    tuned : bool
        Use the §5.3 "30 to 40%" tuned cost profile (E5 ablation).
    """

    KIND = "chrysalis"

    def __init__(self, seed=0, costmodel=None, nodes: int = 128,
                 tuned: bool = False, profile: bool = False,
                 **engine_kw) -> None:
        self.tuned = tuned
        super().__init__(seed=seed, costmodel=costmodel, nodes=nodes,
                         profile=profile, **engine_kw)

    def _setup_hardware(self) -> None:
        costs = self.costmodel.chrysalis
        if self.tuned:
            costs = costs.tuned()
        #: the (possibly tuned) profile runtimes read
        self.chrysalis_costs = costs
        self.switch = SharedMemoryInterconnect(
            self.engine,
            metrics=self.metrics,
            rng=self.rng.child("switch"),
            per_byte_us=costs.switch_per_byte_us,
            hop_us=costs.switch_hop_us,
        )
        self.kernel = ChrysalisKernel(
            self.engine, self.metrics, costs, self.switch
        )

    def make_runtime(self, handle: ProcessHandle) -> ChrysalisRuntime:
        return ChrysalisRuntime(handle, self)

    def create_link(self, a: ProcessHandle, b: ProcessHandle) -> None:
        link = self.registry.alloc_link(a.name, b.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        # queues do not exist until rt_startup; a placeholder name is
        # patched there (initial links predate the processes, as when a
        # parent creates them on the children's behalf)
        obj = LinkObject(link, -1, -1)
        oid = self.kernel.make_object(obj)
        self.kernel.map_object(oid)
        self.kernel.map_object(oid)
        a.runtime.preload_end(ref_a)
        a.runtime.preload_link_object(ref_a, oid, obj)
        b.runtime.preload_end(ref_b)
        b.runtime.preload_link_object(ref_b, oid, obj)

    def on_crash(self, handle: ProcessHandle, mode: CrashMode) -> None:
        # TERMINATE/FAULT: the runtime's own clean-up runs ("Chrysalis
        # allows a process to catch exceptional conditions that might
        # cause premature termination ... so even erroneous processes
        # can clean up their links", §5.2).
        # PROCESSOR: "Processor failures are currently not detected."
        # — nothing happens; peers hang.  Deliberate.
        pass
