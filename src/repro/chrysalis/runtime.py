"""The LYNX run-time package for Chrysalis (paper §5.2).

"In the Butterfly implementation of LYNX, every process allocates a
single dual queue and event block through which to receive
notifications of messages sent and received.  A link is represented by
a memory object, mapped into the address spaces of the two connected
processes."

Message flow (one direction):

1. the sender *gathers* the message into the link object's buffer
   (a block copy through the switch), sets the FULL flag atomically,
   and enqueues a notice on the dual queue named for the far end —
   a **hint**;
2. the receiver, at a block point, dequeues the notice, checks that it
   owns the mentioned end *and* that the flag is really set ("If
   either check fails, the notice is discarded"), then scatters the
   buffer, clears the flag, and enqueues a CONSUMED notice back — which
   is what unblocks the sending coroutine (stop-and-wait, §2.1).

Because requests stay in the shared buffer until the receiving process
chooses to scatter them, there are **no unwanted messages** and no
retry/forbid/allow machinery; because the abort set lives in shared
memory, a server replying to an aborted request feels `RequestAborted`
with no extra acknowledgement traffic (§6 list items 2 and 4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Generator, Optional

from repro.analysis.costmodel import RuntimeCosts
from repro.chrysalis.kernel import ChrysalisPort, DQ_BLOCKED
from repro.chrysalis.linkobject import LinkObject, Notice, NoticeCode
from repro.core.exceptions import (
    LinkDestroyed,
    ProtocolViolation,
    RequestAborted,
)
from repro.core.links import EndLifecycle, EndRef, EndState
from repro.core.runtime import LynxRuntimeBase
from repro.core.wire import MsgKind, WireMessage
from repro.sim.futures import first_of


@dataclass
class _ChrysEnd:
    ref: EndRef
    oid: int
    obj: LinkObject
    #: messages waiting for their buffer slot to free, per kind
    pending_out: Dict[str, Deque[WireMessage]] = field(
        default_factory=lambda: {"req": deque(), "rep": deque()}
    )


def _kind_of(msg: WireMessage) -> str:
    return "req" if msg.kind is MsgKind.REQUEST else "rep"


class ChrysalisRuntime(LynxRuntimeBase):
    RUNTIME_NAME = "chrysalis"

    def __init__(self, handle, cluster) -> None:
        super().__init__(handle, cluster)
        self.port: ChrysalisPort = ChrysalisPort(cluster.kernel, self.name)
        self.cends: Dict[EndRef, _ChrysEnd] = {}
        self.my_queue: int = -1
        self.my_event: int = -1
        #: persistent parked event wait (survives internal wakeups)
        self._ewait = None
        #: enclosure objects mapped at scatter time, before the sender
        #: is told to unmap (§5.2's ordering; prevents a reclaim race
        #: when the far end has already unmapped)
        self._premapped: Dict[EndRef, tuple] = {}

    def runtime_costs(self) -> RuntimeCosts:
        return self.cluster.chrysalis_costs.runtime

    # ------------------------------------------------------------------
    def rt_startup(self):
        self.my_queue = yield self.port.make_queue()
        self.my_event = yield self.port.make_event()
        # the cluster may have preloaded initial links before our queue
        # existed; point their hints at us now
        for ce in self.cends.values():
            ce.obj.dq_names[ce.ref.side] = self.my_queue

    def _ce(self, ref: EndRef) -> _ChrysEnd:
        ce = self.cends.get(ref)
        if ce is None:
            raise ProtocolViolation(f"{self.name} has no link object for {ref}")
        return ce

    def preload_link_object(self, ref: EndRef, oid: int, obj: LinkObject) -> None:
        """Cluster-side installation of an initial link (the object is
        already mapped on our behalf)."""
        self.cends[ref] = _ChrysEnd(ref, oid, obj)

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def rt_send_request(self, es: EndState, msg: WireMessage):
        yield from self._send(es, msg)

    def rt_send_reply(self, es: EndState, msg: WireMessage):
        yield from self._send(es, msg)

    def _send(self, es: EndState, msg: WireMessage):
        ce = self._ce(es.ref)
        kind = _kind_of(msg)
        if ce.obj.destroyed:
            raise self.destroyed_error(ce.obj.destroy_reason)
        side = es.ref.side
        if ce.obj.is_full(kind, side):
            # the single buffer per direction is busy: park the message;
            # the CONSUMED notice will pump it (kernel-level flow
            # control, "no actual buffering of messages in transit")
            ce.pending_out[kind].append(msg)
            self.metrics.count("chrysalis.sends_parked")
            return
        yield from self._write_buffer(es, ce, msg, kind)

    def _write_buffer(self, es: EndState, ce: _ChrysEnd, msg: WireMessage,
                      kind: str):
        obj, side = ce.obj, es.ref.side
        if kind == "rep":
            aborted = obj.aborted[1 - side]
            if msg.reply_to in aborted:
                # shared memory tells us the requester gave up (§6):
                # the reply is never written
                yield self.port.atomic(lambda: aborted.discard(msg.reply_to))
                raise RequestAborted(
                    f"request {msg.reply_to} on {es.ref} was aborted"
                )
        if obj.destroyed:
            raise self.destroyed_error(obj.destroy_reason)
        if msg.kind is MsgKind.EXCEPTION and msg.enclosures:
            # bounced enclosures we pre-mapped but never adopted go
            # back unowned: release our mapping
            for ref in msg.enclosures:
                pre = self._premapped.pop(ref, None)
                if pre is not None:
                    yield self.port.unmap_object(pre[0])
        # gather: block copy through the switch
        copy_t0 = self.engine.now
        yield self.port.copy(msg.wire_size)
        copy_t1 = self.engine.now

        def write() -> None:
            obj.buffers[(kind, side)] = msg
            obj.set_full(kind, side)

        yield self.port.atomic(write)
        self.metrics.count(f"wire.messages.{msg.kind.value}")
        self.metrics.count("wire.bytes", msg.wire_size)
        # notify the far end through its dual-queue name — a hint that
        # may be stale after a move; flags are the ground truth (§5.2)
        target = obj.dq_names[1 - side]
        yield self.port.enqueue(
            target,
            Notice(ce.oid, es.ref.link,
                   NoticeCode.NEW_REQ if kind == "req" else NoticeCode.NEW_REP,
                   side, msg.seq),
        )
        if msg.span is not None:
            self.cluster.spans.emit(
                msg.span, "network", "switch-copy", self.name,
                copy_t0, copy_t1,
            )
            self.cluster.spans.emit(
                msg.span, "kernel", "flag-enqueue", self.name,
                copy_t1, self.engine.now,
            )

    # ------------------------------------------------------------------
    # receiving
    # ------------------------------------------------------------------
    def rt_request_available(self, es: EndState) -> bool:
        ce = self.cends.get(es.ref)
        if ce is None or ce.obj.destroyed:
            return False
        return ce.obj.is_full("req", 1 - es.ref.side)

    def rt_take_request(self, es: EndState):
        ce = self._ce(es.ref)
        obj, nside = ce.obj, 1 - es.ref.side
        if not obj.is_full("req", nside):
            return None
        msg = obj.buffers[("req", nside)]
        # scatter: block copy out of the shared buffer
        copy_t0 = self.engine.now
        yield self.port.copy(msg.wire_size)
        copy_t1 = self.engine.now
        yield from self._premap_enclosures(msg)

        def clear() -> None:
            obj.buffers[("req", nside)] = None
            obj.clear_full("req", nside)

        yield self.port.atomic(clear)
        yield self.port.enqueue(
            obj.dq_names[nside],
            Notice(ce.oid, es.ref.link, NoticeCode.CONSUMED_REQ,
                   es.ref.side, msg.seq),
        )
        if msg.span is not None:
            self.cluster.spans.emit(
                msg.span, "network", "switch-copy", self.name,
                copy_t0, copy_t1,
            )
            self.cluster.spans.emit(
                msg.span, "kernel", "flag-dequeue", self.name,
                copy_t1, self.engine.now,
            )
        return msg

    def _premap_enclosures(self, msg: WireMessage):
        """Map moved-in link objects BEFORE the sender learns of the
        receipt (and unmaps its side): the refcount never transits
        zero during a move."""
        for ref, meta in zip(msg.enclosures, msg.enclosure_meta):
            if ref in self._premapped:
                continue
            oid = meta["obj"]
            mapped = yield self.port.map_object(oid)
            self._premapped[ref] = (oid, mapped)

    # ------------------------------------------------------------------
    # the block point: dequeue the process's own dual queue
    # ------------------------------------------------------------------
    def rt_block_wait(self):
        if self._ewait is not None:
            if self._ewait.is_settled():
                notice, self._ewait = self._ewait.result(), None
                yield from self._on_notice(notice)
                return
            idx, value = yield first_of(
                self.engine, [self._ewait, self.wakeup_future()], "chrys-block"
            )
            if idx == 0:
                self._ewait = None
                yield from self._on_notice(value)
            return
        item = yield self.port.dequeue(self.my_queue, self.my_event)
        if item is DQ_BLOCKED:
            self._ewait = self.port.event_wait(self.my_event)
            idx, value = yield first_of(
                self.engine, [self._ewait, self.wakeup_future()], "chrys-block"
            )
            if idx == 0:
                self._ewait = None
                yield from self._on_notice(value)
        else:
            yield from self._on_notice(item)

    def _on_notice(self, notice: Notice):
        """Validate-then-act: "Whenever a process dequeues a notice from
        its dual queue it checks to see that it owns the mentioned link
        end and that the appropriate flag is set ... If either check
        fails, the notice is discarded" (§5.2)."""
        if not isinstance(notice, Notice):  # pragma: no cover - defensive
            return
        code = notice.code
        if code is NoticeCode.NEW_REQ:
            my_ref = EndRef(notice.link, 1 - notice.side)
            es = self.ends.get(my_ref)
            ce = self.cends.get(my_ref)
            if es is None or ce is None or not ce.obj.is_full("req", notice.side):
                self.metrics.count("chrysalis.stale_notices")
            # a valid NEW_REQ is just a wakeup: the flag is the truth
            # and the request is taken lazily at consumption time
            return
        if code is NoticeCode.NEW_REP:
            yield from self._take_reply(notice)
            return
        if code is NoticeCode.CONSUMED_REQ:
            yield from self._on_consumed(notice, "req")
            return
        if code is NoticeCode.CONSUMED_REP:
            yield from self._on_consumed(notice, "rep")
            return
        if code is NoticeCode.DESTROYED:
            yield from self._on_destroyed_notice(notice)

    def _take_reply(self, notice: Notice):
        my_ref = EndRef(notice.link, 1 - notice.side)
        es = self.ends.get(my_ref)
        ce = self.cends.get(my_ref)
        if es is None or ce is None or not ce.obj.is_full("rep", notice.side):
            self.metrics.count("chrysalis.stale_notices")
            return
        obj, nside = ce.obj, notice.side
        msg = obj.buffers[("rep", nside)]
        copy_t0 = self.engine.now
        yield self.port.copy(msg.wire_size)
        copy_t1 = self.engine.now
        yield from self._premap_enclosures(msg)

        def clear() -> None:
            obj.buffers[("rep", nside)] = None
            obj.clear_full("rep", nside)

        yield self.port.atomic(clear)
        yield self.port.enqueue(
            obj.dq_names[nside],
            Notice(ce.oid, my_ref.link, NoticeCode.CONSUMED_REP,
                   my_ref.side, msg.seq),
        )
        if msg.span is not None:
            self.cluster.spans.emit(
                msg.span, "network", "switch-copy", self.name,
                copy_t0, copy_t1,
            )
            self.cluster.spans.emit(
                msg.span, "kernel", "flag-dequeue", self.name,
                copy_t1, self.engine.now,
            )
        self.deliver_reply(my_ref, msg)

    def _on_consumed(self, notice: Notice, kind: str):
        my_ref = EndRef(notice.link, 1 - notice.side)
        es = self.ends.get(my_ref)
        ce = self.cends.get(my_ref)
        if es is None or ce is None:
            self.metrics.count("chrysalis.stale_notices")
            return
        msg = es.outgoing.get(notice.seq)
        if msg is not None:
            # moved ends are gone for good: unmap their objects
            for enc in msg.enclosures:
                ece = self.cends.pop(enc, None)
                if ece is not None:
                    yield self.port.unmap_object(ece.oid)
        self.notify_receipt(my_ref, notice.seq)
        # the buffer slot is free: pump a parked message
        if ce.pending_out[kind] and not ce.obj.is_full(kind, my_ref.side):
            nxt = ce.pending_out[kind].popleft()
            try:
                yield from self._write_buffer(es, ce, nxt, kind)
            except RequestAborted:
                self.notify_reply_aborted(my_ref, nxt.seq)
            except LinkDestroyed:
                self.notify_destroyed(my_ref, ce.obj.destroy_reason)

    def _on_destroyed_notice(self, notice: Notice):
        my_ref = EndRef(notice.link, 1 - notice.side)
        ce = self.cends.get(my_ref)
        if ce is None or not ce.obj.destroyed:
            self.metrics.count("chrysalis.stale_notices")
            return
        # messages of ours still sitting unconsumed in the buffers were
        # never received; reclaim their enclosures before letting go
        es = self.ends.get(my_ref)
        if es is not None:
            side = my_ref.side
            for kind in ("req", "rep"):
                parked = ce.obj.buffers.get((kind, side))
                if parked is not None and ce.obj.is_full(kind, side):
                    self._restore_enclosures(parked)
                for queued in ce.pending_out[kind]:
                    self._restore_enclosures(queued)
        # "it confirms the notice by checking it against the appropriate
        # flag and then unmaps the link object" (§5.2)
        self.cends.pop(my_ref, None)
        yield self.port.unmap_object(ce.oid)
        reason = ce.obj.destroy_reason or "link destroyed"
        self.notify_destroyed(my_ref, reason, crash="crash" in reason)

    # ------------------------------------------------------------------
    # link lifecycle
    # ------------------------------------------------------------------
    def rt_new_link(self):
        link = self.registry.alloc_link(self.name, self.name)
        obj = LinkObject(link, self.my_queue, self.my_queue)
        oid = yield self.port.make_object(obj)
        yield self.port.map_object(oid)  # side 0
        yield self.port.map_object(oid)  # side 1
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        self.cends[ref_a] = _ChrysEnd(ref_a, oid, obj)
        self.cends[ref_b] = _ChrysEnd(ref_b, oid, obj)
        return ref_a, ref_b

    def rt_destroy(self, es: EndState, reason: str):
        ce = self.cends.pop(es.ref, None)
        if ce is None:
            return
        obj = ce.obj
        if not obj.destroyed:
            why = self.crash_tagged(reason)

            def mark() -> None:
                obj.set_destroyed(why)

            yield self.port.atomic(mark)
            yield self.port.enqueue(
                obj.dq_names[1 - es.ref.side],
                Notice(ce.oid, es.ref.link, NoticeCode.DESTROYED,
                       es.ref.side, 0),
            )
        yield self.port.unmap_object(ce.oid)
        yield self.port.mark_reclaimable(ce.oid)

    def rt_abort_connect(self, es: EndState, waiter):
        ce = self._ce(es.ref)
        obj, side = ce.obj, es.ref.side
        # not yet written?
        for m in list(ce.pending_out["req"]):
            if m.seq == waiter.seq:
                ce.pending_out["req"].remove(m)
                return True
        # written but not yet scattered by the far process: withdraw it
        cur = obj.buffers[("req", side)]
        if (
            cur is not None
            and cur.seq == waiter.seq
            and obj.is_full("req", side)
        ):
            def clear() -> None:
                obj.buffers[("req", side)] = None
                obj.clear_full("req", side)

            yield self.port.atomic(clear)
            self.metrics.count("chrysalis.aborts_withdrawn")
            return True
        # already consumed: record the abort in shared memory so the
        # reply attempt feels RequestAborted (§6, item 4)
        yield self.port.atomic(lambda: obj.aborted[side].add(waiter.seq))
        self.metrics.count("chrysalis.aborts_flagged")
        return False

    # ------------------------------------------------------------------
    # moves
    # ------------------------------------------------------------------
    def rt_export_end(self, es: EndState) -> dict:
        return {"obj": self._ce(es.ref).oid}

    def rt_adopt_end(self, ref: EndRef, meta: dict):
        pre = self._premapped.pop(ref, None)
        if pre is not None:
            oid, obj = pre
        else:
            oid = meta["obj"]
            obj = yield self.port.map_object(oid)
        # update the dual-queue name (non-atomic wide write) BEFORE
        # inspecting the flags, so "changes are never overlooked" (§5.2)
        yield self.port.wide_write(
            lambda: obj.dq_names.__setitem__(ref.side, self.my_queue)
        )
        self.cends[ref] = _ChrysEnd(ref, oid, obj)
        nside = 1 - ref.side
        # "It ... then inspects the flags.  It enqueues notices on its
        # own dual queue for any of the flags that are set."
        if obj.is_full("req", nside):
            yield self.port.enqueue(
                self.my_queue,
                Notice(oid, ref.link, NoticeCode.NEW_REQ, nside, 0),
            )
        if obj.is_full("rep", nside):
            yield self.port.enqueue(
                self.my_queue,
                Notice(oid, ref.link, NoticeCode.NEW_REP, nside, 0),
            )
        if obj.destroyed:
            yield self.port.enqueue(
                self.my_queue,
                Notice(oid, ref.link, NoticeCode.DESTROYED, nside, 0),
            )
