"""JSONL trace streaming and shared JSON hygiene.

`TraceLog.to_jsonl` snapshots the (bounded) in-memory log;
`JsonlTraceWriter` instead subscribes to the log and appends each
event to a file as it is emitted, so arbitrarily long runs can be
exported without raising the log capacity.  Both produce the same
line format (docs/OBSERVABILITY.md, "Trace export").
"""

from __future__ import annotations

import json
import math
import os
from typing import IO, Optional, Union

from repro.sim.trace import TraceEvent, TraceLog, trace_header


def json_safe(value: object) -> object:
    """Recursively replace NaN/±Infinity with None and non-string dict
    keys with strings, so the result dumps as *strict* JSON (what
    ``json.dumps(allow_nan=True)`` would silently violate)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


class JsonlTraceWriter:
    """Streams `TraceEvent`s to a JSONL file as they happen.

    Usage::

        with JsonlTraceWriter("run.jsonl", cluster.trace):
            cluster.run_until_quiet()

    or, without the context manager, ``w = JsonlTraceWriter(path,
    trace)`` ... ``w.close()``.  The header line is written on open;
    `TraceLog.from_jsonl` / `load_trace` read the result back.
    """

    def __init__(
        self,
        destination: Union[str, os.PathLike, IO[str]],
        trace: Optional[TraceLog] = None,
        header: bool = True,
    ) -> None:
        if hasattr(destination, "write"):
            self._fh: IO[str] = destination  # type: ignore[assignment]
            self._owns_fh = False
        else:
            self._fh = open(destination, "w")
            self._owns_fh = True
        self.lines_written = 0
        self._trace: Optional[TraceLog] = None
        if header:
            cap = trace.capacity if trace is not None else None
            self._fh.write(json.dumps(trace_header(cap), sort_keys=True) + "\n")
        if trace is not None:
            self.attach(trace)

    def attach(self, trace: TraceLog) -> None:
        if self._trace is not None:
            raise ValueError("writer is already attached to a TraceLog")
        self._trace = trace
        trace.attach(self.write)

    def write(self, event: TraceEvent) -> None:
        self._fh.write(event.to_json() + "\n")
        self.lines_written += 1

    def close(self) -> None:
        if self._trace is not None:
            self._trace.detach(self.write)
            self._trace = None
        if self._owns_fh and not self._fh.closed:
            self._fh.close()

    def __enter__(self) -> "JsonlTraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_trace(path: Union[str, os.PathLike]) -> TraceLog:
    """Read a JSONL trace file back into a detached `TraceLog` (query
    and chart it; `emit` is disabled)."""
    with open(path) as fh:
        return TraceLog.from_jsonl(fh)
