"""Causal span tracing and critical-path latency attribution.

The paper's headline claim is an *attribution*: Charlotte's high-level
kernel primitives push work into the LYNX run-time package, while SODA
and Chrysalis let the runtime stay thin (figure 2 and the §6 lessons).
`repro.sim.trace.TraceLog` records flat events; this module ties every
reply back to the request that caused it so "which layer ate the
microseconds" is computed mechanically instead of eyeballed.

Vocabulary (documented in docs/CAUSALITY.md):

`SpanContext`
    the ``(trace_id, span_id, parent_id)`` triple minted by the core
    runtime at each ``connect`` entry and piggybacked on
    `repro.core.wire.WireMessage.span` so kernels and peer runtimes can
    open child spans of the same trace;
`SpanTracker`
    the per-cluster minting authority; completed spans are emitted as
    ``event="span"`` trace records with explicit ``t0``/``t1`` (a span
    may be emitted before simulated time reaches ``t1`` when its whole
    interval was scheduled in one engine callback);
`CausalGraph`
    ingests a `TraceLog` (live or reloaded from JSONL) and exposes the
    happens-before DAG, per-RPC span trees, critical-path extraction
    and the per-layer / per-host attribution tables;
exporters
    `chrome_trace` (Chrome trace-event JSON, loadable in Perfetto /
    ``chrome://tracing``) and `waterfall` (plain-text rendering in the
    spirit of `TraceLog.sequence_chart`).

Layer names: ``rpc`` (the root envelope, connect entry to waiter
resume), ``runtime`` (marshal/unmarshal work plus every gap of the root
interval no child span covers — syscall entry, coroutine dispatch,
completion waits), ``app`` (server time between request delivery and
``reply``), ``kernel`` (kernel CPU: fixed and per-byte message costs,
interrupts, flag/queue operations), ``network`` (ring/bus/switch
transit).

Critical-path extraction paints the root interval with clipped child
spans in ``(depth, layer priority, t0)`` order — deeper spans and
"harder" layers (runtime < app < kernel < network) win overlaps — and
attributes uncovered gaps to the runtime, so per-layer milliseconds sum
exactly to the measured round-trip time.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.sim.trace import TraceLog

#: every layer a span may be tagged with, in paint-priority order
#: (later wins overlaps at equal tree depth)
LAYERS = ("rpc", "runtime", "app", "kernel", "network")

_LAYER_PRIORITY = {name: i for i, name in enumerate(LAYERS)}

#: the layer uncovered critical-path gaps are attributed to (syscall
#: entry, coroutine dispatch, blocked-thread wakeups — all work the
#: language runtime performs between the spans it explicitly opens)
GAP_LAYER = "runtime"


@dataclass(frozen=True, slots=True)
class SpanContext:
    """The causal identity piggybacked on wire messages.  Slotted: one
    rides on every `WireMessage` when tracing is on.

    ``sampled`` is the head-based sampling decision, made once at
    `SpanTracker.new_trace` and inherited by every child, so a trace
    is recorded complete or not at all (`repro.obs.sampling`)."""

    trace_id: int
    span_id: int
    parent_id: Optional[int] = None
    sampled: bool = True


@dataclass(frozen=True, slots=True)
class Span:
    """One completed span, as parsed back out of a trace record."""

    trace_id: int
    span_id: int
    parent_id: Optional[int]
    layer: str
    name: str
    host: str
    t0: float
    t1: float

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "Span":
        parent = payload.get("parent")
        return cls(
            trace_id=int(payload["trace"]),
            span_id=int(payload["id"]),
            parent_id=int(parent) if parent is not None else None,
            layer=str(payload["layer"]),
            name=str(payload["name"]),
            host=str(payload["host"]),
            t0=float(payload["t0"]),
            t1=float(payload["t1"]),
        )


class SpanTracker:
    """Mints `SpanContext` ids for one cluster and emits completed
    spans into its `TraceLog` as ``event="span"`` records.

    When a `TraceSampler` is installed (``cluster.install_trace_sampling``)
    the keep/drop decision is made at `new_trace` and inherited by every
    child; unsampled spans are never recorded, and the drop/keep split is
    counted as ``obs.spans_sampled`` / ``obs.spans_dropped``."""

    def __init__(self, trace: TraceLog, metrics=None) -> None:
        self.trace = trace
        self.sampler = None
        self.metrics = metrics
        self._next_trace = 1
        self._next_span = 1

    # -- minting -------------------------------------------------------
    def new_trace(self) -> SpanContext:
        """A fresh root context (one per RPC, minted at connect entry).
        Trace ids advance whether or not the trace is sampled, so
        sampling never perturbs id assignment (same-seed runs sample
        identical trace ids at any rate)."""
        tid = self._next_trace
        self._next_trace += 1
        sampler = self.sampler
        if sampler is None:
            sampled = True
        else:
            sampled = sampler.sample(tid)
            if self.metrics is not None:
                self.metrics.count(
                    "obs.spans_sampled" if sampled else "obs.spans_dropped"
                )
        return SpanContext(tid, self._alloc_span(), None, sampled)

    def child(self, parent: SpanContext) -> SpanContext:
        return SpanContext(parent.trace_id, self._alloc_span(),
                           parent.span_id, parent.sampled)

    def _alloc_span(self) -> int:
        s = self._next_span
        self._next_span += 1
        return s

    # -- emission ------------------------------------------------------
    def emit(
        self,
        parent: SpanContext,
        layer: str,
        name: str,
        host: str,
        t0: float,
        t1: float,
    ) -> SpanContext:
        """Mint a child of ``parent`` and emit it, completed, covering
        ``[t0, t1]``.  Returns the child context (rarely needed)."""
        ctx = self.child(parent)
        self._record(ctx, layer, name, host, t0, t1)
        return ctx

    def emit_root(
        self,
        ctx: SpanContext,
        name: str,
        host: str,
        t0: float,
        t1: float,
    ) -> None:
        """Emit the root (``rpc`` layer) span of a finished trace."""
        self._record(ctx, "rpc", name, host, t0, t1)

    def _record(
        self,
        ctx: SpanContext,
        layer: str,
        name: str,
        host: str,
        t0: float,
        t1: float,
    ) -> None:
        if not ctx.sampled:
            return
        self.trace.emit(host, "span", span={
            "trace": ctx.trace_id,
            "id": ctx.span_id,
            "parent": ctx.parent_id,
            "layer": layer,
            "name": name,
            "host": host,
            "t0": t0,
            "t1": t1,
        })


#: one attributed segment of a critical path
@dataclass(frozen=True, slots=True)
class PathSegment:
    t0: float
    t1: float
    layer: str
    name: str
    host: str

    @property
    def duration(self) -> float:
        return self.t1 - self.t0


class CausalGraph:
    """The happens-before structure of every trace in a log."""

    def __init__(self, spans: Iterable[Span]) -> None:
        self.spans: List[Span] = sorted(
            spans, key=lambda s: (s.trace_id, s.t0, s.span_id)
        )
        self.by_trace: Dict[int, List[Span]] = {}
        for s in self.spans:
            self.by_trace.setdefault(s.trace_id, []).append(s)

    @classmethod
    def from_trace(cls, log: TraceLog) -> "CausalGraph":
        """Build from a live or detached (`TraceLog.from_jsonl`) log."""
        return cls(
            Span.from_payload(ev.span)
            for ev in log.events
            if ev.event == "span" and ev.span is not None
        )

    # -- structure queries ---------------------------------------------
    def traces(self) -> List[int]:
        return sorted(self.by_trace)

    def root(self, trace_id: int) -> Optional[Span]:
        roots = [s for s in self.by_trace.get(trace_id, ())
                 if s.parent_id is None]
        return roots[0] if roots else None

    def children(self, trace_id: int) -> Dict[int, List[Span]]:
        """``{parent span_id: [child spans]}`` for one trace."""
        kids: Dict[int, List[Span]] = {}
        for s in self.by_trace.get(trace_id, ()):
            if s.parent_id is not None:
                kids.setdefault(s.parent_id, []).append(s)
        return kids

    def orphans(self, trace_id: int) -> List[Span]:
        """Spans whose parent id names no span of the same trace."""
        ids = {s.span_id for s in self.by_trace.get(trace_id, ())}
        return [
            s for s in self.by_trace.get(trace_id, ())
            if s.parent_id is not None and s.parent_id not in ids
        ]

    def is_tree(self, trace_id: int) -> bool:
        """Exactly one root, no orphans, and parent edges acyclic."""
        spans = self.by_trace.get(trace_id, ())
        roots = [s for s in spans if s.parent_id is None]
        if len(roots) != 1 or self.orphans(trace_id):
            return False
        by_id = {s.span_id: s for s in spans}
        if len(by_id) != len(spans):
            return False  # duplicate span ids
        for s in spans:
            seen = set()
            cur: Optional[Span] = s
            while cur is not None and cur.parent_id is not None:
                if cur.span_id in seen:
                    return False
                seen.add(cur.span_id)
                cur = by_id.get(cur.parent_id)
        return True

    def depth(self, span: Span) -> int:
        by_id = {s.span_id: s for s in self.by_trace.get(span.trace_id, ())}
        d = 0
        cur: Optional[Span] = span
        seen = set()
        while cur is not None and cur.parent_id is not None:
            if cur.span_id in seen:  # cycle guard; is_tree reports it
                break
            seen.add(cur.span_id)
            cur = by_id.get(cur.parent_id)
            d += 1
        return d

    def happens_before(self, trace_id: int) -> List[Tuple[int, int]]:
        """The happens-before edges of one trace: every parent→child
        tree edge plus every temporal edge (a span that ends no later
        than another starts precedes it)."""
        spans = self.by_trace.get(trace_id, ())
        edges = [
            (s.parent_id, s.span_id) for s in spans
            if s.parent_id is not None
        ]
        ordered = sorted(spans, key=lambda s: (s.t0, s.t1))
        for i, a in enumerate(ordered):
            for b in ordered[i + 1:]:
                if a.t1 <= b.t0 and a.span_id != b.parent_id:
                    edges.append((a.span_id, b.span_id))
        return edges

    # -- critical path -------------------------------------------------
    def critical_path(self, trace_id: int) -> List[PathSegment]:
        """Attribute the root interval to layers by painting clipped
        descendant spans in ``(depth, layer priority, t0)`` order and
        filling uncovered gaps with `GAP_LAYER`.  Segments tile the
        root interval exactly, so their durations sum to the RTT."""
        root = self.root(trace_id)
        if root is None:
            return []
        spans = [s for s in self.by_trace.get(trace_id, ())
                 if s.parent_id is not None]
        clipped = []
        for s in spans:
            t0 = max(s.t0, root.t0)
            t1 = min(s.t1, root.t1)
            if t1 > t0:
                clipped.append((s, t0, t1))
        # elementary interval boundaries
        bounds = sorted({root.t0, root.t1}
                        | {t for _, t0, t1 in clipped for t in (t0, t1)})
        order = {
            s.span_id: (self.depth(s),
                        _LAYER_PRIORITY.get(s.layer, len(LAYERS)), s.t0)
            for s, _, _ in clipped
        }
        segments: List[PathSegment] = []
        for lo, hi in zip(bounds, bounds[1:]):
            covering = [s for s, t0, t1 in clipped if t0 <= lo and t1 >= hi]
            if covering:
                winner = max(covering, key=lambda s: order[s.span_id])
                seg = PathSegment(lo, hi, winner.layer, winner.name,
                                  winner.host)
            else:
                seg = PathSegment(lo, hi, GAP_LAYER, "dispatch", root.host)
            if (segments and segments[-1].layer == seg.layer
                    and segments[-1].name == seg.name
                    and segments[-1].host == seg.host):
                segments[-1] = PathSegment(
                    segments[-1].t0, seg.t1, seg.layer, seg.name, seg.host
                )
            else:
                segments.append(seg)
        return segments

    # -- aggregation ---------------------------------------------------
    def by_layer(
        self, trace_ids: Optional[Sequence[int]] = None
    ) -> Dict[str, float]:
        """Total critical-path milliseconds per layer across traces."""
        totals: Dict[str, float] = {}
        for tid in (trace_ids if trace_ids is not None else self.traces()):
            for seg in self.critical_path(tid):
                totals[seg.layer] = totals.get(seg.layer, 0.0) + seg.duration
        return totals

    def by_host(
        self, trace_ids: Optional[Sequence[int]] = None
    ) -> Dict[str, float]:
        """Total critical-path milliseconds per host across traces."""
        totals: Dict[str, float] = {}
        for tid in (trace_ids if trace_ids is not None else self.traces()):
            for seg in self.critical_path(tid):
                totals[seg.host] = totals.get(seg.host, 0.0) + seg.duration
        return totals

    def total_ms(
        self, trace_ids: Optional[Sequence[int]] = None
    ) -> float:
        """Summed root durations (== summed critical-path time)."""
        total = 0.0
        for tid in (trace_ids if trace_ids is not None else self.traces()):
            root = self.root(tid)
            if root is not None:
                total += root.duration
        return total


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def chrome_trace(
    graph: CausalGraph,
    trace_ids: Optional[Sequence[int]] = None,
) -> Dict[str, object]:
    """The Chrome trace-event document (JSON-object format) for the
    selected traces: one complete ("X") event per span, in microseconds,
    one pid per trace and one tid per host, with thread/process name
    metadata so Perfetto / ``chrome://tracing`` label the rows."""
    wanted = list(trace_ids if trace_ids is not None else graph.traces())
    events: List[Dict[str, object]] = []
    for tid in wanted:
        events.append({
            "ph": "M", "name": "process_name", "pid": tid, "tid": 0,
            "args": {"name": f"rpc trace {tid}"},
        })
        tids: Dict[str, int] = {}
        for span in graph.by_trace.get(tid, ()):
            host_tid = tids.setdefault(span.host, len(tids) + 1)
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": span.layer,
                "pid": tid,
                "tid": host_tid,
                "ts": span.t0 * 1000.0,   # simulated ms -> trace µs
                "dur": span.duration * 1000.0,
                "args": {
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "layer": span.layer,
                    "host": span.host,
                },
            })
        for host, host_tid in tids.items():
            events.append({
                "ph": "M", "name": "thread_name", "pid": tid,
                "tid": host_tid, "args": {"name": host},
            })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def chrome_trace_json(
    graph: CausalGraph,
    trace_ids: Optional[Sequence[int]] = None,
) -> str:
    return json.dumps(chrome_trace(graph, trace_ids), sort_keys=True,
                      allow_nan=False)


def waterfall(
    graph: CausalGraph,
    trace_id: int,
    width: int = 56,
) -> str:
    """A plain-text waterfall of one trace: each span indented by tree
    depth with a bar positioned proportionally inside the root
    interval, in the spirit of `TraceLog.sequence_chart`."""
    root = graph.root(trace_id)
    if root is None:
        return f"(trace {trace_id}: no root span)"
    spans = sorted(graph.by_trace.get(trace_id, ()),
                   key=lambda s: (s.t0, graph.depth(s), s.span_id))
    extent = root.duration or 1.0
    label_width = max(
        len("  " * graph.depth(s) + f"{s.layer}:{s.name}") for s in spans
    )
    lines = [
        f"trace {trace_id}  root={root.name}  host={root.host}  "
        f"{root.duration:.3f} ms"
    ]
    for s in spans:
        label = "  " * graph.depth(s) + f"{s.layer}:{s.name}"
        lo = max(0.0, min(1.0, (s.t0 - root.t0) / extent))
        hi = max(0.0, min(1.0, (s.t1 - root.t0) / extent))
        start = int(round(lo * width))
        end = max(start + 1, int(round(hi * width)))
        bar = " " * start + "█" * (end - start)
        lines.append(
            f"{label:<{label_width}} |{bar:<{width}}| "
            f"{s.duration:9.3f} ms  {s.host}"
        )
    return "\n".join(lines)
