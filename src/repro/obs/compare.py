"""repro.obs.compare — the BENCH_*.json perf-regression diff.

``python -m repro bench --compare OLD.json NEW.json`` turns two bench
documents (the `repro.bench` envelope written by
`repro.obs.bench.write_bench_json`) into one schema-versioned report:
per-metric deltas, each classified against a configurable regression
threshold, plus an overall verdict.  The CI ``perf`` job runs exactly
this against the committed baseline, so a PR that slows the hot path
fails before it merges (docs/PERFORMANCE.md).

Classification rules — derived from the metric *name*, so new bench
metrics are gated the moment they exist:

* ``*_ms`` metrics are latencies: **lower is better**.
* ``*_per_s`` / ``*_per_sec`` metrics are rates: **higher is better**.
* Everything else (counts, shares, ratios, ``crossover_bytes``) is
  reported as ``info`` and never gates.
* **Wall-clock metrics** (``engine_events_per_sec`` and the
  ``rpc_sim_wall_ms_*`` family — S1 measures real seconds) get their
  own, much looser ``--wall-threshold``: they are machine- and
  load-dependent, unlike every simulated quantity, which is exactly
  reproducible and gated tightly.
* When the two documents were produced in different modes
  (``quick`` differs), only *iteration-invariant* metrics still gate:
  simulated per-operation latencies (identical at any repetition
  count) and the wall-clock family.  Iteration-shaped quantities (the
  E14 partition window differs between modes, counts scale with the
  workload) degrade to ``info`` instead of raising false alarms —
  this is what lets CI compare its quick run against the committed
  full-mode baseline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

COMPARE_SCHEMA = "repro.bench-compare"
COMPARE_SCHEMA_VERSION = 1

#: default fractional regression threshold for simulated metrics
DEFAULT_THRESHOLD = 0.10
#: default threshold for wall-clock (machine-dependent) metrics
DEFAULT_WALL_THRESHOLD = 0.50

_BENCH_SCHEMA = "repro.bench"


class CompareError(ValueError):
    """A document could not be loaded or is not a repro.bench export."""


def load_bench_doc(path: str) -> Dict[str, Any]:
    """Read and structurally validate one BENCH_*.json document."""
    try:
        with open(path) as fh:
            doc = json.load(fh)
    except OSError as exc:
        raise CompareError(f"cannot read {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CompareError(f"{path} is not JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("schema") != _BENCH_SCHEMA:
        raise CompareError(
            f"{path} is not a {_BENCH_SCHEMA} document "
            f"(schema={doc.get('schema') if isinstance(doc, dict) else None!r})"
        )
    if not isinstance(doc.get("benches"), dict):
        raise CompareError(f"{path} has no 'benches' mapping")
    return doc


def is_wall_metric(name: str) -> bool:
    """True for metrics measured in real host time (the S1 family plus
    E15's ``obs_*_events_per_sec`` observability-overhead rates)."""
    return name.endswith("_events_per_sec") or name.startswith("rpc_sim_wall_ms_")


def metric_direction(name: str) -> str:
    """``"lower"`` / ``"higher"`` is better, or ``"info"`` (ungated)."""
    if name.endswith("_ms") or name.startswith("rpc_sim_wall_ms_"):
        return "lower"
    if name.endswith("_per_s") or name.endswith("_per_sec"):
        return "higher"
    return "info"


def _gates_in_mixed_mode(name: str) -> bool:
    """Iteration-invariant metrics: still gated when one document is
    ``--quick`` and the other is not."""
    if is_wall_metric(name):
        return True
    # simulated per-op latencies are repetition-count-independent; the
    # E14 chaos metrics are not (its partition window differs by mode)
    return name.endswith("_ms") and "goodput" not in name and "rtt" not in name


def _meta(doc: Dict[str, Any], path: str) -> Dict[str, Any]:
    return {
        "path": path,
        "git_rev": doc.get("git_rev"),
        "schema_version": doc.get("schema_version"),
        "quick": bool(doc.get("quick")),
        "timestamp": doc.get("timestamp"),
        "seed": doc.get("seed"),
    }


def compare_docs(
    old_doc: Dict[str, Any],
    new_doc: Dict[str, Any],
    old_path: str = "<old>",
    new_path: str = "<new>",
    threshold: float = DEFAULT_THRESHOLD,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
) -> Dict[str, Any]:
    """Diff two loaded bench documents into a compare report dict."""
    mixed_mode = bool(old_doc.get("quick")) != bool(new_doc.get("quick"))
    benches: Dict[str, Dict[str, Any]] = {}
    regressions: List[str] = []
    improvements: List[str] = []

    all_bids = sorted(set(old_doc["benches"]) | set(new_doc["benches"]))
    for bid in all_bids:
        old_metrics = old_doc["benches"].get(bid, {})
        new_metrics = new_doc["benches"].get(bid, {})
        rows: Dict[str, Any] = {}
        for name in sorted(set(old_metrics) | set(new_metrics)):
            old_v = old_metrics.get(name)
            new_v = new_metrics.get(name)
            direction = metric_direction(name)
            wall = is_wall_metric(name)
            gated = direction != "info" and (
                not mixed_mode or _gates_in_mixed_mode(name)
            )
            delta: Optional[float] = None
            status = "info"
            if (
                isinstance(old_v, (int, float))
                and isinstance(new_v, (int, float))
                and old_v
            ):
                delta = (new_v - old_v) / abs(old_v)
                if gated:
                    limit = wall_threshold if wall else threshold
                    # signed delta that is "worse" for this direction
                    worse = delta if direction == "lower" else -delta
                    if worse > limit:
                        status = "regression"
                        regressions.append(f"{bid}.{name}")
                    elif worse < -limit:
                        status = "improvement"
                        improvements.append(f"{bid}.{name}")
                    else:
                        status = "ok"
            rows[name] = {
                "old": old_v,
                "new": new_v,
                "delta_frac": delta,
                "direction": direction,
                "wall": wall,
                "status": status,
            }
        benches[bid] = rows

    return {
        "schema": COMPARE_SCHEMA,
        "schema_version": COMPARE_SCHEMA_VERSION,
        "old": _meta(old_doc, old_path),
        "new": _meta(new_doc, new_path),
        "threshold": threshold,
        "wall_threshold": wall_threshold,
        "mixed_mode": mixed_mode,
        "benches": benches,
        "regressions": regressions,
        "improvements": improvements,
        "status": "regression" if regressions else "ok",
    }


def compare_files(
    old_path: str,
    new_path: str,
    threshold: float = DEFAULT_THRESHOLD,
    wall_threshold: float = DEFAULT_WALL_THRESHOLD,
) -> Dict[str, Any]:
    """`load_bench_doc` both paths and `compare_docs` them."""
    return compare_docs(
        load_bench_doc(old_path),
        load_bench_doc(new_path),
        old_path=old_path,
        new_path=new_path,
        threshold=threshold,
        wall_threshold=wall_threshold,
    )


def _fmt(v: Any) -> str:
    if v is None:
        return "-"
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def render_report(report: Dict[str, Any], verbose: bool = False) -> str:
    """The human-readable report: gated rows (plus every non-``ok``
    row), one line per metric, then the verdict."""
    lines = [
        f"bench compare: {report['old']['path']} "
        f"(rev {str(report['old']['git_rev'])[:8]}, "
        f"{'quick' if report['old']['quick'] else 'full'}) -> "
        f"{report['new']['path']} "
        f"(rev {str(report['new']['git_rev'])[:8]}, "
        f"{'quick' if report['new']['quick'] else 'full'})",
        f"threshold {report['threshold']:.0%}"
        f" (wall-clock {report['wall_threshold']:.0%})"
        + (", mixed quick/full: iteration-shaped metrics not gated"
           if report["mixed_mode"] else ""),
        f"{'bench':<6}{'metric':<34}{'old':>12}{'new':>12}"
        f"{'delta':>9}  status",
    ]
    for bid, rows in report["benches"].items():
        for name, row in rows.items():
            interesting = row["status"] in ("regression", "improvement")
            if not verbose and not interesting and row["direction"] == "info":
                continue
            delta = row["delta_frac"]
            lines.append(
                f"{bid:<6}{name:<34}{_fmt(row['old']):>12}"
                f"{_fmt(row['new']):>12}"
                f"{('%+.1f%%' % (delta * 100)) if delta is not None else '-':>9}"
                f"  {row['status']}{' (wall)' if row['wall'] else ''}"
            )
    n_reg, n_imp = len(report["regressions"]), len(report["improvements"])
    lines.append(
        f"result: {report['status'].upper()} — "
        f"{n_reg} regression(s), {n_imp} improvement(s)"
    )
    for name in report["regressions"]:
        lines.append(f"  REGRESSED {name}")
    return "\n".join(lines)
