"""Deterministic head-based trace sampling.

At full rate every message in a million-client run mints spans and
trace events, so the tracing plane's memory and time grow linearly
with load.  `TraceSampler` makes the keep/drop decision *once per
trace*, at `SpanTracker.new_trace`, by hashing ``(seed, trace_id)``
with a splitmix64-style mixer and comparing against the configured
rate; children inherit the decision through `SpanContext.sampled`,
so a trace is always complete-or-absent (head-based sampling — no
torn causal graphs).

Because the decision is a pure function of the seed and the trace id
— and trace ids are minted deterministically by the simulator — two
same-seed runs sample *identical* trace ids, preserving the repo's
determinism contract (the DET lint rules and same-seed tests).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1

#: odd constants from the splitmix64 reference mixer
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _mix64(x: int) -> int:
    """splitmix64 finaliser: a cheap, well-distributed 64-bit mixer."""
    x = x & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


class TraceSampler:
    """Seeded head-based sampler: keep a trace iff
    ``mix(seed, trace_id) < rate * 2**64``.

    ``rate`` is clamped to [0, 1]; 1.0 keeps everything (the default
    cluster behaviour when no sampler is installed) and 0.0 drops
    everything (the obs-off mode of the E15 overhead bench).  The
    decision is order-independent: it depends only on the trace id,
    not on how many traces were sampled before it.
    """

    __slots__ = ("rate", "seed", "_threshold")

    def __init__(self, rate: float, seed: int = 0) -> None:
        self.rate = min(1.0, max(0.0, rate))
        self.seed = seed
        self._threshold = int(self.rate * float(1 << 64))

    def sample(self, trace_id: int) -> bool:
        if self._threshold >= (1 << 64):
            return True
        if self._threshold <= 0:
            return False
        key = ((self.seed + 1) * _GAMMA + trace_id) & _MASK64
        return _mix64(key) < self._threshold

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<TraceSampler rate={self.rate} seed={self.seed}>"
