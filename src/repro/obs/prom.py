"""Prometheus text-format rendering of a `MetricSet`.

The simulator's dotted counter names (``kernel.calls.Send``) map onto
Prometheus metric names by replacing every character outside
``[a-zA-Z0-9_:]`` with ``_`` and prefixing a namespace, so::

    kernel.calls.Send       ->  repro_kernel_calls_Send
    rpc.roundtrip (latency) ->  repro_rpc_roundtrip_ms summary
                                repro_rpc_roundtrip_ms_hist histogram

Counters render as ``counter`` samples; latency recorders render as
``summary`` metrics in milliseconds with p50/p99 quantiles plus the
conventional ``_sum`` and ``_count`` series, and — since the
streaming-histogram rework — as a ``histogram`` with cumulative
``le`` buckets straight out of `StreamingHistogram.bucket_bounds`,
so a scraper can aggregate percentiles across clusters the same way
`merge()` does in-process.

Values are emitted at full precision: integral floats as integers,
everything else via ``repr`` (shortest round-trip form), and
non-finite values as Prometheus' ``NaN``/``+Inf``/``-Inf`` spellings
— the old ``%g`` formatting silently rounded large counters
(1234567 became ``1.23457e+06``).

When two dotted names collide after sanitising (``a.b`` and ``a_b``),
the colliding series are disambiguated with a ``name`` label carrying
the original dotted name, and the ``# TYPE`` line is emitted once per
Prometheus metric name — duplicate ``# TYPE`` lines are a text-format
violation most scrapers reject.
"""

from __future__ import annotations

import math
import re
from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (metrics
    # imports repro.obs.hist, so this module must not import metrics
    # back at runtime)
    from repro.sim.metrics import LatencyRecorder, MetricSet

_UNSAFE = re.compile(r"[^a-zA-Z0-9_:]")

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def sanitize_name(name: str) -> str:
    """A dotted counter name as a legal Prometheus metric-name part."""
    out = _UNSAFE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def escape_label_value(value: object) -> str:
    """A label value with backslash, quote and newline escaped per the
    text exposition format."""
    return "".join(_LABEL_ESCAPES.get(ch, ch) for ch in str(value))


def _sample(value: float) -> str:
    """Full-precision sample rendering: integral floats as integers,
    non-finite values in Prometheus spelling, the rest via ``repr``
    (the shortest string that round-trips the float exactly)."""
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        if value.is_integer() and abs(value) < 1e15:
            return str(int(value))
        return repr(value)
    return str(value)


def _grouped(names, namespace: str, suffix: str = ""):
    """Group original dotted names by their sanitised Prometheus name;
    collisions get a disambiguating ``name`` label."""
    groups: Dict[str, List[str]] = defaultdict(list)
    for name in sorted(names):
        groups[f"{namespace}_{sanitize_name(name)}{suffix}"].append(name)
    return sorted(groups.items())


def _labels(extra: Dict[str, object]) -> str:
    if not extra:
        return ""
    body = ",".join(
        f'{k}="{escape_label_value(v)}"' for k, v in extra.items()
    )
    return "{" + body + "}"


def _histogram_lines(metric: str, rec: "LatencyRecorder",
                     label: Dict[str, object]) -> List[str]:
    """Cumulative-``le`` histogram series from the recorder's
    streaming buckets (upper bounds in ms, ``+Inf`` closing)."""
    lines = []
    cum = 0
    for upper, count in rec.hist.bucket_bounds():
        cum += count
        lines.append(
            f"{metric}_bucket{_labels(dict(label, le=_sample(float(upper))))}"
            f" {cum}"
        )
    lines.append(
        f"{metric}_bucket{_labels(dict(label, le='+Inf'))} {rec.count}"
    )
    lines.append(f"{metric}_sum{_labels(label)} {_sample(rec.total)}")
    lines.append(f"{metric}_count{_labels(label)} {rec.count}")
    return lines


def prometheus_text(metrics: "MetricSet", namespace: str = "repro") -> str:
    """Render every counter and latency recorder in the Prometheus
    text exposition format (version 0.0.4)."""
    lines = []
    counters = metrics.counters()
    for metric, names in _grouped(counters, namespace):
        lines.append(f"# TYPE {metric} counter")
        collided = len(names) > 1
        for name in names:
            label = {"name": name} if collided else {}
            lines.append(f"{metric}{_labels(label)} {_sample(counters[name])}")
    recorders = metrics.latencies()
    for metric, names in _grouped(recorders, namespace, "_ms"):
        lines.append(f"# TYPE {metric} summary")
        collided = len(names) > 1
        for name in names:
            rec = recorders[name]
            label = {"name": name} if collided else {}
            for q in (0.5, 0.99):
                qlabel = dict(label, quantile=q)
                lines.append(
                    f"{metric}{_labels(qlabel)} {_sample(rec.percentile(q * 100))}"
                )
            lines.append(f"{metric}_sum{_labels(label)} {_sample(rec.total)}")
            lines.append(f"{metric}_count{_labels(label)} {rec.count}")
    for metric, names in _grouped(recorders, namespace, "_ms_hist"):
        lines.append(f"# TYPE {metric} histogram")
        collided = len(names) > 1
        for name in names:
            rec = recorders[name]
            label = {"name": name} if collided else {}
            lines.extend(_histogram_lines(metric, rec, label))
    return "\n".join(lines) + "\n"
