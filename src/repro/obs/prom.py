"""Prometheus text-format rendering of a `MetricSet`.

The simulator's dotted counter names (``kernel.calls.Send``) map onto
Prometheus metric names by replacing every character outside
``[a-zA-Z0-9_:]`` with ``_`` and prefixing a namespace, so::

    kernel.calls.Send       ->  repro_kernel_calls_Send
    rpc.roundtrip (latency) ->  repro_rpc_roundtrip_ms summary

Counters render as ``counter`` samples; latency recorders render as
``summary`` metrics in milliseconds with p50/p99 quantiles plus the
conventional ``_sum`` and ``_count`` series.
"""

from __future__ import annotations

import re

from repro.sim.metrics import MetricSet

_UNSAFE = re.compile(r"[^a-zA-Z0-9_:]")


def sanitize_name(name: str) -> str:
    """A dotted counter name as a legal Prometheus metric-name part."""
    out = _UNSAFE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _sample(value: float) -> str:
    return f"{value:g}"


def prometheus_text(metrics: MetricSet, namespace: str = "repro") -> str:
    """Render every counter and latency recorder in the Prometheus
    text exposition format (version 0.0.4)."""
    lines = []
    for name, value in metrics.counters().items():
        metric = f"{namespace}_{sanitize_name(name)}"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_sample(value)}")
    for name, rec in sorted(metrics.latencies().items()):
        metric = f"{namespace}_{sanitize_name(name)}_ms"
        lines.append(f"# TYPE {metric} summary")
        for q in (0.5, 0.99):
            lines.append(
                f'{metric}{{quantile="{q}"}} {_sample(rec.percentile(q * 100))}'
            )
        lines.append(f"{metric}_sum {_sample(rec.total)}")
        lines.append(f"{metric}_count {rec.count}")
    return "\n".join(lines) + "\n"
