"""Log-bucketed streaming histograms (HdrHistogram-style).

`LatencyRecorder` used to keep every raw sample so it could answer
percentile queries exactly; at the scales the ROADMAP aims for
(100k–1M simulated clients) that is O(n) memory and O(n log n) per
query, and the telemetry plane would dominate the measurement.
`StreamingHistogram` replaces raw retention with geometric buckets:

* ``record`` is O(1): a log to find the bucket, a dict increment;
* memory is O(occupied buckets), independent of sample count —
  a bucket per ~2% of dynamic range, so ~1.2k buckets cover
  nanoseconds to hours;
* ``percentile`` interpolates between bucket representatives
  (geometric bucket centres clamped to the exact observed
  ``[min, max]``), so the relative error is bounded by
  ``sqrt(growth) - 1`` — under 1% at the default growth of 1.02;
* ``merge`` sums bucket counts, so per-shard histograms aggregate
  into exactly the histogram a single stream would have produced:
  percentile output after a merge is bit-for-bit identical to
  single-stream recording (the E15 bench machine-checks this).

Values may be negative (bucket indices mirror around a small
``[-base, base)`` zero bucket); exact ``count``/``total``/``min``/
``max`` are kept alongside, so means stay exact — only the shape
between min and max is quantised.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

#: geometric bucket growth factor; the percentile error bound is
#: ``sqrt(GROWTH) - 1`` (~0.995% — the "≤1% by construction" contract)
DEFAULT_GROWTH = 1.02

#: values with ``|v| < DEFAULT_BASE`` (ms) share the zero bucket
DEFAULT_BASE = 1e-6


class StreamingHistogram:
    """Fixed-precision streaming histogram over sparse log buckets."""

    __slots__ = ("growth", "base", "_log_growth", "buckets",
                 "count", "total", "_min", "_max")

    def __init__(self, growth: float = DEFAULT_GROWTH,
                 base: float = DEFAULT_BASE) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if base <= 0.0:
            raise ValueError(f"base must be > 0, got {base}")
        self.growth = growth
        self.base = base
        self._log_growth = math.log(growth)
        #: bucket index -> sample count; index 0 is ``(-base, base)``,
        #: positive index i is ``[base*g^(i-1), base*g^i)`` and negative
        #: indices mirror it below zero
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # recording ---------------------------------------------------------
    def _index(self, value: float) -> int:
        mag = abs(value)
        if mag < self.base:
            return 0
        i = int(math.log(mag / self.base) / self._log_growth) + 1
        # float error in the log can land one bucket off; correct so
        # base*g^(i-1) <= mag < base*g^i holds exactly
        while mag >= self.base * self.growth ** i:
            i += 1
        while mag < self.base * self.growth ** (i - 1):
            i -= 1
        return i if value >= 0 else -i

    def record(self, value: float, n: int = 1) -> None:
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += n
        self.total += value * n
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    # queries -----------------------------------------------------------
    @property
    def minimum(self) -> float:
        return self._min if self.count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self.count else math.nan

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    @property
    def bucket_count(self) -> int:
        """Occupied buckets — the memory footprint, O(1) per ~2% of range."""
        return len(self.buckets)

    @property
    def relative_error(self) -> float:
        """Worst-case relative quantisation error: ``sqrt(growth) - 1``."""
        return math.sqrt(self.growth) - 1.0

    def _representative(self, idx: int) -> float:
        """Geometric centre of bucket ``idx``, clamped into the exact
        observed range so min/max/single-sample queries stay exact."""
        if idx == 0:
            rep = 0.0
        elif idx > 0:
            rep = self.base * self.growth ** (idx - 0.5)
        else:
            rep = -(self.base * self.growth ** (-idx - 0.5))
        if rep < self._min:
            rep = self._min
        if rep > self._max:
            rep = self._max
        return rep

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile over bucket representatives,
        ``p`` in [0, 100]; same rank convention as sorted raw samples."""
        if not self.count:
            return math.nan
        if self.count == 1 or p <= 0.0:
            return self._min
        if p >= 100.0:
            return self._max
        rank = (p / 100.0) * (self.count - 1)
        lo = int(math.floor(rank))
        hi = int(math.ceil(rank))
        if lo < 0:
            lo = hi = 0
        if hi > self.count - 1:
            lo = hi = self.count - 1
        items = sorted(self.buckets.items())
        v_lo = self._value_at(items, lo)
        if hi == lo:
            return v_lo
        v_hi = self._value_at(items, hi)
        frac = rank - lo
        return v_lo * (1 - frac) + v_hi * frac

    def _value_at(self, items: List[Tuple[int, int]], k: int) -> float:
        seen = 0
        for idx, n in items:
            seen += n
            if k < seen:
                return self._representative(idx)
        return self._representative(items[-1][0])

    def percentiles(self, ps: Iterable[float]) -> Dict[float, float]:
        return {p: self.percentile(p) for p in ps}

    # aggregation -------------------------------------------------------
    def merge(self, other: "StreamingHistogram") -> "StreamingHistogram":
        """Fold ``other`` into this histogram (cross-shard aggregation).

        Buckets are summed, so the merged percentile output is
        bit-for-bit what a single stream recording all samples would
        return — the property that makes per-shard telemetry viable.
        """
        if (other.growth, other.base) != (self.growth, self.base):
            raise ValueError(
                f"cannot merge histograms with different geometry: "
                f"({self.growth}, {self.base}) vs ({other.growth}, {other.base})"
            )
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        if other._min < self._min:
            self._min = other._min
        if other._max > self._max:
            self._max = other._max
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form (flight-recorder snapshots, exposition)."""
        return {
            "growth": self.growth,
            "base": self.base,
            "count": self.count,
            "total": self.total,
            "min": self._min if self.count else None,
            "max": self._max if self.count else None,
            "buckets": {str(k): v for k, v in sorted(self.buckets.items())},
        }

    def bucket_bounds(self) -> List[Tuple[float, int]]:
        """``(upper_bound, count)`` per occupied bucket in value order —
        the cumulative-``le`` series the Prometheus exposition renders."""
        out = []
        for idx, n in sorted(self.buckets.items()):
            if idx == 0:
                upper = self.base
            elif idx > 0:
                upper = self.base * self.growth ** idx
            else:
                upper = -(self.base * self.growth ** (-idx - 1))
            out.append((upper, n))
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<StreamingHistogram n={self.count} "
                f"buckets={len(self.buckets)} growth={self.growth}>")
