"""Windowed time-series over simulated time.

Counters and latency summaries are cumulative: they answer "how did
the whole run go" but not "what happened *during* the partition".
`TimeSeries` buckets every counter increment and latency sample into
fixed windows of simulated milliseconds, keeping only constant-size
aggregates per ``(window, metric)`` — count, sum, min, max — so long
chaos runs can be read as goodput/latency/fault curves
(``python -m repro top``) without retaining raw samples.

Windows are keyed by ``int(engine.now // window_ms)``; simulated
time makes the series deterministic for a seed.  Memory is bounded:
only the most recent ``retain`` windows are kept (older windows are
evicted in order), which is the same ring-buffer discipline the
flight recorder applies to trace events.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple


class WindowStat:
    """Constant-size aggregate of one metric inside one window."""

    __slots__ = ("count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0.0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def add(self, value: float) -> None:
        self.count += 1.0
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def merge(self, other: "WindowStat") -> "WindowStat":
        """Fold another aggregate of the same (window, metric) in —
        exact: counts and sums add, extrema take the min/max."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum
        return self

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
        }


class TimeSeries:
    """Per-window metric aggregates on the simulated clock.

    Bind to a cluster with ``cluster.install_timeseries(window_ms)``
    (which routes `MetricSet.count` increments and every latency
    sample here) or feed it directly via `record_count` /
    `record_latency`.
    """

    def __init__(self, engine, window_ms: float = 100.0,
                 retain: int = 512) -> None:
        if window_ms <= 0:
            raise ValueError(f"window_ms must be > 0, got {window_ms}")
        self.engine = engine
        self.window_ms = window_ms
        self.retain = retain
        #: window index -> {metric name -> WindowStat}
        self._windows: "OrderedDict[int, Dict[str, WindowStat]]" = OrderedDict()

    # ingestion ---------------------------------------------------------
    def _bucket(self, name: str) -> WindowStat:
        w = int(self.engine.now // self.window_ms)
        stats = self._windows.get(w)
        if stats is None:
            stats = self._windows[w] = {}
            while len(self._windows) > self.retain:
                self._windows.popitem(last=False)
        stat = stats.get(name)
        if stat is None:
            stat = stats[name] = WindowStat()
        return stat

    def record_count(self, name: str, n: float = 1.0) -> None:
        self._bucket(name).add(n)

    def record_latency(self, name: str, value: float) -> None:
        self._bucket(name).add(value)

    # queries -----------------------------------------------------------
    def windows(self) -> List[int]:
        return sorted(self._windows)

    def window_span(self, w: int) -> Tuple[float, float]:
        """``[t0, t1)`` of window ``w`` in simulated ms."""
        return (w * self.window_ms, (w + 1) * self.window_ms)

    def get(self, w: int, name: str) -> Optional[WindowStat]:
        return self._windows.get(w, {}).get(name)

    def value(self, w: int, name: str) -> float:
        """Counter total of ``name`` in window ``w`` (0.0 when absent)."""
        stat = self.get(w, name)
        return stat.total if stat is not None else 0.0

    def rate_per_sec(self, w: int, name: str) -> float:
        """Counter total of ``name`` in ``w`` scaled to events/second
        of simulated time — the per-window goodput the `top` report
        prints."""
        return self.value(w, name) * 1000.0 / self.window_ms

    def series(self, name: str) -> List[Tuple[int, WindowStat]]:
        """``(window, stat)`` for every window that saw ``name``."""
        out = []
        for w in sorted(self._windows):
            stat = self._windows[w].get(name)
            if stat is not None:
                out.append((w, stat))
        return out

    def names(self) -> List[str]:
        seen = set()
        for stats in self._windows.values():
            seen.update(stats)
        return sorted(seen)

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready nested view: ``{window: {name: summary}}`` with
        stringified window keys, sorted — stable across same-seed runs."""
        return {
            str(w): {
                name: stat.summary()
                for name, stat in sorted(self._windows[w].items())
            }
            for w in sorted(self._windows)
        }

    # merging -----------------------------------------------------------
    def merge(self, other: "TimeSeries") -> "TimeSeries":
        """Fold another series with the same ``window_ms`` in: aligned
        windows merge stat-by-stat (`WindowStat.merge`), missing
        windows copy over.  This is how per-shard series from a
        sharded run become one rendering — `repro top` merges *before*
        windowing output instead of showing only shard 0."""
        if other.window_ms != self.window_ms:
            raise ValueError(
                f"cannot merge series with window_ms={other.window_ms} "
                f"into window_ms={self.window_ms}"
            )
        for w in sorted(other._windows):
            stats = self._windows.get(w)
            if stats is None:
                stats = self._windows[w] = {}
            for name, stat in other._windows[w].items():
                mine = stats.get(name)
                if mine is None:
                    mine = stats[name] = WindowStat()
                mine.merge(stat)
        while len(self._windows) > self.retain:
            self._windows.popitem(last=False)
        return self

    @classmethod
    def merged(cls, series: List["TimeSeries"]) -> Optional["TimeSeries"]:
        """A fresh series holding the merge of ``series`` (which are
        left untouched).  None for an empty list."""
        if not series:
            return None
        out = cls(None, series[0].window_ms,
                  retain=max(s.retain for s in series))
        for s in series:
            out.merge(s)
        # window keys may interleave across shards: keep eviction order
        # chronological, like a single-engine series
        out._windows = OrderedDict(sorted(out._windows.items()))
        return out

    def __len__(self) -> int:
        return len(self._windows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TimeSeries windows={len(self._windows)} "
                f"window_ms={self.window_ms}>")
