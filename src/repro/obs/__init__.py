"""repro.obs — the structured observability layer.

The simulation substrate already *collects* everything the paper's
argument needs (`repro.sim.trace.TraceLog`, `repro.sim.metrics.
MetricSet`, `Engine(profile=True)`); this package makes it *machine
readable* so the perf trajectory of the repository can be tracked
across PRs:

* `JsonlTraceWriter` / `load_trace` — stream or round-trip traces as
  JSON Lines (`TraceLog.to_jsonl` / `TraceLog.from_jsonl`);
* `prometheus_text` — render a `MetricSet` in the Prometheus text
  exposition format;
* `run_benches` / `write_bench_json` — the unified benchmark runner
  behind ``python -m repro bench``, producing the ``BENCH_*.json``
  regression baseline;
* `SpanContext` / `SpanTracker` / `CausalGraph` / `chrome_trace` /
  `waterfall` — causal span tracing with critical-path latency
  attribution across the three kernels (``python -m repro trace``,
  docs/CAUSALITY.md);
* `StreamingHistogram` — log-bucketed fixed-precision latency
  histograms (O(1) record, O(buckets) memory, mergeable across
  shards) backing every `LatencyRecorder` percentile;
* `TraceSampler` — seeded head-based trace sampling
  (``cluster.install_trace_sampling``), same-seed runs sample
  identical trace ids;
* `FlightRecorder` — a ring buffer of recent trace events that dumps
  a bounded JSONL black box on recovery exhaustion, partition entry
  or crash (``python -m repro flight``);
* `TimeSeries` — per-window goodput/latency/fault aggregates on
  simulated time (``python -m repro top``);
* `json_safe` — NaN/Infinity-free JSON value sanitising shared by all
  exporters.

Formats and vocabularies are documented in docs/OBSERVABILITY.md.
"""

from repro.obs.bench import (
    BENCH_IDS,
    BENCH_SCHEMA_VERSION,
    DEFAULT_BENCH_FILENAME,
    run_benches,
    write_bench_json,
)
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FLIGHT_SCHEMA_VERSION,
    TRIGGER_EVENTS,
    FlightRecorder,
    describe_flight_dump,
    load_flight_dump,
)
from repro.obs.hist import StreamingHistogram
from repro.obs.sampling import TraceSampler
from repro.obs.timeseries import TimeSeries, WindowStat
from repro.obs.causal import (
    GAP_LAYER,
    LAYERS,
    CausalGraph,
    PathSegment,
    Span,
    SpanContext,
    SpanTracker,
    chrome_trace,
    chrome_trace_json,
    waterfall,
)
from repro.obs.jsonl import JsonlTraceWriter, json_safe, load_trace
from repro.obs.prom import prometheus_text

__all__ = [
    "BENCH_IDS",
    "BENCH_SCHEMA_VERSION",
    "CausalGraph",
    "DEFAULT_BENCH_FILENAME",
    "FLIGHT_SCHEMA",
    "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder",
    "GAP_LAYER",
    "JsonlTraceWriter",
    "LAYERS",
    "PathSegment",
    "Span",
    "SpanContext",
    "SpanTracker",
    "StreamingHistogram",
    "TRIGGER_EVENTS",
    "TimeSeries",
    "TraceSampler",
    "WindowStat",
    "chrome_trace",
    "chrome_trace_json",
    "describe_flight_dump",
    "json_safe",
    "load_flight_dump",
    "load_trace",
    "prometheus_text",
    "run_benches",
    "waterfall",
    "write_bench_json",
]
