"""repro.obs — the structured observability layer.

The simulation substrate already *collects* everything the paper's
argument needs (`repro.sim.trace.TraceLog`, `repro.sim.metrics.
MetricSet`, `Engine(profile=True)`); this package makes it *machine
readable* so the perf trajectory of the repository can be tracked
across PRs:

* `JsonlTraceWriter` / `load_trace` — stream or round-trip traces as
  JSON Lines (`TraceLog.to_jsonl` / `TraceLog.from_jsonl`);
* `prometheus_text` — render a `MetricSet` in the Prometheus text
  exposition format;
* `run_benches` / `write_bench_json` — the unified benchmark runner
  behind ``python -m repro bench``, producing the ``BENCH_*.json``
  regression baseline;
* `SpanContext` / `SpanTracker` / `CausalGraph` / `chrome_trace` /
  `waterfall` — causal span tracing with critical-path latency
  attribution across the three kernels (``python -m repro trace``,
  docs/CAUSALITY.md);
* `json_safe` — NaN/Infinity-free JSON value sanitising shared by all
  exporters.

Formats and vocabularies are documented in docs/OBSERVABILITY.md.
"""

from repro.obs.bench import (
    BENCH_IDS,
    BENCH_SCHEMA_VERSION,
    DEFAULT_BENCH_FILENAME,
    run_benches,
    write_bench_json,
)
from repro.obs.causal import (
    GAP_LAYER,
    LAYERS,
    CausalGraph,
    PathSegment,
    Span,
    SpanContext,
    SpanTracker,
    chrome_trace,
    chrome_trace_json,
    waterfall,
)
from repro.obs.jsonl import JsonlTraceWriter, json_safe, load_trace
from repro.obs.prom import prometheus_text

__all__ = [
    "BENCH_IDS",
    "BENCH_SCHEMA_VERSION",
    "CausalGraph",
    "DEFAULT_BENCH_FILENAME",
    "GAP_LAYER",
    "JsonlTraceWriter",
    "LAYERS",
    "PathSegment",
    "Span",
    "SpanContext",
    "SpanTracker",
    "chrome_trace",
    "chrome_trace_json",
    "json_safe",
    "load_trace",
    "prometheus_text",
    "run_benches",
    "waterfall",
    "write_bench_json",
]
