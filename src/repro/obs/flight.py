"""Flight recorder: a black box for distributed-run post-mortems.

Long chaos runs mostly end in one of two ways: fine, or wrecked by
an event (a partition window opening, a kernel crash, a
`RecoveryExhausted`) whose *lead-up* is exactly what the full trace
log has already rotated past by the time anyone looks.  The
`FlightRecorder` subscribes to the cluster's `TraceLog` (the same
sink interface `JsonlTraceWriter` uses), keeps the most recent
``capacity`` events in a ring buffer, and on a trigger event dumps a
bounded JSONL "black box" — stream header, a full metric snapshot,
then the ring — to disk.  Dumps are capped (``max_dumps``) so a
crash storm cannot fill the disk.

Trigger events (`TRIGGER_EVENTS`) are emitted by the recovery layer
(``recovery-exhausted`` in `LynxRuntimeBase._recovery_fire`), the
fault plane (``partition-entered`` when a `FaultPlan` window opens)
and the cluster (``crash`` in `crash_process`).  Everything in a
dump is simulated-time data, so same-seed runs produce identical
black boxes — they are diffable artifacts, not wall-clock logs.

``python -m repro flight DUMP...`` pretty-prints dumps;
``python -m repro flight --demo`` produces one from a quick chaos
run.  The dump schema is validated by ``benchmarks/check_schema.py``
and documented in docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import json
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro.obs.jsonl import json_safe
from repro.sim.trace import TraceEvent, TraceLog

#: first-line schema tag of every dump
FLIGHT_SCHEMA = "repro.flight"
FLIGHT_SCHEMA_VERSION = 1

#: the trace events that trip an automatic dump
TRIGGER_EVENTS = ("recovery-exhausted", "partition-entered", "crash")


class FlightRecorder:
    """Ring buffer of recent trace events that dumps on trigger events.

    Construct via ``cluster.install_flight_recorder(out_dir)`` — that
    wires the cluster's trace log, metrics, engine, kernel kind and
    seed through — or standalone against any `TraceLog`.
    """

    def __init__(
        self,
        trace: TraceLog,
        out_dir: Union[str, Path],
        metrics=None,
        engine=None,
        capacity: int = 256,
        max_dumps: int = 4,
        kind: str = "",
        seed: Optional[int] = None,
        trigger_events: Tuple[str, ...] = TRIGGER_EVENTS,
        prefix: str = "flight",
    ) -> None:
        self.trace = trace
        self.out_dir = Path(out_dir)
        self.metrics = metrics
        self.engine = engine
        self.capacity = capacity
        self.max_dumps = max_dumps
        self.kind = kind
        self.seed = seed
        self.trigger_events = frozenset(trigger_events)
        self.prefix = prefix
        self.ring: Deque[TraceEvent] = deque(maxlen=capacity)
        #: paths written so far, oldest first
        self.dumps: List[Path] = []
        trace.attach(self._on_event)

    def close(self) -> None:
        """Unsubscribe from the trace log (idempotent)."""
        try:
            self.trace.detach(self._on_event)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    def _on_event(self, ev: TraceEvent) -> None:
        self.ring.append(ev)
        if ev.event in self.trigger_events and len(self.dumps) < self.max_dumps:
            self.dump(reason=ev.event)

    def header(self, reason: str) -> Dict[str, object]:
        head: Dict[str, object] = {
            "schema": FLIGHT_SCHEMA,
            "version": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "t": self.engine.now if self.engine is not None
                 else (self.ring[-1].time if self.ring else 0.0),
            "kind": self.kind,
            "seed": self.seed,
            "capacity": self.capacity,
            "events": len(self.ring),
        }
        return head

    def dump(self, reason: str = "manual") -> Path:
        """Write one bounded black box and return its path.

        Layout: line 1 the header, line 2 a ``{"metrics": snapshot}``
        record (when a `MetricSet` is wired), then the ring buffer's
        events oldest-first in `TraceEvent.to_record` form.
        """
        self.out_dir.mkdir(parents=True, exist_ok=True)
        path = self.out_dir / f"{self.prefix}-{len(self.dumps):03d}-{reason}.jsonl"
        lines = [json.dumps(json_safe(self.header(reason)), sort_keys=True)]
        if self.metrics is not None:
            lines.append(json.dumps(
                {"metrics": json_safe(self.metrics.snapshot())},
                sort_keys=True,
            ))
        lines.extend(ev.to_json() for ev in self.ring)
        path.write_text("\n".join(lines) + "\n")
        self.dumps.append(path)
        if self.metrics is not None:
            self.metrics.count("obs.flight_dumps")
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<FlightRecorder ring={len(self.ring)}/{self.capacity} "
                f"dumps={len(self.dumps)}>")


# ----------------------------------------------------------------------
# dump inspection (the `python -m repro flight` CLI)
# ----------------------------------------------------------------------
def load_flight_dump(
    path: Union[str, Path],
) -> Tuple[Dict[str, object], Dict[str, object], List[TraceEvent]]:
    """Parse a dump back into ``(header, metrics_snapshot, events)``.

    Raises ValueError when the first line is not a `FLIGHT_SCHEMA`
    header at a known version — the same strictness
    `TraceLog.from_jsonl` applies to trace streams.
    """
    lines = [ln for ln in Path(path).read_text().splitlines() if ln.strip()]
    if not lines:
        raise ValueError(f"{path}: empty flight dump")
    header = json.loads(lines[0])
    if header.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(f"{path}: not a {FLIGHT_SCHEMA} dump")
    if header.get("version") != FLIGHT_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported {FLIGHT_SCHEMA} version "
            f"{header.get('version')!r}"
        )
    metrics: Dict[str, object] = {}
    events: List[TraceEvent] = []
    for line in lines[1:]:
        rec = json.loads(line)
        if "metrics" in rec and "t" not in rec:
            metrics = rec["metrics"]
        else:
            events.append(TraceEvent.from_record(rec))
    return header, metrics, events


def describe_flight_dump(path: Union[str, Path], tail: int = 20) -> str:
    """Human-readable rendering of one dump: header summary, headline
    counters, the RPC latency line, and the last ``tail`` events."""
    header, metrics, events = load_flight_dump(path)
    out = [
        f"flight dump {Path(path).name}",
        f"  reason   {header.get('reason')}",
        f"  sim time {header.get('t'):.3f} ms   kernel {header.get('kind') or '?'}"
        f"   seed {header.get('seed')}",
        f"  events   {len(events)} (ring capacity {header.get('capacity')})",
    ]
    counters = metrics.get("counters", {}) if metrics else {}
    headline = {
        k: v for k, v in counters.items()
        if k.startswith(("faults.", "recovery.", "cluster.", "obs."))
    }
    if headline:
        out.append("  counters:")
        for k, v in sorted(headline.items()):
            out.append(f"    {k:<32} {v:g}")
    latencies = metrics.get("latencies", {}) if metrics else {}
    rtt = latencies.get("rpc.roundtrip")
    if rtt:
        out.append(
            "  rpc.roundtrip: "
            f"n={rtt['count']:g} mean={rtt['mean']:.3f} "
            f"p99={rtt['p99']:.3f} max={rtt['max']:.3f} ms"
        )
    if events:
        out.append(f"  last {min(tail, len(events))} events:")
        shown = events[-tail:]
        time_width = max(10, *(len(f"{ev.time:.3f}") for ev in shown))
        actor_width = max(12, *(len(ev.actor) for ev in shown))
        event_width = max(16, *(len(ev.event) for ev in shown))
        for ev in shown:
            out.append("    " + ev.describe(time_width, actor_width, event_width))
    return "\n".join(out)
