"""The unified benchmark runner behind ``python -m repro bench``.

Re-runs the headline workloads — E1 (Charlotte latency plus the
``ideal`` zero-protocol lower bound), E4 (the SODA crossover sweep),
E5 (Chrysalis latency + tuning), E13 (causal critical-path layer
attribution, repro.obs.causal), E14 (goodput and tail latency under a
seeded network partition, repro.workloads.chaos), E15 (the telemetry
plane's own overhead: events/sec with observability off / sampled /
full, plus streaming-histogram accuracy and merge checks), E16 (the
engine-scaling experiment: 100k+ simulated clients on every
`repro.sim.backends` engine, events/sec by shard count, with the
cross-backend determinism digests machine-checked), E17 (the
real-transport backend: measured wall-clock RTT/throughput over real
OS sockets side by side with the simulator's shapes, exactly-once
machine-checked) and S1 (simulator wall-clock throughput) — and
writes one machine-readable ``BENCH_*.json`` so the performance
trajectory of the repository is tracked across PRs.  The
authoritative assertion-carrying harness remains
``pytest benchmarks/ --benchmark-only``; this runner trades
its tables for a stable schema::

    {"schema": "repro.bench", "schema_version": 7,
     "seed": 0, "git_rev": "<rev|unknown>",
     "timestamp": "<UTC ISO-8601>", "quick": false,
     "benches": {bench_id: {metric: value}}}

E13, E14 and S1 iterate the kernel registry (`repro.core.ports`), and
E16 iterates the sim-backend registry (`repro.sim.backends`), so a
newly registered backend shows up in the document without edits
here.  ``schema_version`` history: 3 = the ``ideal`` backend joined
every per-kernel metric family; 4 = the E14 fault-recovery bench
joined ``benches``; 5 = the E15 observability-overhead bench joined
``benches`` and latency percentiles became streaming-histogram
derived (`repro.obs.hist`); 6 = the E16 sharded-engine scaling bench
joined ``benches``; 7 = the E17 real-transport bench joined
``benches`` and the ``real-asyncio`` backend joined the per-kernel
metric families (its keys are ``None`` on hosts that forbid sockets,
so the document schema never varies).

Simulated quantities are deterministic for a seed; the ``s1.*``,
``obs_*_events_per_sec``, ``scale_*_events_per_sec`` and
``net_meas_*`` metrics are real time and machine-dependent by
design.  ``--quick`` shrinks iteration counts so the whole run is
test-suite cheap (the schema is unchanged).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
# S1 measures *real* wall-clock throughput and the export is stamped
# with real UTC time by design (see module doc), hence the allows:
from datetime import datetime, timezone  # repro: allow[DET001]
from time import perf_counter  # repro: allow[DET001] — S1 wall clock
from typing import Callable, Dict, Iterable, Optional, Tuple

from repro.obs.jsonl import json_safe

BENCH_SCHEMA_VERSION = 7
DEFAULT_BENCH_FILENAME = "BENCH_PR9.json"

E4_SWEEP = (0, 256, 512, 1024, 1536, 2048, 3072, 4096)
E4_SWEEP_QUICK = (0, 1024, 2048)


def bench_e1(seed: int = 0, quick: bool = False) -> Dict[str, float]:
    """E1 — §3.3 Charlotte latencies, LYNX vs raw kernel calls, with
    the ``ideal`` backend's zero-protocol-overhead RPC as the floor
    every real kernel is measured against."""
    from repro.workloads.rpc import raw_charlotte_rpc, run_rpc_workload

    count = 2 if quick else 5
    raw0 = raw_charlotte_rpc(0, count=count, seed=seed)
    raw1000 = raw_charlotte_rpc(1000, count=count, seed=seed)
    lynx0 = run_rpc_workload("charlotte", 0, count=count, seed=seed)
    lynx1000 = run_rpc_workload("charlotte", 1000, count=count, seed=seed)
    ideal0 = run_rpc_workload("ideal", 0, count=count, seed=seed)
    ideal1000 = run_rpc_workload("ideal", 1000, count=count, seed=seed)
    return {
        "raw_rpc0_ms": raw0.mean_ms,
        "raw_rpc1000_ms": raw1000.mean_ms,
        "lynx_rpc0_ms": lynx0.mean_ms,
        "lynx_rpc1000_ms": lynx1000.mean_ms,
        "lynx_rpc0_wire_msgs": lynx0.messages,
        "lynx_rpc0_wire_bytes": lynx0.wire_bytes,
        "ideal_rpc0_ms": ideal0.mean_ms,
        "ideal_rpc1000_ms": ideal1000.mean_ms,
    }


def bench_e4(seed: int = 0, quick: bool = False) -> Dict[str, float]:
    """E4 — §4.3 fn.2: the Charlotte/SODA payload sweep and crossover."""
    from repro.workloads.rpc import run_rpc_workload

    sweep = E4_SWEEP_QUICK if quick else E4_SWEEP
    count = 2 if quick else 3
    out: Dict[str, float] = {}
    crossover = None
    prev_winner = None
    for nbytes in sweep:
        c = run_rpc_workload("charlotte", nbytes, count=count, seed=seed)
        s = run_rpc_workload("soda", nbytes, count=count, seed=seed)
        out[f"charlotte_rpc{nbytes}_ms"] = c.mean_ms
        out[f"soda_rpc{nbytes}_ms"] = s.mean_ms
        winner = "soda" if s.mean_ms < c.mean_ms else "charlotte"
        if prev_winner == "soda" and winner == "charlotte":
            crossover = nbytes
        prev_winner = winner
    out["small_msg_speedup"] = out["charlotte_rpc0_ms"] / out["soda_rpc0_ms"]
    out["crossover_bytes"] = crossover  # None when the sweep never flips
    return out


def bench_e5(seed: int = 0, quick: bool = False) -> Dict[str, float]:
    """E5 — §5.3 Chrysalis latencies, the tuned profile, and the
    order-of-magnitude Charlotte ratio."""
    from repro.workloads.rpc import run_rpc_workload

    count = 2 if quick else 5
    c0 = run_rpc_workload("chrysalis", 0, count=count, seed=seed).mean_ms
    c1000 = run_rpc_workload("chrysalis", 1000, count=count, seed=seed).mean_ms
    t0 = run_rpc_workload("chrysalis", 0, count=count, seed=seed,
                          tuned=True).mean_ms
    t1000 = run_rpc_workload("chrysalis", 1000, count=count, seed=seed,
                             tuned=True).mean_ms
    char0 = run_rpc_workload("charlotte", 0, count=count, seed=seed).mean_ms
    return {
        "lynx_rpc0_ms": c0,
        "lynx_rpc1000_ms": c1000,
        "tuned_rpc0_ms": t0,
        "tuned_rpc1000_ms": t1000,
        "tuned_improvement_rpc0": (c0 - t0) / c0,
        "charlotte_ratio_rpc0": char0 / c0,
    }


def bench_s1(
    seed: int = 0, quick: bool = False, sim_backend: Optional[str] = None
) -> Dict[str, float]:
    """S1 — substrate wall-clock throughput: bare engine dispatch plus
    a full RPC conversation simulated on every registered kernel.  Real
    seconds, so these values are machine-dependent (unlike everything
    else here).  ``sim_backend`` selects which `repro.sim.backends`
    engine executes the dispatch loop and the cluster conversations
    (default: ``global``)."""
    from repro.core.api import (
        BYTES,
        Operation,
        Proc,
        kernel_profile,
        make_cluster,
        registered_kernels,
    )
    from repro.net import TransportUnavailable
    from repro.sim.backends import make_engine

    backend = sim_backend or "global"
    ticks = 2_000 if quick else 20_000
    eng = make_engine(backend)
    fired = {"n": 0}

    def tick():
        fired["n"] += 1
        if fired["n"] < ticks:
            eng.schedule(0.5, tick)

    t0 = perf_counter()
    eng.schedule(0.0, tick)
    eng.run()
    engine_wall = perf_counter() - t0

    out: Dict[str, float] = {
        "engine_events": float(fired["n"]),
        "engine_events_per_sec": fired["n"] / engine_wall if engine_wall else 0.0,
    }

    ECHO = Operation("echo", (BYTES,), (BYTES,))
    rounds = 10 if quick else 50

    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            for _ in range(rounds):
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            for _ in range(rounds):
                yield from ctx.connect(end, ECHO, (b"x" * 64,))

    for kind in registered_kernels():
        # real-transport backends have exactly one event order; a
        # non-global *simulation* engine does not apply to them, and a
        # host that forbids sockets cannot run them — either way the
        # keys stay None so the document schema never varies
        if kernel_profile(kind).real_transport and backend != "global":
            out[f"rpc_sim_wall_ms_{kind}"] = None
            out[f"rpc_sim_events_{kind}"] = None
            continue
        try:
            cluster = make_cluster(kind, seed=seed, sim_backend=backend)
        except TransportUnavailable:
            out[f"rpc_sim_wall_ms_{kind}"] = None
            out[f"rpc_sim_events_{kind}"] = None
            continue
        s = cluster.spawn(Server(), "server")
        c = cluster.spawn(Client(), "client")
        cluster.create_link(s, c)
        t0 = perf_counter()
        cluster.run_until_quiet(max_ms=1e7)
        wall = perf_counter() - t0
        if not cluster.all_finished:
            raise RuntimeError(f"S1 rpc conversation hung on {kind}")
        out[f"rpc_sim_wall_ms_{kind}"] = wall * 1e3
        out[f"rpc_sim_events_{kind}"] = float(cluster.engine.events_fired)
        cluster.close()
    return out


def bench_e13(seed: int = 0, quick: bool = False) -> Dict[str, float]:
    """E13 — causal critical-path layer attribution (figure 2, §6):
    where does one round trip of the 0-byte RPC spend its time on each
    kernel?  Reports per-layer critical-path milliseconds per RPC and
    the runtime/kernel shares of the round trip.

    The paper's claim machine-checked here: Charlotte's high-level
    primitives force the most work into the *runtime* layer — its
    runtime milliseconds strictly exceed SODA's and Chrysalis's.
    (Shares run the other way: Chrysalis is so fast that its small
    runtime cost dominates its tiny total.)  The registry-driven loop
    includes the ``ideal`` backend, whose total is the attribution
    floor: everything above it is protocol, not semantics.
    """
    from repro.core.api import registered_kernels
    from repro.net import TransportUnavailable
    from repro.obs.causal import CausalGraph
    from repro.workloads.rpc import run_rpc_workload

    count = 2 if quick else 5
    out: Dict[str, float] = {}
    for kind in registered_kernels():
        try:
            r = run_rpc_workload(kind, 0, count=count, seed=seed)
        except TransportUnavailable:
            for layer in ("runtime", "kernel", "network", "app"):
                out[f"{kind}_{layer}_ms"] = None
            out[f"{kind}_total_ms"] = None
            out[f"{kind}_runtime_share"] = None
            out[f"{kind}_kernel_share"] = None
            continue
        graph = CausalGraph.from_trace(r.trace)
        tids = graph.traces()[1:]  # drop the workload's warm-up trip
        layers = graph.by_layer(tids)
        total = graph.total_ms(tids)
        n = max(len(tids), 1)
        for layer in ("runtime", "kernel", "network", "app"):
            out[f"{kind}_{layer}_ms"] = layers.get(layer, 0.0) / n
        out[f"{kind}_total_ms"] = total / n
        out[f"{kind}_runtime_share"] = (
            layers.get("runtime", 0.0) / total if total else 0.0
        )
        out[f"{kind}_kernel_share"] = (
            layers.get("kernel", 0.0) / total if total else 0.0
        )
    return out


def bench_e14(seed: int = 0, quick: bool = False) -> Dict[str, float]:
    """E14 — goodput and tail latency under a seeded network partition
    (repro.workloads.chaos; §2.2 vs §4.1).

    Every registered backend runs the same paced failover workload
    twice — fault-free, then under the identical seeded
    `partitioned_plan` — and reports goodput, retention
    (faulted/clean), completion, failover and retry counts, and tail
    latency.  Simulated quantities, so the whole family is
    deterministic for a seed.

    The paper's claim machine-checked here: a backend whose recovery
    lives in the *runtime* (hints — the `RecoveryPolicy` surfaces
    `RecoveryExhausted` and the client fails over) rides out the
    partition with strictly higher goodput than one whose kernel hides
    the loss by retransmitting invisibly (absolutes — the client has
    no signal, so it blocks for the whole outage and its tail latency
    stretches to the window length).
    """
    from repro.core.api import kernel_profile, registered_kernels
    from repro.net import TransportUnavailable
    from repro.workloads.chaos import (
        chaos_policy,
        partitioned_plan,
        run_chaos_workload,
    )

    count = 12 if quick else 30
    out: Dict[str, float] = {}
    placements: Dict[str, Tuple[str, float]] = {}
    for kind in registered_kernels():
        try:
            clean = run_chaos_workload(kind, count=count, seed=seed)
            faulted = run_chaos_workload(
                kind, count=count, seed=seed,
                plan=partitioned_plan(quick), policy=chaos_policy(),
            )
        except TransportUnavailable:
            for metric in ("clean_goodput_per_s", "faulted_goodput_per_s",
                           "goodput_retention", "completed", "failed_over",
                           "max_rtt_ms", "p99_rtt_ms", "retries",
                           "kernel_retransmits"):
                out[f"{kind}_{metric}"] = None
            continue
        out[f"{kind}_clean_goodput_per_s"] = clean.goodput_per_s
        out[f"{kind}_faulted_goodput_per_s"] = faulted.goodput_per_s
        out[f"{kind}_goodput_retention"] = (
            faulted.goodput_per_s / clean.goodput_per_s
            if clean.goodput_per_s else 0.0
        )
        out[f"{kind}_completed"] = float(faulted.completed)
        out[f"{kind}_failed_over"] = float(faulted.failed_over)
        out[f"{kind}_max_rtt_ms"] = faulted.max_rtt_ms
        out[f"{kind}_p99_rtt_ms"] = faulted.p99_ms
        out[f"{kind}_retries"] = faulted.counters.get("recovery.retries", 0.0)
        out[f"{kind}_kernel_retransmits"] = faulted.counters.get(
            "faults.kernel_retransmits", 0.0
        )
        placement = kernel_profile(kind).capabilities.recovery_placement
        placements[kind] = (placement, faulted.goodput_per_s)
    absolutes = {k: g for k, (p, g) in placements.items() if p == "kernel"}
    hints = {k: g for k, (p, g) in placements.items() if p == "runtime"}
    for ak, ag in absolutes.items():
        for hk, hg in hints.items():
            if hg <= ag:
                raise AssertionError(
                    f"E14: expected {hk} (runtime recovery) to out-goodput "
                    f"{ak} (kernel recovery) under partition; "
                    f"got {hg:.2f} <= {ag:.2f} ops/s"
                )
    return out


def bench_e15(seed: int = 0, quick: bool = False) -> Dict[str, float]:
    """E15 — the telemetry plane's own overhead and accuracy.

    Before cross-kernel overhead comparisons mean anything at scale,
    the observation machinery's own cost must be measured and bounded
    (Argyroulis, PAPERS.md).  Three checks, all machine-enforced:

    * **Overhead**: the same echo-RPC conversation runs on the
      ``ideal`` backend with observability *off* (trace disabled,
      sampling rate 0), *sampled* (head-based 1/16 trace sampling) and
      *full* (every trace kept), reporting best-of-``repeats``
      events/sec each.  Sampled tracing must cost **<10%** versus off
      — otherwise always-on tracing at scale is a lie.  The gate uses
      the *minimum* same-repeat wall ratio across interleaved repeats:
      shared CI boxes show multi-second load bursts far larger than
      the effect under test, and the cleanest window is the only
      measurement they cannot contaminate (full tracing's true ~25%
      cost still trips it in every window).
    * **Histogram accuracy**: 100k seeded lognormal-ish samples into a
      `StreamingHistogram`; p50/p90/p99/p99.9 must each land within
      1% of the exact sorted-sample percentile while occupying
      O(buckets) ≪ O(samples) memory.
    * **Merge fidelity**: the same samples striped across 8 shard
      histograms and merged must reproduce the single-stream
      percentiles bit-for-bit — the property that makes per-shard
      telemetry aggregation exact.

    The ``obs_*_events_per_sec`` values are real wall-clock rates
    (machine-dependent, like S1); every ``hist_*`` metric is
    deterministic for a seed.
    """
    import gc
    import math

    from repro.core.api import BYTES, Operation, Proc, make_cluster
    from repro.obs.hist import StreamingHistogram
    from repro.sim.rng import SimRandom

    rounds = 600 if quick else 2400
    repeats = 6
    ECHO = Operation("echo", (BYTES,), (BYTES,))

    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            for _ in range(rounds):
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            for _ in range(rounds):
                yield from ctx.connect(end, ECHO, (b"x" * 64,))

    def run_once(setup) -> Tuple[float, object]:
        cluster = make_cluster("ideal", seed=seed)
        setup(cluster)
        s = cluster.spawn(Server(), "server")
        c = cluster.spawn(Client(), "client")
        cluster.create_link(s, c)
        t0 = perf_counter()
        cluster.run_until_quiet(max_ms=1e9)
        wall = perf_counter() - t0
        if not cluster.all_finished:
            raise RuntimeError("E15 rpc conversation hung")
        rate = cluster.engine.events_fired / wall if wall else 0.0
        return rate, cluster

    def obs_off(cluster):
        cluster.trace.enabled = False
        cluster.install_trace_sampling(0.0)

    def obs_sampled(cluster):
        cluster.install_trace_sampling(1.0 / 16.0)

    def obs_full(cluster):
        pass  # the default: every trace kept

    out: Dict[str, float] = {}
    sampled_counts = []
    modes = (("off", obs_off), ("sampled", obs_sampled), ("full", obs_full))
    rates: Dict[str, List[float]] = {mode: [] for mode, _ in modes}
    # one untimed warm-up per mode, then interleaved timed repeats: the
    # mode order rotates each repeat and the heap is collected before
    # (never during) each timed run, so allocator/GC drift and cache
    # warm-up hit every mode equally — the overhead *ratio* is what
    # matters, not the absolute rate
    for _, setup in modes:
        run_once(setup)
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for r in range(repeats):
            shift = r % len(modes)
            for mode, setup in modes[shift:] + modes[:shift]:
                gc.collect()
                rate, cluster = run_once(setup)
                rates[mode].append(rate)
                if mode == "sampled":
                    sampled_counts.append(
                        (cluster.metrics.get("obs.spans_sampled"),
                         cluster.metrics.get("obs.spans_dropped"))
                    )
    finally:
        if gc_was_enabled:
            gc.enable()
    for mode, _ in modes:
        out[f"obs_{mode}_events_per_sec"] = max(rates[mode])
    if len(set(sampled_counts)) != 1:
        raise AssertionError(
            f"E15: head-based sampling must be deterministic per seed; "
            f"repeats disagreed: {sampled_counts}"
        )
    kept, dropped = sampled_counts[0]
    out["sampled_trace_frac"] = (
        kept / (kept + dropped) if (kept + dropped) else 0.0
    )

    # the cleanest-window estimator: same-repeat runs sit ~100 ms apart,
    # so each repeat yields one nearly-paired wall ratio; the minimum
    # over repeats is the measurement least contaminated by load bursts
    def min_overhead(mode: str) -> float:
        return min(
            off_r / mode_r - 1.0 if mode_r else math.inf
            for off_r, mode_r in zip(rates["off"], rates[mode])
        )

    out["sampled_overhead_frac"] = min_overhead("sampled")
    out["full_overhead_frac"] = min_overhead("full")
    if not out["sampled_overhead_frac"] < 0.10:
        raise AssertionError(
            f"E15: sampled tracing must cost <10% vs obs-off in its "
            f"cleanest window; measured "
            f"{out['sampled_overhead_frac'] * 100:.1f}% "
            f"(off best {out['obs_off_events_per_sec']:,.0f} vs sampled "
            f"best {out['obs_sampled_events_per_sec']:,.0f} events/s)"
        )

    # -- histogram accuracy + merge fidelity (deterministic) -----------
    n_samples = 100_000
    rng = SimRandom(seed, "bench/e15-hist")
    samples = [math.exp(rng.uniform(0.0, 8.0)) for _ in range(n_samples)]
    single = StreamingHistogram()
    shards = [StreamingHistogram() for _ in range(8)]
    for i, v in enumerate(samples):
        single.record(v)
        shards[i % 8].record(v)
    merged = shards[0]
    for sh in shards[1:]:
        merged.merge(sh)

    exact = sorted(samples)

    def exact_pct(p: float) -> float:
        rank = (p / 100.0) * (len(exact) - 1)
        lo, hi = int(math.floor(rank)), int(math.ceil(rank))
        if lo == hi:
            return exact[lo]
        frac = rank - lo
        return exact[lo] * (1 - frac) + exact[hi] * frac

    max_err = 0.0
    for p in (50.0, 90.0, 99.0, 99.9):
        truth = exact_pct(p)
        err = abs(single.percentile(p) - truth) / truth
        if err > max_err:
            max_err = err
    if not max_err <= 0.01:
        raise AssertionError(
            f"E15: histogram percentile error {max_err * 100:.3f}% exceeds "
            f"the 1% construction bound at {n_samples} samples"
        )
    for p in (1.0, 25.0, 50.0, 75.0, 90.0, 99.0, 99.9, 100.0):
        if merged.percentile(p) != single.percentile(p):
            raise AssertionError(
                f"E15: merged shards disagree with single-stream at "
                f"p{p}: {merged.percentile(p)!r} != {single.percentile(p)!r}"
            )
    if not single.bucket_count * 100 <= n_samples:
        raise AssertionError(
            f"E15: {single.bucket_count} buckets for {n_samples} samples — "
            f"memory is not O(buckets)"
        )
    out["hist_samples"] = float(n_samples)
    out["hist_buckets"] = float(single.bucket_count)
    out["hist_max_err_frac"] = max_err
    out["hist_merge_bitexact"] = 1.0
    return out


def bench_e16(
    seed: int = 0, quick: bool = False, sim_backend: Optional[str] = None
) -> Dict[str, float]:
    """E16 — engine scaling: the `repro.workloads.scale` population
    (100k+ clients in full mode) runs on every backend registered in
    `repro.sim.backends`, reporting host events/sec by shard count.

    Two families of claim, both machine-checked on every run:

    * **Determinism**: wherever two backends executed the same
      (seed, shards) configuration, their `ScaleResult` digests — a
      SHA-256 over every per-shard metric snapshot — must be
      bit-identical, and re-running ``sharded-parallel`` at 8 shards
      must reproduce its own digest exactly.  A mismatch raises, so a
      baseline violating the determinism contract cannot be written.
    * **Scaling** (full mode): ``sharded-parallel`` at 8 shards must
      clear **2×** the ``global`` single-heap backend's events/sec on
      the identical workload — per-shard heaps with windowed dispatch
      beat one global heap's per-event comparison cost even on one
      core; forked workers (``workers=``) add real parallelism on
      multi-core hosts.

    ``sim_backend`` restricts the sweep to one registered backend
    (unknown names raise the registry's ValueError, which the CLI
    turns into exit 2, exactly like an unknown ``--only``); the
    metric keys for backends that did not run stay ``None`` so the
    document schema never varies.  The ``scale_*_events_per_sec``
    values are real wall-clock rates (machine-dependent, like S1);
    digests, flags and the rtt quantiles are deterministic for a seed.
    """
    from repro.sim.backends import registered_sim_backends, sim_backend_profile
    from repro.workloads.scale import run_scale

    if sim_backend is not None:
        sim_backend_profile(sim_backend)  # unknown name -> ValueError
        backends: Tuple[str, ...] = (sim_backend,)
    else:
        backends = registered_sim_backends()
    clients = 4_000 if quick else 100_000
    requests = 2 if quick else 4
    short_names = {
        "global": "global",
        "sharded-serial": "serial",
        "sharded-parallel": "parallel",
    }

    out: Dict[str, Optional[float]] = {
        "scale_clients": float(clients),
        "scale_events_total": None,
        "scale_global_s1_events_per_sec": None,
        "scale_global_s8_events_per_sec": None,
        "scale_serial_s1_events_per_sec": None,
        "scale_serial_s8_events_per_sec": None,
        "scale_parallel_s1_events_per_sec": None,
        "scale_parallel_s2_events_per_sec": None,
        "scale_parallel_s4_events_per_sec": None,
        "scale_parallel_s8_events_per_sec": None,
        "scale_parallel_s8_speedup": None,
        "scale_digest_match_s1": None,
        "scale_digest_match_s8": None,
        "scale_repeat_stable_s8": None,
        "scale_rtt_mean_ms": None,
        "scale_rtt_p99_ms": None,
    }

    # same hygiene as E15: collect before each timed run and keep the
    # collector out of the timed region, so a run's rate does not
    # depend on how much garbage the previous eight runs left behind
    import gc

    runs: Dict[Tuple[str, int], object] = {}
    gc_was_enabled = gc.isenabled()
    try:
        for backend in backends:
            short = short_names.get(backend, backend.replace("-", "_"))
            counts = (1, 2, 4, 8) if backend == "sharded-parallel" \
                else (1, 8)
            for shards in counts:
                gc.enable()
                gc.collect()
                gc.disable()
                t_start = perf_counter()
                r = run_scale(backend, shards, clients=clients,
                              requests=requests, seed=seed)
                wall = perf_counter() - t_start
                runs[(backend, shards)] = r
                out[f"scale_{short}_s{shards}_events_per_sec"] = (
                    r.events / wall if wall else 0.0
                )
    finally:
        if gc_was_enabled:
            gc.enable()

    # cross-backend determinism: every backend that ran a (seed, k)
    # configuration must agree on the digest and the event count
    for k in (1, 8):
        ran = {b: runs[(b, k)] for b in backends if (b, k) in runs}
        if len(ran) < 2:
            continue
        digests = {b: r.digest for b, r in ran.items()}
        events = {b: r.events for b, r in ran.items()}
        if len(set(digests.values())) != 1 or len(set(events.values())) != 1:
            raise AssertionError(
                f"E16: same-seed runs diverged across backends at "
                f"shards={k}: digests={digests} events={events}"
            )
        out[f"scale_digest_match_s{k}"] = 1.0

    # repeat stability: the parallel backend (or whichever backend was
    # selected) must reproduce its own 8-shard digest exactly
    stable_backend = (
        "sharded-parallel" if "sharded-parallel" in backends else backends[-1]
    )
    base = runs.get((stable_backend, 8))
    if base is not None:
        again = run_scale(stable_backend, 8, clients=clients,
                          requests=requests, seed=seed)
        if again.digest != base.digest or again.events != base.events:
            raise AssertionError(
                f"E16: {stable_backend} at 8 shards is not repeat-stable "
                f"for seed {seed}: {base.digest} != {again.digest}"
            )
        out["scale_repeat_stable_s8"] = 1.0

    ref = runs.get(("sharded-parallel", 8)) or next(iter(runs.values()))
    out["scale_events_total"] = float(ref.events)
    rtt = ref.metrics.latency("scale.rtt")
    if rtt.count:
        out["scale_rtt_mean_ms"] = rtt.mean
        out["scale_rtt_p99_ms"] = rtt.percentile(99)

    par = out["scale_parallel_s8_events_per_sec"]
    base_rate = out["scale_global_s8_events_per_sec"]
    if par and base_rate:
        out["scale_parallel_s8_speedup"] = par / base_rate
        if not quick and out["scale_parallel_s8_speedup"] < 2.0:
            raise AssertionError(
                f"E16: sharded-parallel at 8 shards must clear 2x the "
                f"global backend on the scale workload; measured "
                f"{out['scale_parallel_s8_speedup']:.2f}x "
                f"({par:,.0f} vs {base_rate:,.0f} events/s)"
            )
    return out


def bench_e17(seed: int = 0, quick: bool = False) -> Dict[str, float]:
    """E17 — real transport, measured against the simulator's shapes.

    Two halves, one document:

    * **Simulated**: the RPC workload on the registered ``real-asyncio``
      backend (every message round-tripped through a real OS socket,
      synchronously in simulated time).  Machine-checked: its simulated
      RTT is *bit-identical* to the ``ideal`` backend's — the transport
      changed, the semantics did not.
    * **Measured**: `repro.net.supervisor` spawns real node processes
      (``python -m repro net serve`` over UDS), and the
      `repro.net.load` generator drives concurrent client coroutines
      with wall-clock `RecoveryPolicy` timeout/retry/failover.  The
      primary server's ``--drop-first`` deterministically withholds its
      first few replies, forcing the retry path; then the primary is
      hard-killed and a second load wave must detect the crash
      (refused connections) and fail over to the backup.

    Machine-checked on every run (an `AssertionError` makes
    ``bench --quick --only E17`` exit non-zero):

    * **exactly-once-or-exhausted**: ``completed + exhausted ==
      issued`` in both waves, with zero exhausted here (a live backup
      always exists); the server's ``duplicates`` counter must show
      the forced retransmissions were absorbed by the dedup cache, and
      ``executed_unique`` must equal the wave's completed count — no
      request ran twice on a server;
    * **crash-driven failover**: every wave-B client must record
      exactly one failover;
    * **report contract**: with the transport available, every
      ``net_*`` metric must be present (non-None) and the
      measured-vs-simulated RTT ratio positive;
    * **scale** (full mode): at least 1000 concurrent client
      coroutines.

    On hosts that forbid sockets or subprocesses, ``net_available`` is
    0.0 and every other key stays ``None`` — same document schema.
    ``net_meas_*`` values are wall-clock and machine-dependent (like
    S1); the ``net_sim_*`` half is deterministic for a seed.
    """
    from repro.core.recovery import RecoveryPolicy
    from repro.net import TransportUnavailable
    from repro.net.load import query_stats, run_load
    from repro.net.supervisor import NodeSupervisor, SpawnFailed
    from repro.workloads.rpc import run_rpc_workload

    out: Dict[str, Optional[float]] = {
        "net_available": 0.0,
        "net_sim_rtt_ms": None,
        "net_sim_ideal_rtt_ms": None,
        "net_sim_wire_msgs": None,
        "net_meas_clients": None,
        "net_meas_servers": None,
        "net_meas_ops": None,
        "net_meas_completed": None,
        "net_meas_exhausted": None,
        "net_meas_retries": None,
        "net_meas_duplicates": None,
        "net_meas_failovers": None,
        "net_meas_rtt_mean_ms": None,
        "net_meas_rtt_p50_ms": None,
        "net_meas_rtt_p99_ms": None,
        "net_meas_throughput_per_s": None,
        "net_meas_vs_sim_rtt_ratio": None,
        "net_exactly_once": None,
    }
    clients = 24 if quick else 1000
    requests = 2 if quick else 3
    drop_first = 4 if quick else 8
    policy = RecoveryPolicy(
        timeout_ms=250.0 if quick else 1000.0, max_retries=3,
        backoff_factor=2.0, jitter_frac=0.0,
    )

    # -- simulated half -------------------------------------------------
    try:
        sim = run_rpc_workload("real-asyncio", 0, count=5, seed=seed)
    except TransportUnavailable:
        return out
    ideal = run_rpc_workload("ideal", 0, count=5, seed=seed)
    out["net_sim_rtt_ms"] = sim.mean_ms
    out["net_sim_ideal_rtt_ms"] = ideal.mean_ms
    out["net_sim_wire_msgs"] = sim.messages
    if sim.rtts != ideal.rtts:
        raise AssertionError(
            f"E17: the real-asyncio backend's simulated shape must be "
            f"bit-identical to ideal's (same semantics, different data "
            f"plane); got {sim.rtts} != {ideal.rtts}"
        )

    # -- measured half --------------------------------------------------
    try:
        with NodeSupervisor() as sup:
            primary = sup.spawn("primary", drop_first=drop_first)
            backup = sup.spawn("backup")
            endpoints = [primary.endpoint, backup.endpoint]

            wave_a = run_load(endpoints, clients=clients,
                              requests=requests, policy=policy)
            stats = query_stats(primary.endpoint)
            sup.crash("primary")
            wave_b = run_load(endpoints, clients=clients, requests=1,
                              policy=policy)
            stats_b = query_stats(backup.endpoint)
    except (TransportUnavailable, SpawnFailed, OSError):
        return out

    checks = []
    if not (wave_a.exactly_once and wave_b.exactly_once):
        checks.append("completed + exhausted != issued")
    if wave_a.exhausted or wave_b.exhausted:
        checks.append(
            f"exhausted with a live backup present "
            f"({wave_a.exhausted}+{wave_b.exhausted})"
        )
    if wave_a.retries < 1 or stats["duplicates"] < 1:
        checks.append(
            f"drop-first must force retries ({wave_a.retries}) absorbed "
            f"as duplicates ({stats['duplicates']})"
        )
    if stats["executed_unique"] != wave_a.completed:
        checks.append(
            f"a request ran other-than-once on the primary: "
            f"{stats['executed_unique']} executed != "
            f"{wave_a.completed} completed"
        )
    if wave_b.failovers != wave_b.clients:
        checks.append(
            f"every wave-B client must fail over off the crashed "
            f"primary exactly once ({wave_b.failovers} != "
            f"{wave_b.clients})"
        )
    if stats_b["executed_unique"] != wave_b.completed:
        checks.append(
            f"a request ran other-than-once on the backup: "
            f"{stats_b['executed_unique']} executed != "
            f"{wave_b.completed} completed"
        )
    if not quick and clients < 1000:
        checks.append(f"full mode must sustain >=1000 clients ({clients})")
    if checks:
        raise AssertionError(
            "E17 exactly-once/failover contract broke: " + "; ".join(checks)
        )

    out["net_available"] = 1.0
    out["net_meas_clients"] = float(clients)
    out["net_meas_servers"] = 2.0
    out["net_meas_ops"] = float(wave_a.issued + wave_b.issued)
    out["net_meas_completed"] = float(wave_a.completed + wave_b.completed)
    out["net_meas_exhausted"] = float(wave_a.exhausted + wave_b.exhausted)
    out["net_meas_retries"] = float(wave_a.retries + wave_b.retries)
    out["net_meas_duplicates"] = float(stats["duplicates"]
                                       + stats_b["duplicates"])
    out["net_meas_failovers"] = float(wave_a.failovers + wave_b.failovers)
    out["net_meas_rtt_mean_ms"] = wave_a.rtt.mean
    out["net_meas_rtt_p50_ms"] = wave_a.rtt.percentile(50.0)
    out["net_meas_rtt_p99_ms"] = wave_a.rtt.percentile(99.0)
    out["net_meas_throughput_per_s"] = wave_a.throughput_per_s
    out["net_meas_vs_sim_rtt_ratio"] = (
        wave_a.rtt.mean / sim.mean_ms if sim.mean_ms else 0.0
    )
    out["net_exactly_once"] = 1.0
    # the report contract: available means *fully* reported
    missing = [k for k, v in out.items() if v is None]
    if missing or out["net_meas_vs_sim_rtt_ratio"] <= 0.0:
        raise AssertionError(
            f"E17 measured-vs-simulated report contract broke: "
            f"missing={missing} "
            f"ratio={out['net_meas_vs_sim_rtt_ratio']}"
        )
    return out


_BENCHES: Dict[str, Callable[..., Dict[str, float]]] = {
    "E1": bench_e1,
    "E4": bench_e4,
    "E5": bench_e5,
    "E13": bench_e13,
    "E14": bench_e14,
    "E15": bench_e15,
    "E16": bench_e16,
    "E17": bench_e17,
    "S1": bench_s1,
}

BENCH_IDS: Tuple[str, ...] = tuple(_BENCHES)

#: benches that execute on a selectable `repro.sim.backends` engine
BACKEND_AWARE_BENCHES = frozenset({"E16", "S1"})


def run_benches(
    bench_ids: Optional[Iterable[str]] = None,
    seed: int = 0,
    quick: bool = False,
    sim_backend: Optional[str] = None,
) -> Dict[str, Dict[str, float]]:
    """Run the selected benches (all of them by default) and return
    ``{bench_id: {metric: value}}``.  ``sim_backend`` routes the
    backend-aware benches (E16, S1) through one registered
    `repro.sim.backends` engine; an unknown name raises the registry's
    ValueError before anything runs (the CLI maps it to exit 2, the
    same contract as an unknown bench id)."""
    if sim_backend is not None:
        from repro.sim.backends import sim_backend_profile

        sim_backend_profile(sim_backend)  # unknown -> ValueError
    ids = list(bench_ids) if bench_ids else list(BENCH_IDS)
    results = {}
    for bid in ids:
        key = bid.upper()
        if key not in _BENCHES:
            raise ValueError(
                f"unknown bench {bid!r}; expected one of {BENCH_IDS}"
            )
        kwargs = {"seed": seed, "quick": quick}
        if key in BACKEND_AWARE_BENCHES:
            kwargs["sim_backend"] = sim_backend
        results[key] = _BENCHES[key](**kwargs)
    return results


def _git_rev() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
        rev = out.stdout.strip()
        return rev if out.returncode == 0 and rev else "unknown"
    except OSError:  # no git binary
        return "unknown"


def repo_root() -> str:
    """The repository root (nearest ancestor of this file holding a
    pyproject.toml), falling back to the current directory when the
    package is installed outside its checkout."""
    path = os.path.dirname(os.path.abspath(__file__))
    while True:
        if os.path.exists(os.path.join(path, "pyproject.toml")):
            return path
        parent = os.path.dirname(path)
        if parent == path:
            return os.getcwd()
        path = parent


def write_bench_json(
    results: Dict[str, Dict[str, float]],
    path: Optional[str] = None,
    seed: int = 0,
    quick: bool = False,
) -> Tuple[Dict[str, object], str]:
    """Wrap ``results`` in the versioned envelope and write it (default:
    ``BENCH_PR9.json`` at the repo root; ``"-"`` writes to stdout).
    Returns (document, path)."""
    if path is None:
        path = os.path.join(repo_root(), DEFAULT_BENCH_FILENAME)
    doc = {
        "schema": "repro.bench",
        "schema_version": BENCH_SCHEMA_VERSION,
        "seed": seed,
        "git_rev": _git_rev(),
        # repro: allow[DET001] — export metadata, not simulation input
        "timestamp": datetime.now(timezone.utc).isoformat(),
        "quick": quick,
        "benches": json_safe(results),
    }
    if path == "-":
        json.dump(doc, sys.stdout, indent=2, sort_keys=True, allow_nan=False)
        sys.stdout.write("\n")
        return doc, path
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True, allow_nan=False)
        fh.write("\n")
    return doc, path
