"""Link-migration churn: a link end hops between processes while its
far end keeps talking to it.

This is the workload behind E9 (SODA hint machinery: every hop leaves
the observer's hint one owner behind, exercising cache redirects,
discover and — under heavy broadcast loss — the freeze search) and E11
(kernel cost of a move: Charlotte's three-party agreement vs hint
updates).  It generalises figure 1: ends move while traffic flows.

Topology: a *dispatcher* is linked to every member; the *work link*'s
far end sits with a stationary *observer*.  Per hop, the dispatcher
gives the work end to the next member, the member serves exactly one
observer RPC on it and hands it back — two moves per hop, with the
observer's location hint going stale at every step.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.api import INT, LINK, LinkDestroyed, Operation, Proc, make_cluster
from repro.core.ports import kernel_metric_digest

ADD = Operation("add", (INT, INT), (INT,))
GIVEH = Operation("giveh", (LINK, INT), ())


class Observer(Proc):
    """Holds the stationary end of the work link; issues one RPC per
    hop and records who answered."""

    def __init__(self, hops: int) -> None:
        self.hops = hops
        self.servers: List[int] = []
        self.rtts: List[float] = []

    def main(self, ctx):
        (work,) = ctx.initial_links
        for h in range(self.hops):
            t0 = yield from ctx.now()
            try:
                (who,) = yield from ctx.connect(work, ADD, (h, 0))
            except LinkDestroyed:
                break
            self.rtts.append((yield from ctx.now()) - t0)
            self.servers.append(who)


class Dispatcher(Proc):
    """Hands the work end to members round-robin, one hop at a time."""

    def __init__(self, hops: int, members: int) -> None:
        self.hops = hops
        self.members = members

    def main(self, ctx):
        work, *member_links = ctx.initial_links
        yield from ctx.register(GIVEH)
        for link in member_links:
            yield from ctx.open(link)
        current = work
        for h in range(self.hops):
            target = member_links[h % self.members]
            yield from ctx.connect(target, GIVEH, (current, h))
            inc = yield from ctx.wait_request()
            current = inc.args[0]
            yield from ctx.reply(inc, ())
        yield from ctx.destroy(current)


class Member(Proc):
    """Per hop it is assigned: adopt the work end, serve exactly one
    observer RPC on it, hand it back to the dispatcher."""

    def __init__(self, index: int, expected: int, linger_ms: float) -> None:
        self.index = index
        self.expected = expected
        self.linger_ms = linger_ms

    def main(self, ctx):
        (to_dispatcher,) = ctx.initial_links
        yield from ctx.register(GIVEH, ADD)
        yield from ctx.open(to_dispatcher)
        for _ in range(self.expected):
            inc = yield from ctx.wait_request([to_dispatcher])
            work, hop = inc.args
            yield from ctx.reply(inc, ())
            yield from ctx.open(work)
            req = yield from ctx.wait_request([work])
            yield from ctx.reply(req, (self.index,))
            yield from ctx.close(work)
            yield from ctx.connect(to_dispatcher, GIVEH, (work, hop))
        # linger to answer stale-hint redirects aimed at us, then exit
        yield from ctx.delay(self.linger_ms)


def run_migration_churn(
    kind: str,
    members: int = 4,
    hops: int = 8,
    seed: int = 0,
    linger_ms: float = 2000.0,
    **cluster_kw,
) -> Dict[str, object]:
    """Run the churn; returns a metrics digest for E9/E11."""
    cluster = make_cluster(kind, seed=seed, **cluster_kw)
    observer = Observer(hops)
    dispatcher = Dispatcher(hops, members)
    member_progs = [
        Member(i, len([h for h in range(hops) if h % members == i]), linger_ms)
        for i in range(members)
    ]
    d = cluster.spawn(dispatcher, "dispatcher")
    obs = cluster.spawn(observer, "observer")
    handles = [cluster.spawn(m, f"member{i}") for i, m in enumerate(member_progs)]
    cluster.create_link(d, obs)  # the work link (dispatcher side moves)
    for h in handles:
        cluster.create_link(d, h)
    cluster.run_until_quiet(max_ms=1e7)
    m = cluster.metrics
    digest = {
        "finished": cluster.all_finished,
        "rpcs_served": len(observer.servers),
        "servers_in_hop_order": list(observer.servers),
        "mean_rpc_ms": (
            sum(observer.rtts) / len(observer.rtts) if observer.rtts else 0.0
        ),
        "moves": 2 * hops,  # by construction: out and back per hop
        "wire_messages": m.total("wire.messages."),
        "wire_bytes": m.get("wire.bytes"),
        "sim_time_ms": cluster.engine.now,
        "trace": cluster.trace,
    }
    # kernel-specific machinery counts appear only on kernels that have
    # the machinery; consumers must test `key in digest`
    digest.update(kernel_metric_digest(kind, m, {
        "move_msgs": "charlotte.move_msgs",
        "move_retries": "charlotte.move_retries",
        "redirects_served": "soda.redirects_served",
        "redirects_followed": "soda.redirects_followed",
        "discover_repairs": "soda.hints_repaired_by_discover",
        "freeze_searches": "soda.freeze.searches",
        "freeze_repairs": "soda.hints_repaired_by_freeze",
        "frozen_ms": "soda.freeze.frozen_ms",
        "presumed_destroyed": "soda.links_presumed_destroyed",
        "discovers": "soda.discover",
        "stale_notices": "chrysalis.stale_notices",
    }))
    return digest


class DormantDispatcher(Proc):
    """Moves the work end through the members with NO traffic on it —
    the §4.2 dormant case — then hands it to a final holder to serve."""

    def __init__(self, hops: int, members: int) -> None:
        self.hops = hops
        self.members = members

    def main(self, ctx):
        work, *member_links = ctx.initial_links
        yield from ctx.register(GIVEH)
        for link in member_links:
            yield from ctx.open(link)
        current = work
        for h in range(self.hops):
            target = member_links[h % self.members]
            yield from ctx.connect(target, GIVEH, (current, h))
            inc = yield from ctx.wait_request()
            current = inc.args[0]
            yield from ctx.reply(inc, ())
        # final handoff: the holder serves the observer's one request
        final = member_links[self.hops % self.members]
        yield from ctx.connect(final, GIVEH, (current, -1))
        yield from ctx.delay(self.linger_ms)

    linger_ms: float = 4000.0


class DormantMember(Proc):
    """Passes the work end straight back (hop >= 0); on the final
    handoff (hop == -1) it opens the end and serves one request."""

    def __init__(self, index: int, passes: int, is_final: bool,
                 linger_ms: float) -> None:
        self.index = index
        self.passes = passes
        self.is_final = is_final
        self.linger_ms = linger_ms

    def main(self, ctx):
        (to_dispatcher,) = ctx.initial_links
        yield from ctx.register(GIVEH, ADD)
        yield from ctx.open(to_dispatcher)
        total = self.passes + (1 if self.is_final else 0)
        for _ in range(total):
            inc = yield from ctx.wait_request([to_dispatcher])
            work, hop = inc.args
            yield from ctx.reply(inc, ())
            if hop == -1:
                yield from ctx.open(work)
                req = yield from ctx.wait_request([work])
                yield from ctx.reply(req, (self.index,))
                yield from ctx.destroy(work)
            else:
                yield from ctx.connect(to_dispatcher, GIVEH, (work, hop))
        yield from ctx.delay(self.linger_ms)


class DormantObserver(Proc):
    """Waits for the churn to settle, then uses the (moved) link once:
    the single RPC's latency is the hint-repair cost."""

    def __init__(self, settle_ms: float) -> None:
        self.settle_ms = settle_ms
        self.server = None
        self.repair_latency_ms = None

    def main(self, ctx):
        (work,) = ctx.initial_links
        yield from ctx.delay(self.settle_ms)
        t0 = yield from ctx.now()
        try:
            (who,) = yield from ctx.connect(work, ADD, (0, 0))
        except LinkDestroyed:
            return
        self.repair_latency_ms = (yield from ctx.now()) - t0
        self.server = who


def run_dormant_migration(
    kind: str,
    members: int = 3,
    hops: int = 5,
    seed: int = 0,
    settle_ms: float = 1500.0,
    linger_ms: float = 60000.0,
    **cluster_kw,
) -> Dict[str, object]:
    """§4.2's dormant-link scenario: the end moves ``hops + 1`` times
    with nothing posted against it; afterwards the far end uses it once
    and pays whatever hint repair costs (redirect chain / discover /
    freeze).  Returns the metrics digest including the repair latency.
    """
    cluster = make_cluster(kind, seed=seed, **cluster_kw)
    observer = DormantObserver(settle_ms)
    dispatcher = DormantDispatcher(hops, members)
    dispatcher.linger_ms = linger_ms
    final_index = hops % members
    member_progs = [
        DormantMember(
            i,
            len([h for h in range(hops) if h % members == i]),
            i == final_index,
            linger_ms,
        )
        for i in range(members)
    ]
    d = cluster.spawn(dispatcher, "dispatcher")
    obs = cluster.spawn(observer, "observer")
    handles = [cluster.spawn(m, f"member{i}") for i, m in enumerate(member_progs)]
    cluster.create_link(d, obs)
    for h in handles:
        cluster.create_link(d, h)
    cluster.run_until_quiet(max_ms=1e7)
    m = cluster.metrics
    digest = {
        "finished": cluster.all_finished,
        "served_by": observer.server,
        "repair_latency_ms": observer.repair_latency_ms,
        "wire_messages": m.total("wire.messages."),
        "sim_time_ms": cluster.engine.now,
        "trace": cluster.trace,
    }
    digest.update(kernel_metric_digest(kind, m, {
        "redirects_served": "soda.redirects_served",
        "redirects_followed": "soda.redirects_followed",
        "cache_evictions": "soda.cache_evictions",
        "hint_probes": "soda.hint_probes",
        "discovers": "soda.discover",
        "discover_repairs": "soda.hints_repaired_by_discover",
        "freeze_searches": "soda.freeze.searches",
        "freeze_repairs": "soda.hints_repaired_by_freeze",
        "frozen_ms": "soda.freeze.frozen_ms",
        "presumed_destroyed": "soda.links_presumed_destroyed",
        "move_msgs": "charlotte.move_msgs",
        "stale_notices": "chrysalis.stale_notices",
    }))
    return digest
