"""The fault-recovery workload behind E14 (§2.2, §4.1, §5.2).

A paced client issues typed ``chaos`` operations against a *primary*
server while a seeded `repro.sim.faults.FaultPlan` degrades the
network; a *backup* server stands by on a second link.  The client's
failover rule is the paper's "hints" stance made concrete: when a
connect raises `RecoveryExhausted` — which only runtime-placement
backends can do — it re-issues the operation on the backup link and
stays there (sticky failover).

That asymmetry is the whole experiment.  A kernel-placement backend
(Charlotte's absolutes) never surfaces loss, so its client has no
signal to act on: a connect issued into a partition simply blocks
until the window heals, goodput craters and tail latency stretches to
the partition length.  A runtime-placement backend (SODA, Chrysalis,
ideal) bounds the damage at the `RecoveryPolicy` budget and reroutes.
`repro.obs.bench` (E14) machine-checks the resulting strict goodput
ordering; ``python -m repro chaos`` prints it interactively.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.api import (
    BYTES,
    Operation,
    Proc,
    RecoveryExhausted,
    RecoveryPolicy,
    make_cluster,
)
from repro.core.exceptions import LynxError
from repro.sim.faults import FaultPlan
from repro.sim.trace import TraceLog

CHAOS = Operation("chaos", (BYTES,), (BYTES,))


def chaos_policy() -> RecoveryPolicy:
    """The recovery knobs every E14 run uses: ~175 ms worst-case budget
    (25 + 50 + 100), far below the partition windows in
    `partitioned_plan`, so failover decisions land *inside* the
    outage.  The 25 ms initial timeout sits above every backend's
    fault-free round trip (SODA's is the slowest at ~20 ms), so a
    healthy network never triggers a spurious retry."""
    return RecoveryPolicy(
        timeout_ms=25.0, max_retries=2, backoff_factor=2.0, jitter_frac=0.1
    )


def partitioned_plan(quick: bool = False) -> FaultPlan:
    """The E14 fault schedule: one partition window severing the
    client from the *primary* server only (the backup stays
    reachable).  The window deliberately outlasts the paced schedule's
    nominal end, so a backend that can only wait pays for the whole
    outage."""
    if quick:
        return FaultPlan().partition(100.0, 520.0, a=("client",), b=("primary",))
    return FaultPlan().partition(200.0, 1300.0, a=("client",), b=("primary",))


def lossy_plan(drop: float = 0.2, dup: float = 0.1) -> FaultPlan:
    """Random per-message loss/duplication on every link — the
    verify.py smoke and the property suite use this shape."""
    return FaultPlan().drop(drop).duplicate(dup)


class ChaosServer(Proc):
    """Serves ``chaos`` operations until its link dies."""

    def __init__(self, reply_bytes: int = 32) -> None:
        self.reply_bytes = reply_bytes
        self.served = 0

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(CHAOS)
        yield from ctx.open(end)
        body = b"r" * self.reply_bytes
        while True:
            try:
                # explicit end filter: link destruction then wakes the
                # wait with LinkDestroyed, ending the serve loop
                inc = yield from ctx.wait_request((end,))
                yield from ctx.reply(inc, (body,))
            except LynxError:
                # link destroyed (or the reply became unwanted): done
                return
            self.served += 1


class ChaosClient(Proc):
    """Issues ``count`` paced operations with sticky failover.

    Operation ``i`` targets simulated time ``start + i * pace_ms``; a
    stalled predecessor pushes later issues back, which is exactly how
    a blocked absolute-delivery connect shows up in goodput.  On
    `RecoveryExhausted` the client flips to the other link and
    re-issues the same operation there.
    """

    def __init__(
        self, count: int, request_bytes: int = 32, pace_ms: float = 40.0
    ) -> None:
        self.count = count
        self.request_bytes = request_bytes
        self.pace_ms = pace_ms
        self.rtts: List[float] = []
        self.completed = 0
        self.failed = 0
        self.failed_over = 0
        self.elapsed_ms = 0.0

    def main(self, ctx):
        ends = list(ctx.initial_links)  # [primary, backup]
        current = 0
        body = b"q" * self.request_bytes
        start = yield from ctx.now()
        for i in range(self.count):
            target = start + i * self.pace_ms
            now = yield from ctx.now()
            if target > now:
                yield from ctx.delay(target - now)
            t0 = yield from ctx.now()
            done = False
            for _attempt in range(len(ends)):
                try:
                    yield from ctx.connect(ends[current], CHAOS, (body,))
                except RecoveryExhausted:
                    # the hint did its job: record the failover in the
                    # recovery namespace, then take the other link
                    ctx.metrics.count("recovery.failovers")
                    current = (current + 1) % len(ends)
                    self.failed_over += 1
                except LynxError:
                    break
                else:
                    done = True
                    break
            t1 = yield from ctx.now()
            if done:
                self.completed += 1
                self.rtts.append(t1 - t0)
            else:
                self.failed += 1
        end_t = yield from ctx.now()
        self.elapsed_ms = end_t - start
        for e in ends:
            try:
                yield from ctx.destroy(e)
            except LynxError:
                pass


@dataclass
class ChaosResult:
    """One chaos run's client-observed outcome plus fault/recovery
    counters (``faults.*`` / ``recovery.*`` namespaces)."""

    kind: str
    count: int
    completed: int
    failed: int
    failed_over: int
    rtts: List[float]
    elapsed_ms: float
    counters: Dict[str, float] = field(default_factory=dict)
    #: the cluster's TraceLog — carries the causal spans
    trace: Optional[TraceLog] = None

    @property
    def goodput_per_s(self) -> float:
        """Completed operations per *client-observed* second (the
        engine's end time includes cancelled-timer tombstones, so the
        client measures its own elapsed window)."""
        if self.elapsed_ms <= 0.0:
            return 0.0
        return self.completed / (self.elapsed_ms / 1000.0)

    @property
    def max_rtt_ms(self) -> float:
        return max(self.rtts) if self.rtts else 0.0

    @property
    def p99_ms(self) -> float:
        if not self.rtts:
            return 0.0
        xs = sorted(self.rtts)
        idx = min(len(xs) - 1, int(round(0.99 * (len(xs) - 1))))
        return xs[idx]

    @property
    def mean_ms(self) -> float:
        return sum(self.rtts) / len(self.rtts) if self.rtts else 0.0


def run_chaos_workload(
    kind: str,
    count: int = 30,
    payload_bytes: int = 32,
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    policy: Optional[RecoveryPolicy] = None,
    pace_ms: float = 40.0,
    instrument=None,
    **cluster_kw,
) -> ChaosResult:
    """Run the chaos workload on one backend.

    ``plan``/``policy`` must be installed before any process runs, so
    this helper does it between ``make_cluster`` and ``spawn``.  With
    both ``None`` the run is fault-free (the control row of E14).
    ``instrument``, when given, is called with the cluster after the
    fault plane is installed and before any process spawns — the hook
    ``repro flight --demo`` and ``repro top`` use to attach a flight
    recorder or a windowed time-series.
    """
    cluster = make_cluster(kind, seed=seed, **cluster_kw)
    if plan is not None:
        cluster.install_faults(plan)
    if policy is not None:
        cluster.install_recovery(policy)
    if instrument is not None:
        instrument(cluster)
    client = ChaosClient(count, payload_bytes, pace_ms)
    primary = ChaosServer(payload_bytes)
    backup = ChaosServer(payload_bytes)
    c = cluster.spawn(client, "client")
    p = cluster.spawn(primary, "primary")
    b = cluster.spawn(backup, "backup")
    cluster.create_link(c, p)
    cluster.create_link(c, b)
    cluster.run_until_quiet(max_ms=1e7)
    if not cluster.all_finished:
        raise RuntimeError(
            f"chaos workload hung on {kind}: {cluster.unfinished()}"
        )
    cluster.check()
    counters = {}
    counters.update(cluster.metrics.counters("faults."))
    counters.update(cluster.metrics.counters("recovery."))
    return ChaosResult(
        kind=kind,
        count=count,
        completed=client.completed,
        failed=client.failed,
        failed_over=client.failed_over,
        rtts=client.rtts,
        elapsed_ms=client.elapsed_ms,
        counters=counters,
        trace=cluster.trace,
    )
