"""The simple-remote-operation workload of §3.3/§4.3/§5.3.

Two processes, one link, N round trips of a typed ``ping`` operation
with a configurable payload in each direction — the measurement behind
every latency number in the paper — plus the *raw kernel-call* variant
for Charlotte ("C programs that make the same series of kernel calls",
§3.3) used as E1's baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.api import BYTES, Operation, Proc, make_cluster
from repro.core.links import EndRef
from repro.core.wire import MsgKind, WireMessage
from repro.sim.trace import TraceLog

PING = Operation("ping", (BYTES,), (BYTES,))


class PingServer(Proc):
    """Serves ``count`` pings, echoing ``reply_bytes`` of payload."""

    def __init__(self, count: int, reply_bytes: int) -> None:
        self.count = count
        self.reply_bytes = reply_bytes

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(PING)
        yield from ctx.open(end)
        body = b"r" * self.reply_bytes
        for _ in range(self.count):
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (body,))


class PingClient(Proc):
    """Issues ``count`` sequential pings of ``request_bytes`` payload,
    recording per-operation round-trip times (simulated ms)."""

    def __init__(self, count: int, request_bytes: int,
                 warmup: int = 1) -> None:
        self.count = count
        self.request_bytes = request_bytes
        self.warmup = warmup
        self.rtts: List[float] = []

    def main(self, ctx):
        (end,) = ctx.initial_links
        body = b"q" * self.request_bytes
        for i in range(self.count + self.warmup):
            t0 = yield from ctx.now()
            yield from ctx.connect(end, PING, (body,))
            t1 = yield from ctx.now()
            if i >= self.warmup:
                self.rtts.append(t1 - t0)


@dataclass
class RPCResult:
    kind: str
    payload_bytes: int
    rtts: List[float]
    messages: float
    wire_bytes: float
    #: the cluster's TraceLog — carries the causal spans (repro.obs.causal)
    trace: Optional[TraceLog] = None

    @property
    def mean_ms(self) -> float:
        return sum(self.rtts) / len(self.rtts) if self.rtts else float("nan")


def run_rpc_workload(
    kind: str,
    payload_bytes: int = 0,
    count: int = 10,
    seed: int = 0,
    **cluster_kw,
) -> RPCResult:
    """The paper's simple remote operation: payload in *both*
    directions (§3.3 measures "1000 bytes of parameters in both
    directions")."""
    cluster = make_cluster(kind, seed=seed, **cluster_kw)
    server = PingServer(count + 1, payload_bytes)
    client = PingClient(count, payload_bytes)
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e7)
    if not cluster.all_finished:
        raise RuntimeError(f"rpc workload hung on {kind}: {cluster.unfinished()}")
    return RPCResult(
        kind=kind,
        payload_bytes=payload_bytes,
        rtts=client.rtts,
        messages=cluster.metrics.total("wire.messages."),
        wire_bytes=cluster.metrics.get("wire.bytes"),
        trace=cluster.trace,
    )


def raw_charlotte_rpc(
    payload_bytes: int = 0, count: int = 10, seed: int = 0
) -> RPCResult:
    """§3.3's baseline: "C programs that make the same series of kernel
    calls" — the RPC pattern driven directly against the Charlotte
    kernel ports, bypassing the LYNX runtime entirely."""
    from repro.charlotte.kernel import CompletionKind
    from repro.charlotte.cluster import CharlotteCluster
    from repro.sim.tasks import Task

    cluster = CharlotteCluster(seed=seed)
    kernel = cluster.kernel
    ka = kernel.register_process("raw-client", 0)
    kb = kernel.register_process("raw-server", 1)
    status, ra, rb = kernel._make_link("raw-client")
    kernel.links[ra.link].ends[1].owner = "raw-server"
    kernel.links[ra.link].ends[1].node = 1

    rtts: List[float] = []
    eng = cluster.engine
    total = count + 1  # one warm-up

    def client():
        body = b"q" * payload_bytes
        for i in range(total):
            t0 = eng.now
            # post the receive for the reply, then send the request
            yield ka.receive(ra)
            msg = WireMessage(kind=MsgKind.REQUEST, seq=i + 1, payload=body)
            yield ka.send(ra, msg)
            # wait for send completion, then for the reply
            got_reply = False
            while not got_reply:
                desc = yield ka.wait()
                if desc.kind is CompletionKind.RECV_DONE:
                    got_reply = True
            if i > 0:
                rtts.append(eng.now - t0)

    def server():
        body = b"r" * payload_bytes
        yield kb.receive(rb)
        for i in range(total):
            # wait for a request
            while True:
                desc = yield kb.wait()
                if desc.kind is CompletionKind.RECV_DONE:
                    req = desc.msg
                    break
            # repost receive for the next request, then send the reply
            if i + 1 < total:
                yield kb.receive(rb)
            reply = WireMessage(
                kind=MsgKind.REPLY, seq=1000 + i, reply_to=req.seq, payload=body
            )
            yield kb.send(rb, reply)
            while True:
                desc = yield kb.wait()
                if desc.kind is CompletionKind.SEND_DONE:
                    break

    tc = Task(eng, client(), "raw-client")
    ts = Task(eng, server(), "raw-server")
    cluster.run_until_quiet(max_ms=1e7)
    if not (tc.finished and ts.finished):
        raise RuntimeError("raw Charlotte RPC workload hung")
    tc.done.result()
    ts.done.result()
    return RPCResult(
        kind="charlotte-raw",
        payload_bytes=payload_bytes,
        rtts=rtts,
        messages=cluster.metrics.total("wire.messages."),
        wire_bytes=cluster.metrics.get("wire.bytes"),
        trace=cluster.trace,
    )
