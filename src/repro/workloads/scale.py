"""The E16 scale workload: 100k+ clients against sharded servers.

This is the workload the ROADMAP's million-client north star is
measured by.  Each shard owns a population of clients round-tripping
requests against a shard-local server; a deterministic subset of
clients is *remote* and sends every request to a server on another
shard via `Engine.post` (lookahead-bounded cross-shard messages).
Unlike the LYNX workloads, it speaks the engine's shard-tagged surface
directly — it is an engine-scaling experiment, not a kernel
comparison — and therefore runs unchanged on every backend registered
in `repro.sim.backends`.

Determinism is the point, not an afterthought:

* every shard draws from its own `SimRandom` child stream
  (``scale/shard<i>``), consumed in shard-local event order, which is
  identical on every backend;
* every shard accumulates its own `MetricSet` (and optionally its own
  windowed `TimeSeries`), retrieved through `Engine.bind_harvest` so
  results come back even from forked workers;
* `ShardSim.digest` reduces a shard's final state to a SHA-256 over a
  stable JSON rendering; `ScaleResult.digest` combines the per-shard
  digests in shard order.  Same seed ⇒ same digest, across backends,
  shard counts held fixed, repeats, and worker counts (test-pinned in
  `tests/sim/test_scale_workload.py` and machine-checked by E16).

Two fault knobs exercise the conservative-window edge cases:
``partition=(lo, hi)`` drops cross-shard sends issued inside the
simulated-time window (the client retries after
``retry_timeout_ms``), and ``moves=[(t, origin, new_target)]``
migrates an origin shard's remote server to a different shard at time
``t`` — link migration with endpoints on different shards.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.timeseries import TimeSeries
from repro.sim.backends import make_engine
from repro.sim.metrics import MetricSet
from repro.sim.rng import SimRandom

__all__ = ["ShardSim", "ScaleResult", "run_scale"]

#: simulated cost shape (ms): shard-local request/reply legs and the
#: cross-shard base latency.  The cross-shard base sits above the
#: default lookahead with jitter that keeps arrival timestamps off the
#: barrier grid (ties across shards would make the parallel interleave
#: order-sensitive).
LOCAL_REQUEST_MS = 0.08
LOCAL_REPLY_MS = 0.06
SERVICE_MS = 0.02
REMOTE_BASE_MS = 0.3
JITTER_MS = 0.05


class ShardSim:
    """One shard of the scale workload: clients, a server, metrics."""

    def __init__(
        self,
        eng,
        shard: int,
        shards: int,
        *,
        clients: int,
        requests: int,
        seed: int,
        remote_every: int = 8,
        retry_timeout_ms: float = 2.0,
        partition: Optional[Tuple[float, float]] = None,
        window_ms: Optional[float] = None,
    ) -> None:
        self.eng = eng
        self.shard = shard
        self.shards = shards
        self.clients = clients
        self.requests = requests
        self.remote_every = remote_every
        self.retry_timeout_ms = retry_timeout_ms
        self.partition = partition
        self.rng = SimRandom(seed, "scale").child(f"shard{shard}")
        self.metrics = MetricSet()
        self.timeseries: Optional[TimeSeries] = None
        if window_ms is not None:
            self.timeseries = TimeSeries(eng, window_ms)
            self.metrics.bind_timeseries(self.timeseries)
        self.rtt = self.metrics.latency("scale.rtt")
        #: which shard this shard's *remote* clients currently target
        #: (mutated by scheduled `moves`)
        self.remote_target = (shard + 1) % shards
        # every one of the ~12 events per request goes through these;
        # bind them once so the callbacks pay one call each, not an
        # attribute chain (identical on every backend, so the shared
        # per-event cost shrinks without touching the engines)
        self._defer = eng.defer
        self._post = eng.post
        self._shard_now = eng.shard_now
        self._count = self.metrics.count
        self._record_rtt = self.rtt.record
        self._uniform = self.rng.uniform

    # -- wiring --------------------------------------------------------
    def start(self) -> None:
        eng = self.eng
        eng.bind_receiver(self.shard, self._receive)
        eng.bind_harvest(self.shard, self.harvest)
        for c in range(self.clients):
            think = self.rng.uniform(0.0, 2.0)
            eng.defer_on(self.shard, think, self._request, c, self.requests)

    def schedule_move(self, at_ms: float, new_target: int) -> None:
        """At ``at_ms``, point this shard's remote clients at a server
        on ``new_target`` (the cross-shard link-migration knob)."""
        self.eng.defer_on(self.shard, at_ms, self._move, new_target)

    def _move(self, new_target: int) -> None:
        self.remote_target = new_target
        self.metrics.count("scale.moves")

    # -- the request chain ---------------------------------------------
    def _request(self, c: int, n: int) -> None:
        self._count("scale.requests")
        sent = self._shard_now(self.shard)
        if self.remote_every and c % self.remote_every == 0:
            target = self.remote_target
            win = self.partition
            if win is not None and win[0] <= sent < win[1]:
                # the fault plane severed cross-shard links: the send
                # is lost and the client re-issues after its timeout
                self._count("scale.dropped")
                self._count("scale.retries")
                self._defer(self.retry_timeout_ms, self._request, c, n)
                return
            self._count("scale.remote")
            delay = REMOTE_BASE_MS + self._uniform(0.0, JITTER_MS)
            self._post(target, delay, "req", self.shard, c, n, sent)
        else:
            delay = LOCAL_REQUEST_MS + self._uniform(0.0, JITTER_MS)
            self._defer(delay, self._serve, c, n, sent)

    def _serve(self, c: int, n: int, sent: float) -> None:
        self._count("scale.served")
        delay = (
            SERVICE_MS
            + LOCAL_REPLY_MS
            + self._uniform(0.0, JITTER_MS)
        )
        self._defer(delay, self._complete, c, n, sent)

    def _receive(self, key: str, origin: int, c: int, n: int, sent: float) -> None:
        if key == "req":
            # serve the remote request, reply across the shard boundary
            self._count("scale.served_remote")
            delay = (
                SERVICE_MS
                + REMOTE_BASE_MS
                + self._uniform(0.0, JITTER_MS)
            )
            self._post(origin, delay, "rep", self.shard, c, n, sent)
        else:  # "rep": the reply landed back on the requesting shard
            self._complete(c, n, sent)

    def _complete(self, c: int, n: int, sent: float) -> None:
        self._record_rtt(self._shard_now(self.shard) - sent)
        self._count("scale.completed")
        if n > 1:
            think = self._uniform(0.2, 1.8)
            self._defer(think, self._request, c, n - 1)

    # -- results -------------------------------------------------------
    def digest(self) -> str:
        """SHA-256 over this shard's final state, stable across
        backends and repeats for a seed."""
        state = {
            "shard": self.shard,
            "snapshot": self.metrics.snapshot(),
        }
        blob = json.dumps(state, sort_keys=True).encode()
        return hashlib.sha256(blob).hexdigest()

    def harvest(self) -> Dict[str, Any]:
        """The per-shard result payload (`Engine.bind_harvest`).  Must
        be picklable: the time-series is detached from the engine and
        the metric sinks are unbound before it crosses a process
        boundary."""
        digest = self.digest()
        ts = self.timeseries
        if ts is not None:
            self.metrics.bind_timeseries(None)
            ts.engine = None
        return {
            "shard": self.shard,
            "digest": digest,
            "metrics": self.metrics,
            "timeseries": ts,
        }


@dataclass
class ScaleResult:
    """One scale run: events, digests, merged metrics."""

    backend: str
    shards: int
    clients: int
    requests: int
    events: int
    sim_ms: float
    shard_digests: Tuple[str, ...]
    #: per-shard `MetricSet`s folded into one (`MetricSet.merge`, which
    #: merges the `StreamingHistogram`s bit-exactly)
    metrics: MetricSet
    #: per-shard windowed series merged for rendering (`repro top`);
    #: None unless the run was built with ``window_ms``
    timeseries: Optional[TimeSeries] = None
    payloads: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def digest(self) -> str:
        blob = json.dumps(self.shard_digests).encode()
        return hashlib.sha256(blob).hexdigest()

    @property
    def completed(self) -> float:
        return self.metrics.get("scale.completed")


def run_scale(
    backend: str = "global",
    shards: int = 1,
    *,
    clients: int = 1000,
    requests: int = 2,
    seed: int = 0,
    remote_every: int = 8,
    lookahead_ms: float = 0.25,
    workers: Optional[int] = None,
    window_ms: Optional[float] = None,
    partition: Optional[Tuple[float, float]] = None,
    moves: Optional[Sequence[Tuple[float, int, int]]] = None,
    retry_timeout_ms: float = 2.0,
) -> ScaleResult:
    """Run the scale workload on a registered backend.

    ``clients`` is the *total* population, dealt round-robin across
    ``shards``.  The same parameters produce the same digest on every
    backend — the E16 determinism gate runs exactly this function.
    """
    eng = make_engine(
        backend, shards=shards, lookahead_ms=lookahead_ms, workers=workers
    )
    per_shard = [clients // shards] * shards
    for i in range(clients % shards):
        per_shard[i] += 1
    sims = [
        ShardSim(
            eng, s, shards,
            clients=per_shard[s], requests=requests, seed=seed,
            remote_every=remote_every, retry_timeout_ms=retry_timeout_ms,
            partition=partition, window_ms=window_ms,
        )
        for s in range(shards)
    ]
    for sim in sims:
        sim.start()
    for at_ms, origin, new_target in moves or ():
        sims[origin].schedule_move(at_ms, new_target)
    events = eng.run()
    payloads = eng.harvest()
    merged = MetricSet()
    series: List[TimeSeries] = []
    for payload in payloads:
        merged.merge(payload["metrics"])
        if payload["timeseries"] is not None:
            series.append(payload["timeseries"])
    return ScaleResult(
        backend=backend,
        shards=shards,
        clients=clients,
        requests=requests,
        events=events,
        sim_ms=max(eng.shard_now(s) for s in range(shards)),
        shard_digests=tuple(p["digest"] for p in payloads),
        metrics=merged,
        timeseries=TimeSeries.merged(series) if series else None,
        payloads=list(payloads),
    )
