"""Raw kernel-call baselines for all three kernels.

§3.3 measures LYNX against "C programs that make the same series of
kernel calls"; `repro.workloads.rpc.raw_charlotte_rpc` is that program
for Charlotte.  This module supplies the equivalents for SODA and
Chrysalis, so the *runtime package overhead* (LYNX minus raw) can be
measured on every kernel — which is exactly the quantity §4.3 reasons
about: "run-time routines under SODA would need to perform most of the
same functions as their counterparts for Charlotte ... relatively
major differences in run-time package overhead appear to be unlikely."
Bench A4 tests that prediction.

These baselines run as plain simulation tasks against the kernel
ports, with none of the LYNX machinery (no coroutine scheduler, no
typed marshalling, no link bookkeeping).
"""

from __future__ import annotations

from typing import List

from repro.core.wire import MsgKind, WireMessage
from repro.sim.tasks import Task
from repro.workloads.rpc import RPCResult, raw_charlotte_rpc

__all__ = ["raw_charlotte_rpc", "raw_soda_rpc", "raw_chrysalis_rpc",
           "raw_rpc"]


def raw_soda_rpc(payload_bytes: int = 0, count: int = 10,
                 seed: int = 0) -> RPCResult:
    """Client puts a request; server accepts, puts the reply; client
    accepts — the minimal §4.1 conversation, no LYNX."""
    from repro.soda.cluster import SodaCluster
    from repro.soda.kernel import AcceptStatus, InterruptKind

    cluster = SodaCluster(seed=seed)
    kernel = cluster.kernel
    pa = kernel.register_process("raw-client", 0)
    pb = kernel.register_process("raw-server", 1)
    eng = cluster.engine

    client_intr: List = []
    server_intr: List = []
    pa.set_handler(client_intr.append)
    pb.set_handler(server_intr.append)

    srv_name = kernel.new_name()
    cli_name = kernel.new_name()
    kernel.advertise("raw-server", srv_name)
    kernel.advertise("raw-client", cli_name)

    rtts: List[float] = []
    total = count + 1

    def wait_for(queue, kind):
        """Poll-free wait: spin on a tiny timer until an interrupt of
        ``kind`` is queued (the raw program's idle loop)."""
        from repro.sim.tasks import sleep

        def gen():
            while True:
                for i, intr in enumerate(queue):
                    if intr.kind is kind:
                        queue.pop(i)
                        return intr
                yield sleep(eng, 0.05)

        return gen()

    def client():
        body = b"q" * payload_bytes
        for i in range(total):
            t0 = eng.now
            yield pa.request(
                "raw-server", srv_name, {"n": i}, nsend=len(body), data=body
            )
            # completion of our put = request received
            yield from wait_for(client_intr, InterruptKind.COMPLETION)
            # the reply arrives as the server's put toward cli_name
            req = yield from wait_for(client_intr, InterruptKind.REQUEST)
            status, data = yield pa.accept(req.rid, nrecv=req.nsend)
            assert status is AcceptStatus.OK
            if i > 0:
                rtts.append(eng.now - t0)

    def server():
        body = b"r" * payload_bytes
        for _ in range(total):
            req = yield from wait_for(server_intr, InterruptKind.REQUEST)
            status, data = yield pb.accept(req.rid, nrecv=req.nsend)
            assert status is AcceptStatus.OK
            yield pb.request(
                "raw-client", cli_name, {}, nsend=len(body), data=body
            )
            yield from wait_for(server_intr, InterruptKind.COMPLETION)

    tc = Task(eng, client(), "raw-client")
    ts = Task(eng, server(), "raw-server")
    cluster.run_until_quiet(max_ms=1e7)
    if not (tc.finished and ts.finished):
        raise RuntimeError("raw SODA RPC hung")
    tc.done.result()
    ts.done.result()
    return RPCResult("soda-raw", payload_bytes, rtts,
                     cluster.metrics.total("wire.messages."),
                     cluster.metrics.get("wire.bytes"))


def raw_chrysalis_rpc(payload_bytes: int = 0, count: int = 10,
                      seed: int = 0) -> RPCResult:
    """Two tasks sharing one memory object with a buffer per direction,
    a dual queue and event block each — §5.2's skeleton without LYNX."""
    from repro.chrysalis.cluster import ChrysalisCluster
    from repro.chrysalis.kernel import DQ_BLOCKED

    cluster = ChrysalisCluster(seed=seed)
    kernel = cluster.kernel
    eng = cluster.engine
    pa = kernel  # ports:
    from repro.chrysalis.kernel import ChrysalisPort

    ca = ChrysalisPort(kernel, "raw-client")
    cb = ChrysalisPort(kernel, "raw-server")

    shared = {"req": None, "rep": None, "req_full": False, "rep_full": False}
    oid = kernel.make_object(shared)
    kernel.map_object(oid)
    kernel.map_object(oid)

    rtts: List[float] = []
    total = count + 1

    def dq_wait(port, qid, eid):
        def gen():
            item = yield port.dequeue(qid, eid)
            if item is DQ_BLOCKED:
                item = yield port.event_wait(eid)
            return item

        return gen()

    def client(q_cli, e_cli, q_srv):
        body = b"q" * payload_bytes
        for i in range(total):
            t0 = eng.now
            yield ca.copy(len(body) + 24)

            def put():
                shared["req"] = body
                shared["req_full"] = True

            yield ca.atomic(put)
            yield ca.enqueue(q_srv, ("new-req",))
            while True:
                notice = yield from dq_wait(ca, q_cli, e_cli)
                if notice[0] == "new-rep" and shared["rep_full"]:
                    break
            yield ca.copy(len(shared["rep"]) + 24)

            def take():
                shared["rep_full"] = False

            yield ca.atomic(take)
            yield ca.enqueue(q_srv, ("consumed-rep",))
            if i > 0:
                rtts.append(eng.now - t0)

    def server(q_srv, e_srv, q_cli):
        body = b"r" * payload_bytes
        for _ in range(total):
            while True:
                notice = yield from dq_wait(cb, q_srv, e_srv)
                if notice[0] == "new-req" and shared["req_full"]:
                    break
            yield cb.copy(len(shared["req"]) + 24)

            def take():
                shared["req_full"] = False

            yield cb.atomic(take)
            yield cb.copy(len(body) + 24)

            def put():
                shared["rep"] = body
                shared["rep_full"] = True

            yield cb.atomic(put)
            yield cb.enqueue(q_cli, ("new-rep",))
            while True:
                notice = yield from dq_wait(cb, q_srv, e_srv)
                if notice[0] == "consumed-rep":
                    break

    q_cli = kernel.make_queue()
    q_srv = kernel.make_queue()
    e_cli = kernel.make_event("raw-client")
    e_srv = kernel.make_event("raw-server")
    tc = Task(eng, client(q_cli, e_cli, q_srv), "raw-client")
    ts = Task(eng, server(q_srv, e_srv, q_cli), "raw-server")
    cluster.run_until_quiet(max_ms=1e7)
    if not (tc.finished and ts.finished):
        raise RuntimeError("raw Chrysalis RPC hung")
    tc.done.result()
    ts.done.result()
    return RPCResult("chrysalis-raw", payload_bytes, rtts, 2.0 * total, 0.0)


def raw_rpc(kind: str, payload_bytes: int = 0, count: int = 10,
            seed: int = 0) -> RPCResult:
    """Dispatch to the per-kernel raw baseline via the registry."""
    from repro.core.ports import kernel_profile

    profile = kernel_profile(kind)  # raises with the registered list
    if profile.raw_rpc is None:
        raise ValueError(f"kernel {kind!r} has no raw-RPC baseline")
    return profile.raw_rpc()(payload_bytes, count, seed)
