"""Adversarial workloads: the §3.2.1 unwanted-message scenarios.

These generate exactly the situations that force the Charlotte runtime
into its retry/forbid/allow machinery, repeatedly and measurably (E6):

* `ReverseRequestPair` — the paper's first scenario: B requests on L in
  the reverse direction while A awaits a reply on L;
* `OpenCloseRacer` — the second: A opens then closes its queue while B
  requests in the window, so A's Cancel fails and the message bounces.

Run on SODA/Chrysalis the same programs produce *zero* bounce traffic —
the §6 comparison E6 prints.
"""

from __future__ import annotations

from typing import Dict

from repro.core.api import BYTES, INT, Operation, Proc, make_cluster
from repro.core.ports import kernel_metric_digest

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))


class ReverseRequestPair:
    """Factory for the two `Proc`s of scenario 1, repeated ``rounds``
    times back to back."""

    class A(Proc):
        def __init__(self, rounds: int) -> None:
            self.rounds = rounds
            self.ok = 0

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            for _ in range(self.rounds):
                r = yield from ctx.connect(end, ECHO, (b"ping",))
                assert r == (b"ping",)
                yield from ctx.open(end)
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))
                yield from ctx.close(end)
                self.ok += 1

    class B(Proc):
        def __init__(self, rounds: int, reply_delay_ms: float = 1.0) -> None:
            self.rounds = rounds
            self.reply_delay_ms = reply_delay_ms
            self.ok = 0

        def reverse(self, ctx, end):
            r = yield from ctx.connect(end, ADD, (2, 3))
            assert r == (5,)
            self.ok += 1

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            yield from ctx.open(end)
            for _ in range(self.rounds):
                inc = yield from ctx.wait_request()
                t = yield from ctx.fork(self.reverse(ctx, end), "rev")
                # the longer B sits on the reply, the longer A stays in
                # its unwanted-message window (A1 amplifies this)
                yield from ctx.delay(self.reply_delay_ms)
                yield from ctx.reply(inc, (inc.args[0],))
                # wait for the reverse coroutine's round to finish
                # before starting the next (keeps rounds independent)
                while t.live:
                    yield from ctx.delay(5.0)


def run_reverse_scenario(
    kind: str, rounds: int = 3, seed: int = 0, reply_delay_ms: float = 1.0,
    **cluster_kw,
) -> Dict[str, float]:
    cluster = make_cluster(kind, seed=seed, **cluster_kw)
    a_prog = ReverseRequestPair.A(rounds)
    b_prog = ReverseRequestPair.B(rounds, reply_delay_ms)
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e7)
    if not cluster.all_finished:
        raise RuntimeError(f"reverse scenario hung on {kind}: "
                           f"{cluster.unfinished()}")
    assert a_prog.ok == rounds and b_prog.ok == rounds
    m = cluster.metrics
    digest = {
        "rounds": float(rounds),
        "unwanted": m.get("runtime.unwanted"),
        "messages": m.total("wire.messages."),
        "useful_messages": 4.0 * rounds,  # 2 RPCs/round x 2 messages
        "sim_time_ms": cluster.engine.now,
    }
    # bounce-machinery counters exist only where the machinery does;
    # consumers must test `key in digest`
    digest.update(kernel_metric_digest(kind, m, {
        "forbid": "charlotte.forbid_sent",
        "allow": "charlotte.allow_sent",
        "retry": "charlotte.retry_sent",
        "resends": "charlotte.resends",
    }))
    return digest


class OpenCloseRacer:
    """Scenario 2: A opens then immediately closes its request queue,
    with B's request racing into the window."""

    class A(Proc):
        def __init__(self, rounds: int) -> None:
            self.rounds = rounds

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ADD)
            for _ in range(self.rounds):
                yield from ctx.delay(50.0)  # B's send parks at the kernel
                yield from ctx.open(end)   # match fires
                yield from ctx.close(end)  # Cancel fails -> bounce
                yield from ctx.delay(100.0)
                yield from ctx.open(end)
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))
                yield from ctx.close(end)

    class B(Proc):
        def __init__(self, rounds: int) -> None:
            self.rounds = rounds
            self.ok = 0

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(self.rounds):
                r = yield from ctx.connect(end, ADD, (i, 1))
                assert r == (i + 1,)
                self.ok += 1


def run_open_close_scenario(
    kind: str, rounds: int = 3, seed: int = 0, **cluster_kw
) -> Dict[str, float]:
    cluster = make_cluster(kind, seed=seed, **cluster_kw)
    a_prog = OpenCloseRacer.A(rounds)
    b_prog = OpenCloseRacer.B(rounds)
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e7)
    if not cluster.all_finished:
        raise RuntimeError(f"open/close scenario hung on {kind}: "
                           f"{cluster.unfinished()}")
    m = cluster.metrics
    digest = {
        "rounds": float(rounds),
        "unwanted": m.get("runtime.unwanted"),
        "messages": m.total("wire.messages."),
        "useful_messages": 2.0 * rounds,
        "sim_time_ms": cluster.engine.now,
    }
    digest.update(kernel_metric_digest(kind, m, {
        "retry": "charlotte.retry_sent",
        "resends": "charlotte.resends",
    }))
    return digest
