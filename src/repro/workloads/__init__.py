"""Reusable LYNX workloads for benches, examples and stress tests.

Each workload is a set of `Proc` programs plus a driver that wires them
into a cluster and reports metrics.  They are deliberately written
against the public `repro.core.api` only, so every workload runs on all
three kernels — the experiments are cross-kernel comparisons.
"""

from repro.workloads.rpc import (
    PingServer,
    PingClient,
    run_rpc_workload,
    RPCResult,
    raw_charlotte_rpc,
)
from repro.workloads.migration import (
    Observer,
    Dispatcher,
    Member,
    run_migration_churn,
    run_dormant_migration,
)
from repro.workloads.adversarial import (
    ReverseRequestPair,
    OpenCloseRacer,
    run_reverse_scenario,
    run_open_close_scenario,
)
from repro.workloads.skew import run_skewed_load
from repro.workloads.scale import ShardSim, ScaleResult, run_scale

__all__ = [
    "ShardSim",
    "ScaleResult",
    "run_scale",
    "PingServer",
    "PingClient",
    "run_rpc_workload",
    "RPCResult",
    "raw_charlotte_rpc",
    "Observer",
    "Dispatcher",
    "Member",
    "run_migration_churn",
    "run_dormant_migration",
    "ReverseRequestPair",
    "OpenCloseRacer",
    "run_reverse_scenario",
    "run_open_close_scenario",
    "run_skewed_load",
]
