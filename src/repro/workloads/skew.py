"""Skewed-load fairness workload (E12).

§2.1: "For the sake of fairness, an implementation must guarantee that
no queue is ignored forever."  One chatty client floods a server with
back-to-back requests on its link; several quiet clients each send a
single request.  If the server's queue choice were unfair the quiet
requests would starve behind the flood; the round-robin of the runtime
base must bound their waiting.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.api import INT, Operation, Proc, make_cluster

WORK = Operation("work", (INT, INT), (INT,))


class SkewServer(Proc):
    def __init__(self, total: int) -> None:
        self.total = total
        self.service_order: List[int] = []

    def main(self, ctx):
        ends = ctx.initial_links
        yield from ctx.register(WORK)
        for e in ends:
            yield from ctx.open(e)
        for _ in range(self.total):
            inc = yield from ctx.wait_request()
            self.service_order.append(inc.args[0])
            yield from ctx.reply(inc, (0,))


class ChattyClient(Proc):
    def __init__(self, ident: int, requests: int) -> None:
        self.ident = ident
        self.requests = requests

    def main(self, ctx):
        (end,) = ctx.initial_links
        for _ in range(self.requests):
            yield from ctx.connect(end, WORK, (self.ident, 0))


class QuietClient(Proc):
    def __init__(self, ident: int, start_after_ms: float) -> None:
        self.ident = ident
        self.start_after_ms = start_after_ms
        self.latency: float = float("nan")

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.delay(self.start_after_ms)
        t0 = yield from ctx.now()
        yield from ctx.connect(end, WORK, (self.ident, 0))
        self.latency = (yield from ctx.now()) - t0


def run_skewed_load(
    kind: str,
    quiet_clients: int = 3,
    chatty_requests: int = 20,
    seed: int = 0,
    **cluster_kw,
) -> Dict[str, object]:
    """Returns service order, quiet-client latencies, and the maximum
    number of chatty services any quiet request had to wait through
    after arriving (the starvation measure)."""
    total = chatty_requests + quiet_clients
    cluster = make_cluster(kind, seed=seed, **cluster_kw)
    server = SkewServer(total)
    s = cluster.spawn(server, "server")
    chatty = cluster.spawn(ChattyClient(0, chatty_requests), "chatty")
    cluster.create_link(s, chatty)
    quiet_progs = []
    for i in range(quiet_clients):
        q = QuietClient(i + 1, start_after_ms=10.0)
        quiet_progs.append(q)
        handle = cluster.spawn(q, f"quiet{i + 1}")
        cluster.create_link(s, handle)
    cluster.run_until_quiet(max_ms=1e7)
    if not cluster.all_finished:
        raise RuntimeError(f"skew workload hung on {kind}: "
                           f"{cluster.unfinished()}")
    order = server.service_order
    # starvation measure: longest run of chatty services between any
    # quiet service and the preceding quiet service (or start)
    worst_gap = 0
    gap = 0
    for ident in order:
        if ident == 0:
            gap += 1
        else:
            worst_gap = max(worst_gap, gap)
            gap = 0
    return {
        "order": order,
        "quiet_latencies_ms": [q.latency for q in quiet_progs],
        "worst_chatty_run_before_quiet": worst_gap,
        "sim_time_ms": cluster.engine.now,
    }
